"""Differential gate: telemetry-enabled runs are observationally silent.

Recording must never change what the pipeline computes.  For every
artifact history (ASW/WBS/OAE) the distinct path-condition sets and the
counter values of each version must be identical with telemetry off and
on.

Serial runs pin *every* leg counter exactly.  workers=2 runs pin the
outputs that are deterministic by construction (path-condition sets, path
counts, the static-phase counters): the remaining parallel leg counters
(cache hits, states, decisions) are timing-dependent -- the online
scheduler cost model turns measured wall clock into sharding decisions --
and differ between two *plain* runs already, so pinning them would gate
on pre-existing scheduler nondeterminism, not on telemetry.
"""

import pytest

from repro import obs
from repro.artifacts.mutants import asw_artifact, oae_artifact, wbs_artifact
from repro.evolution.history import VersionHistoryRunner
from repro.parallel.shard import reset_scheduler_cost_model

ARTIFACTS = {
    "asw": asw_artifact,
    "wbs": wbs_artifact,
    "oae": oae_artifact,
}

#: Leg counters pinned exactly on serial runs (timings are excluded: they
#: are measurements of the run, not outputs of the analysis).
_EXACT_LEG_KEYS = (
    "states",
    "paths",
    "distinct_path_conditions",
    "decisions",
    "replayed_paths",
    "replayed_segments",
    "cache_hits",
    "cache_misses",
    "cache_stores",
    "strategy_token_misses",
    "generalized_call_hits",
    "generalized_call_stores",
    "generalized_call_fallbacks",
    "instantiated_paths",
)

#: Leg counters deterministic even under the parallel scheduler: the final
#: summary comes from the serial replay over the merged cache, so its path
#: counts cannot depend on pool timing.
_PARALLEL_SAFE_LEG_KEYS = ("paths", "distinct_path_conditions")


def _counters(report, leg_keys, pin_invalidated=True):
    rows = []
    for row in report.versions:
        entry = {
            "version": row.version,
            "changed_nodes": row.changed_nodes,
            "affected_nodes": row.affected_nodes,
            "dise_pcs": row.dise_distinct_pcs,
            "full_pcs": row.full_distinct_pcs,
        }
        if pin_invalidated:
            # How many cache entries a version change evicts depends on the
            # cache's *population*, and under the parallel scheduler that is
            # timing-dependent (which subtrees shipped vs recorded natively
            # varies run to run) -- pin it on serial runs only, like the
            # other scheduler-sensitive counters.
            entry["invalidated"] = row.invalidated
        for leg_name in ("dise", "full"):
            leg = getattr(row, leg_name)
            if leg is not None:
                for key in leg_keys:
                    entry[f"{leg_name}.{key}"] = leg[key]
        rows.append(entry)
    return rows


@pytest.mark.parametrize("artifact_name", sorted(ARTIFACTS))
@pytest.mark.parametrize("workers", [1, 2])
def test_telemetry_is_observationally_silent(artifact_name, workers):
    factory = ARTIFACTS[artifact_name]
    leg_keys = _EXACT_LEG_KEYS if workers == 1 else _PARALLEL_SAFE_LEG_KEYS

    assert obs.active() is None
    plain = VersionHistoryRunner(factory(), workers=workers).run()

    # The online scheduler cost model is process-global state warmed by the
    # first sweep; both runs start it cold.
    reset_scheduler_cost_model()
    with obs.recording(f"{artifact_name}-sweep") as recorder:
        recorded = VersionHistoryRunner(factory(), workers=workers).run()
    assert recorder.spans, "the recording saw no spans at all"

    assert _counters(recorded, leg_keys, workers == 1) == _counters(
        plain, leg_keys, workers == 1
    )
    if workers == 1:
        assert recorded.cache["entries"] == plain.cache["entries"]
    if plain.seed is not None:
        for key in leg_keys:
            assert recorded.seed[key] == plain.seed[key], key
