"""Unit tests for the metrics registry and histogram."""

from repro.obs.metrics import DEFAULT_BOUNDS, Histogram, MetricsRegistry


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.buckets == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.min == 0.5 and histogram.max == 50.0
        assert abs(histogram.mean - 55.5 / 3) < 1e-9

    def test_merge_dict_adds(self):
        a = Histogram(bounds=(1.0,))
        b = Histogram(bounds=(1.0,))
        a.observe(0.5)
        b.observe(2.0)
        assert a.merge_dict(b.as_dict())
        assert a.count == 2
        assert a.buckets == [1, 1]
        assert a.max == 2.0

    def test_merge_dict_rejects_mismatched_bounds(self):
        a = Histogram(bounds=(1.0,))
        b = Histogram(bounds=(2.0,))
        assert not a.merge_dict(b.as_dict())
        assert a.count == 0

    def test_percentile_empty_is_none(self):
        assert Histogram().percentile(0.5) is None

    def test_percentile_degenerate_distribution_is_exact(self):
        histogram = Histogram()
        for _ in range(9):
            histogram.observe(0.007)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.percentile(q) == 0.007

    def test_percentile_edges_clamp_to_observed_range(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 20.0, 30.0):
            histogram.observe(value)
        assert histogram.percentile(-1.0) == 2.0
        assert histogram.percentile(0.0) == 2.0
        assert histogram.percentile(1.0) == 30.0
        assert histogram.percentile(2.0) == 30.0
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            assert 2.0 <= histogram.percentile(q) <= 30.0

    def test_percentile_monotonic_in_q(self):
        histogram = Histogram()
        for value in (0.0007, 0.003, 0.02, 0.3, 2.0, 8.0):
            histogram.observe(value)
        values = [histogram.percentile(i / 10.0) for i in range(11)]
        assert values == sorted(values)

    def test_percentile_interpolates_inside_the_right_bucket(self):
        # Four observations below the first bound, one between the bounds:
        # the median must land in the first bucket (clamped to the observed
        # min), the p90 in the second (clamped to the observed max).
        histogram = Histogram(bounds=(1.0, 10.0))
        for value in (0.2, 0.4, 0.6, 0.8, 5.0):
            histogram.observe(value)
        median = histogram.percentile(0.5)
        assert 0.2 <= median <= 1.0
        p90 = histogram.percentile(0.9)
        assert 1.0 <= p90 <= 5.0

    def test_percentile_survives_as_dict_merge(self):
        # The warm-start path: a persisted histogram is merged into a fresh
        # one, whose median then seeds the fence EWMA.
        recorded = Histogram()
        for value in (0.001, 0.004, 0.004, 0.004, 0.2):
            recorded.observe(value)
        fresh = Histogram()
        assert fresh.merge_dict(recorded.as_dict())
        assert fresh.percentile(0.5) == recorded.percentile(0.5)


class TestMetricsRegistry:
    def test_counters_add_gauges_overwrite(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.inc("c", 4)
        registry.gauge("g", 1.0)
        registry.gauge("g", 2.0)
        snapshot = registry.collect()
        assert snapshot["counters"]["c"] == 5
        assert snapshot["gauges"]["g"] == 2.0

    def test_register_snapshots_scalars_only(self):
        class Source:
            def as_dict(self):
                return {"n": 3, "flag": True, "nested": {"x": 1}, "name": "s"}

        registry = MetricsRegistry()
        registry.register("src", Source())
        gauges = registry.collect()["gauges"]
        assert gauges == {"src.n": 3}

    def test_register_same_object_same_prefix_is_noop(self):
        class Source:
            def as_dict(self):
                return {"n": 1}

        source = Source()
        registry = MetricsRegistry()
        registry.register("src", source)
        registry.register("src", source)
        assert len(registry._sources) == 1

    def test_merge_payload_additive(self):
        worker = MetricsRegistry()
        worker.inc("worker.paths", 7)
        worker.observe("shard.seconds", 0.25)
        parent = MetricsRegistry()
        parent.inc("worker.paths", 3)
        skipped = parent.merge_payload(worker.collect())
        assert skipped == 0
        assert parent.counters["worker.paths"] == 10
        assert parent.histograms["shard.seconds"].count == 1

    def test_merge_payload_counts_malformed(self):
        parent = MetricsRegistry()
        skipped = parent.merge_payload(
            {"counters": {"ok": 1, "bad": "nope"}, "histograms": {"h": "junk"}}
        )
        assert skipped == 2
        assert parent.counters == {"ok": 1.0}

    def test_default_bounds_are_sorted(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
