"""Property tests for the span invariants the exporters rely on.

The two invariants every viewer (and the JSONL diffing in CI) assumes:

1. children close before (or with) their parents, and a child's interval
   is contained in its parent's;
2. timestamps are monotonic -- no span ends before it starts -- and both
   properties survive a cross-process merge (worker payload adoption),
   including adoption of corrupted payloads.
"""

from hypothesis import given, settings, strategies as st

from repro.obs.spans import Span, TraceRecorder


def _contained(child: Span, parent: Span) -> bool:
    return parent.start <= child.start and child.end <= parent.end


#: A script of push/pop operations driving the span stack; True = open a
#: child span, False = close the innermost open span (ignored when empty).
span_scripts = st.lists(st.booleans(), min_size=1, max_size=40)


@given(script=span_scripts)
@settings(max_examples=100, deadline=None)
def test_children_close_before_parents(script):
    recorder = TraceRecorder()
    for push in script:
        if push:
            recorder.start_span("s")
        elif recorder.open_spans():
            recorder.end_span(recorder.current_span())
    recorder.finish()
    for span in recorder.spans:
        assert span.closed
        assert span.end >= span.start
        if span.parent is not None:
            assert _contained(span, span.parent)


@given(script=span_scripts, pad=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=100, deadline=None)
def test_worker_spans_merge_under_propagated_parent(script, pad):
    worker = TraceRecorder(process="worker-7")
    worker.start_span("shard.run", "shard")
    for push in script:
        if push:
            worker.start_span("w")
        elif worker.open_spans() > 1:
            worker.end_span(worker.current_span())
    worker.finish()
    payload = worker.export_payload()

    parent = TraceRecorder()
    anchor = parent.start_span("parallel.pool", "fence")
    parent.end_span(anchor)
    # A worker's clock can run past the anchor's wall interval (the pad
    # simulates that drift); clamping must keep everything inside anchor.
    anchor.end += pad * 1e-6
    adopted = parent.adopt_worker(payload, anchor=anchor)
    assert adopted == len(worker.spans)

    parent.finish()
    worker_spans = [span for span in parent.spans if span.process == "worker-7"]
    assert len(worker_spans) == adopted
    for span in worker_spans:
        # Monotonic after the merge, contained in the anchor interval, and
        # the parent chain terminates at the propagated anchor.
        assert span.end >= span.start
        assert anchor.start <= span.start and span.end <= anchor.end
        top = span
        while top.parent is not None and top.parent.process == "worker-7":
            assert _contained(top, top.parent)
            top = top.parent
        assert top.parent is anchor


corrupt_rows = st.lists(
    st.one_of(
        st.none(),
        st.integers(),
        st.text(max_size=5),
        st.lists(st.integers(), max_size=3),
        st.lists(
            st.one_of(st.none(), st.integers(), st.text(max_size=5)),
            min_size=6,
            max_size=6,
        ),
    ),
    max_size=10,
)


@given(rows=corrupt_rows)
@settings(max_examples=100, deadline=None)
def test_adopting_corrupt_payloads_never_raises(rows):
    parent = TraceRecorder()
    anchor = parent.start_span("parallel.pool", "fence")
    parent.end_span(anchor)
    adopted = parent.adopt_worker({"process": "worker-1", "spans": rows}, anchor=anchor)
    # Every row either adopts or is counted as a casualty -- never raises.
    assert adopted + parent.adopt_skipped == len(rows)
    for span in parent.spans[1:]:
        assert span.end >= span.start
        assert anchor.start <= span.start and span.end <= anchor.end
