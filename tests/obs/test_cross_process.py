"""Cross-process trace merging: the ISSUE's workers=4 acceptance check.

A workers=4 ASW history sweep under a recording must emit ONE merged trace
containing spans from every worker process the pool actually used, with
shard spans nested under their wave's pool span, loadable as a Chrome
trace-event file; on chaos legs the injected fault events appear inline in
the same stream.
"""

import json

from repro import faults, obs
from repro.artifacts.mutants import asw_artifact
from repro.core.dise import DiSE
from repro.evolution.history import VersionHistoryRunner
from repro.obs.export import write_chrome_trace, write_jsonl
from repro.parallel.shard import ShardConfig

#: Small shards so a tiny artifact still wakes the pool.
POOL_CONFIG = ShardConfig(cold_split_depth=1, min_shards=1)


class TestWorkersFourTrace:
    def test_asw_sweep_merges_spans_from_every_worker(self, tmp_path):
        artifact = asw_artifact()
        with obs.recording("asw-sweep", artifact=artifact.name) as recorder:
            VersionHistoryRunner(
                artifact, workers=4, include_full=True
            ).run()

        # One coherent trace: worker shard spans were adopted, rebased and
        # parented under the wave's pool span.
        shard_spans = [span for span in recorder.spans if span.name == "shard.run"]
        assert shard_spans, "no shard spans were adopted from the pool"
        worker_labels = {span.process for span in shard_spans}
        assert worker_labels, "shard spans lost their worker process labels"
        assert all(label.startswith("worker-") for label in worker_labels)
        for span in shard_spans:
            assert span.parent is not None and span.parent.name == "parallel.pool"
            wave = span.parent.parent
            assert wave is not None and wave.name == "parallel.wave"
            assert span.parent.start <= span.start <= span.end <= span.parent.end
        # Every process the pool used appears in the merged processes list.
        assert set(recorder.processes()) == {"main"} | worker_labels

        # Self-time attribution covers the production categories.
        assert "solver" in recorder.self_seconds
        assert "fence" in recorder.self_seconds
        assert "merge" in recorder.self_seconds

        # Worker counters merged additively into the parent registry.
        counters = recorder.metrics.collect()["counters"]
        assert counters.get("worker.paths", 0) > 0
        assert recorder.metrics.histograms["shard.seconds"].count == len(shard_spans)

        # Both artifact formats load back as valid JSON.
        chrome_path = tmp_path / "asw.trace.json"
        jsonl_path = tmp_path / "asw.trace.jsonl"
        write_chrome_trace(recorder, str(chrome_path))
        write_jsonl(recorder, str(jsonl_path))
        document = json.loads(chrome_path.read_text())
        labels = {
            event["args"]["name"]
            for event in document["traceEvents"]
            if event["ph"] == "M"
        }
        assert labels == {"main"} | worker_labels
        header = json.loads(jsonl_path.read_text().splitlines()[0])
        assert header["adopt_skipped"] == 0

    def test_fault_events_land_inline_on_chaos_legs(self):
        artifact = asw_artifact()
        history = artifact.history()
        from repro.lang.parser import parse_program

        base = parse_program(history[0][3])
        modified = parse_program(history[1][3])
        # corrupt-frame fires inside a worker that still returns its
        # envelope, so its event must ride home in the shard payload;
        # worker-crash kills the envelope, so its evidence is the parent's
        # shard.failure attribution event.
        plan = faults.FaultPlan(
            seed=6, rates={"corrupt-frame": 1.0, "worker-crash": 1.0}
        )
        with obs.recording("chaos-leg") as recorder:
            with faults.injected(plan):
                DiSE(
                    base,
                    modified,
                    procedure_name=artifact.procedure_name,
                    workers=2,
                    parallel_config=POOL_CONFIG,
                ).run()
        names = {event["name"] for event in recorder.events}
        assert "shard.failure" in names or "shard.quarantine" in names
        corrupt = [e for e in recorder.events if e["name"] == "fault.corrupt-frame"]
        assert corrupt, "worker-side fault events did not ride the envelope home"
        assert any(e["process"].startswith("worker-") for e in corrupt) or any(
            e["process"] == "main" for e in corrupt
        )
