"""Shared fixtures for the telemetry test suite."""

import pytest

from repro import obs
from repro.parallel.shard import reset_scheduler_cost_model


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """No recorder leaks across tests: whatever a test installs (or fails
    to uninstall on an assertion failure) is cleared afterwards, and the
    scheduler cost model starts cold so shard counts are deterministic."""
    obs.install(None)
    reset_scheduler_cost_model()
    yield
    obs.install(None)
    reset_scheduler_cost_model()
