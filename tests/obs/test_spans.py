"""Unit tests for the span recorder: nesting, self-time, the global switch."""

import pytest

from repro import obs
from repro.obs.spans import ObsError, TraceRecorder


class TestSpanNesting:
    def test_children_close_before_parents(self):
        recorder = TraceRecorder()
        outer = recorder.start_span("outer")
        inner = recorder.start_span("inner")
        recorder.end_span(inner)
        recorder.end_span(outer)
        assert inner.parent is outer
        assert inner.end <= outer.end
        assert outer.start <= inner.start

    def test_closing_a_closed_span_raises(self):
        recorder = TraceRecorder()
        span = recorder.start_span("once")
        recorder.end_span(span)
        with pytest.raises(ObsError):
            recorder.end_span(span)

    def test_closing_parent_closes_open_descendants(self):
        """An exception unwinding past inner end_span calls must not wedge
        the stack: closing the parent closes the abandoned children at the
        same instant, preserving child-before-parent ordering."""
        recorder = TraceRecorder()
        outer = recorder.start_span("outer")
        inner = recorder.start_span("inner")
        leaf = recorder.start_span("leaf")
        recorder.end_span(outer)
        assert inner.closed and leaf.closed
        assert leaf.end == inner.end == outer.end
        assert recorder.open_spans() == 0

    def test_finish_closes_everything(self):
        recorder = TraceRecorder()
        recorder.start_span("a")
        recorder.start_span("b")
        recorder.finish()
        assert recorder.open_spans() == 0
        assert all(span.closed for span in recorder.spans)

    def test_span_context_manager_closes_on_exception(self):
        recorder = TraceRecorder()
        with pytest.raises(RuntimeError):
            with recorder.span("doomed"):
                raise RuntimeError("boom")
        assert recorder.spans[0].closed

    def test_attributes_recorded(self):
        recorder = TraceRecorder()
        with recorder.span("named", "cat", wave=3):
            pass
        assert recorder.spans[0].attributes == {"wave": 3}
        assert recorder.spans[0].category == "cat"


class TestSelfTime:
    def test_nested_category_subtracts_from_parent(self):
        recorder = TraceRecorder()
        recorder.begin_category("lookahead")
        recorder.begin_category("solver")
        recorder.end_category()
        recorder.end_category()
        assert recorder.self_seconds["solver"] >= 0.0
        assert recorder.self_seconds["lookahead"] >= 0.0
        # The lookahead's self time excludes the nested solver interval.
        total = sum(recorder.self_seconds.values())
        assert recorder.self_seconds["lookahead"] <= total


class TestGlobalSwitch:
    def test_disabled_span_is_shared_noop(self):
        assert obs.active() is None
        first = obs.span("anything")
        second = obs.span("else")
        assert first is second  # the shared no-op: no allocation when off

    def test_enable_disable_roundtrip(self):
        recorder = obs.enable()
        assert obs.active() is recorder
        assert obs.disable() is recorder
        assert obs.active() is None

    def test_recording_restores_previous(self):
        outer = obs.enable()
        with obs.recording("inner") as inner:
            assert obs.active() is inner
        assert obs.active() is outer
        obs.disable()

    def test_timed_measures_without_recorder(self):
        with obs.timed("block") as timer:
            pass
        assert timer.seconds >= 0.0
        assert timer.span is None

    def test_timed_records_span_with_recorder(self):
        with obs.recording("run") as recorder:
            with obs.timed("block", "cat", k=1) as timer:
                pass
        assert timer.span is not None
        assert timer.span.closed
        assert timer.seconds == timer.span.seconds
        assert any(span.name == "block" for span in recorder.spans)

    def test_counter_event_observe_are_noops_when_off(self):
        obs.counter("x")
        obs.event("y")
        obs.observe("z", 1.0)  # must not raise

    def test_worker_context_propagates_detail(self):
        assert obs.worker_context() is None
        obs.enable(detail=True)
        assert obs.worker_context() == {"detail": True}
        obs.disable()
