"""Exporter tests: JSONL rows and Chrome trace-event output."""

import json

from repro.obs.export import chrome_trace_events, trace_rows, write_chrome_trace, write_jsonl
from repro.obs.spans import TraceRecorder


def _recorder_with_trace():
    recorder = TraceRecorder()
    with recorder.span("root", "run"):
        with recorder.span("child", "phase", wave=0):
            recorder.event("ping", "fault", ident="x")
    return recorder


class TestJsonl:
    def test_rows_header_spans_events_metrics(self):
        recorder = _recorder_with_trace()
        rows = trace_rows(recorder)
        assert rows[0]["type"] == "header"
        assert rows[0]["spans"] == 2
        kinds = [row["type"] for row in rows]
        assert kinds == ["header", "span", "span", "event", "metrics"]
        child = rows[2]
        assert child["parent"] == 0  # index of the root span
        assert child["dur"] >= 0.0

    def test_write_jsonl_round_trips(self, tmp_path):
        recorder = _recorder_with_trace()
        path = tmp_path / "trace.jsonl"
        lines = write_jsonl(recorder, str(path))
        parsed = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(parsed) == lines
        assert parsed[0]["format"] == 1


class TestChromeTrace:
    def test_events_have_metadata_and_complete_spans(self):
        recorder = _recorder_with_trace()
        events = chrome_trace_events(recorder)
        phases = [event["ph"] for event in events]
        assert phases == ["M", "X", "X", "i"]
        metadata = events[0]
        assert metadata["args"]["name"] == "main"
        spans = [event for event in events if event["ph"] == "X"]
        assert all(event["dur"] >= 0 for event in spans)
        assert all(event["ts"] >= 0 for event in spans)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        recorder = _recorder_with_trace()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(recorder, str(path), metadata={"benchmark": "t"})
        document = json.loads(path.read_text())
        assert len(document["traceEvents"]) == count
        assert document["otherData"]["generator"] == "repro.obs"
        assert document["otherData"]["benchmark"] == "t"

    def test_worker_processes_get_distinct_pids(self):
        recorder = TraceRecorder()
        anchor = recorder.start_span("pool", "fence")
        worker = TraceRecorder(process="worker-1")
        with worker.span("shard.run", "shard"):
            pass
        payload = worker.export_payload()
        recorder.end_span(anchor)
        assert recorder.adopt_worker(payload, anchor=anchor) == 1
        events = chrome_trace_events(recorder)
        pids = {event["args"]["name"]: event["pid"] for event in events if event["ph"] == "M"}
        assert set(pids) == {"main", "worker-1"}
        assert pids["main"] != pids["worker-1"]
