"""Tests for the Graphviz DOT export."""

from repro.cfg.dot import cfg_to_dot


class TestDotExport:
    def test_contains_all_nodes_and_edges(self, update_modified_cfg):
        dot = cfg_to_dot(update_modified_cfg)
        assert dot.startswith("digraph cfg {")
        assert dot.rstrip().endswith("}")
        for node in update_modified_cfg.nodes:
            assert f'"{node.name}"' in dot
        assert dot.count("->") == len(update_modified_cfg.edges)

    def test_branch_nodes_are_diamonds(self, update_modified_cfg):
        dot = cfg_to_dot(update_modified_cfg)
        assert "shape=diamond" in dot

    def test_edge_labels_present(self, update_modified_cfg):
        dot = cfg_to_dot(update_modified_cfg)
        assert 'label="true"' in dot
        assert 'label="false"' in dot

    def test_highlight_and_changed_styling(self, update_modified_cfg):
        affected = [update_modified_cfg.node(0), update_modified_cfg.node(1)]
        changed = [update_modified_cfg.node(0)]
        dot = cfg_to_dot(update_modified_cfg, highlight=affected, changed=changed)
        assert "fillcolor=lightgoldenrod" in dot
        assert "color=red" in dot

    def test_custom_title(self, update_modified_cfg):
        dot = cfg_to_dot(update_modified_cfg, title="Figure 2(b)")
        assert 'label="Figure 2(b)"' in dot

    def test_quotes_are_escaped(self, update_modified_cfg):
        dot = cfg_to_dot(update_modified_cfg, title='a "quoted" title')
        assert '\\"quoted\\"' in dot
