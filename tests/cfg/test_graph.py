"""Tests for the ControlFlowGraph data structure."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALLTHROUGH_EDGE, NodeKind
from repro.lang.parser import parse_program


@pytest.fixture
def diamond():
    """begin -> branch -> (a | b) -> join -> end"""
    cfg = ControlFlowGraph("diamond")
    begin = cfg.new_node(NodeKind.BEGIN, label="begin")
    branch = cfg.new_node(NodeKind.BRANCH, label="cond")
    a = cfg.new_node(NodeKind.ASSIGN, label="a", target="x")
    b = cfg.new_node(NodeKind.ASSIGN, label="b", target="x")
    join = cfg.new_node(NodeKind.NOP, label="join")
    end = cfg.new_node(NodeKind.END, label="end")
    cfg.add_edge(begin, branch)
    cfg.add_edge(branch, a, "true")
    cfg.add_edge(branch, b, "false")
    cfg.add_edge(a, join)
    cfg.add_edge(b, join)
    cfg.add_edge(join, end)
    return cfg


class TestGraphBasics:
    def test_node_ordering_begin_first_end_last(self, diamond):
        names = [n.name for n in diamond.nodes]
        assert names[0] == "nbegin"
        assert names[-1] == "nend"

    def test_len_counts_all_nodes(self, diamond):
        assert len(diamond) == 6

    def test_successors_and_predecessors(self, diamond):
        branch = diamond.node(0)
        assert [n.label for n in diamond.successors(branch)] == ["a", "b"]
        join = diamond.node(3)
        assert {n.label for n in diamond.predecessors(join)} == {"a", "b"}

    def test_successor_on_labels(self, diamond):
        branch = diamond.node(0)
        assert diamond.successor_on(branch, "true").label == "a"
        assert diamond.successor_on(branch, "false").label == "b"

    def test_successor_on_missing_label_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.successor_on(diamond.node(1), "true")

    def test_contains(self, diamond):
        assert diamond.node(0) in diamond

    def test_reachability_is_reflexive(self, diamond):
        node = diamond.node(1)
        assert diamond.is_cfg_path(node, node)

    def test_reachability_forward_only(self, diamond):
        a = diamond.node(1)
        branch = diamond.node(0)
        assert diamond.is_cfg_path(branch, a)
        assert not diamond.is_cfg_path(a, branch)

    def test_branch_nodes_and_write_nodes(self, diamond):
        assert [n.label for n in diamond.branch_nodes()] == ["cond"]
        assert [n.label for n in diamond.write_nodes()] == ["a", "b"]

    def test_well_formed_accepts_diamond(self, diamond):
        diamond.check_well_formed()

    def test_well_formed_rejects_unreachable_node(self):
        cfg = ControlFlowGraph("broken")
        begin = cfg.new_node(NodeKind.BEGIN)
        end = cfg.new_node(NodeKind.END)
        cfg.new_node(NodeKind.ASSIGN, label="orphan", target="x")
        cfg.add_edge(begin, end)
        with pytest.raises(ValueError):
            cfg.check_well_formed()

    def test_well_formed_rejects_missing_exit_path(self):
        cfg = ControlFlowGraph("broken")
        begin = cfg.new_node(NodeKind.BEGIN)
        trap = cfg.new_node(NodeKind.ASSIGN, label="trap", target="x")
        end = cfg.new_node(NodeKind.END)
        cfg.add_edge(begin, trap)
        cfg.add_edge(begin, end)
        with pytest.raises(ValueError):
            cfg.check_well_formed()

    def test_describe_lists_every_node(self, diamond):
        text = diamond.describe()
        for node in diamond.nodes:
            assert node.name in text

    def test_edges_property(self, diamond):
        assert len(diamond.edges) == 6
        labels = {e.label for e in diamond.edges}
        assert labels == {FALLTHROUGH_EDGE, "true", "false"}


class TestNodeHelpers:
    def test_defined_and_used_variables(self):
        cfg = build_cfg(parse_program("proc f(int x) { int y = x + 1; if (y > 0) { y = 0; } }"))
        decl = cfg.write_nodes()[0]
        assert decl.defined_variable() == "y"
        assert decl.used_variables() == ("x",)
        branch = cfg.branch_nodes()[0]
        assert branch.defined_variable() is None
        assert branch.used_variables() == ("y",)

    def test_structural_key_distinguishes_kinds(self):
        cfg = build_cfg(parse_program("proc f(int x) { x = 1; if (x > 0) { skip; } }"))
        write_key = cfg.write_nodes()[0].structural_key()
        branch_key = cfg.branch_nodes()[0].structural_key()
        assert write_key[0] == "assign"
        assert branch_key[0] == "branch"

    def test_node_str(self, diamond):
        assert str(diamond.node(0)) == "n0: cond"
