"""Tests for post-dominance (Definition 3.8)."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.dominance import PostDominance
from repro.lang.parser import parse_program


@pytest.fixture
def update_pd(update_modified_cfg):
    return PostDominance(update_modified_cfg)


def node(cfg, node_id):
    return cfg.node(node_id)


class TestUpdateExample:
    """Checks taken directly from the paper's running example."""

    def test_n5_post_dominates_n0(self, update_modified_cfg, update_pd):
        # "postDom(n0, n5) returns true because all paths from n0 to nend go through n5"
        assert update_pd.post_dominates(node(update_modified_cfg, 0), node(update_modified_cfg, 5))

    def test_post_dominance_is_reflexive(self, update_modified_cfg, update_pd):
        # "postDom(n1, n1) is true"
        n1 = node(update_modified_cfg, 1)
        assert update_pd.post_dominates(n1, n1)

    def test_n1_does_not_post_dominate_n2_branchside(self, update_modified_cfg, update_pd):
        # "postDom(n1, n2) is false" (n2 is on the other side of the branch)
        assert not update_pd.post_dominates(node(update_modified_cfg, 2), node(update_modified_cfg, 1))

    def test_exit_post_dominates_everything(self, update_modified_cfg, update_pd):
        for candidate in update_modified_cfg.nodes:
            assert update_pd.post_dominates(candidate, update_modified_cfg.end)

    def test_branch_targets_do_not_post_dominate_branch(self, update_modified_cfg, update_pd):
        n0 = node(update_modified_cfg, 0)
        assert not update_pd.post_dominates(n0, node(update_modified_cfg, 1))
        assert not update_pd.post_dominates(n0, node(update_modified_cfg, 2))

    def test_n10_post_dominates_whole_prefix(self, update_modified_cfg, update_pd):
        n10 = node(update_modified_cfg, 10)
        for source_id in (0, 1, 2, 3, 4, 5, 6, 7, 8, 9):
            assert update_pd.post_dominates(node(update_modified_cfg, source_id), n10)


class TestSmallGraphs:
    def test_straight_line(self):
        cfg = build_cfg(parse_program("proc f(int x) { x = 1; x = 2; }"))
        pd = PostDominance(cfg)
        first, second = cfg.write_nodes()
        assert pd.post_dominates(first, second)
        assert not pd.post_dominates(second, first)

    def test_loop_body_does_not_post_dominate_header(self):
        cfg = build_cfg(parse_program("proc f(int x) { while (x > 0) { x = x - 1; } }"))
        pd = PostDominance(cfg)
        header = cfg.branch_nodes()[0]
        body = cfg.write_nodes()[0]
        assert not pd.post_dominates(header, body)
        assert pd.post_dominates(body, header)

    def test_immediate_post_dominator_of_branch_is_join(self):
        cfg = build_cfg(
            parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }")
        )
        pd = PostDominance(cfg)
        branch = cfg.branch_nodes()[0]
        ipdom = pd.immediate_post_dominator(branch)
        assert ipdom is not None and ipdom.label == "x = 3"

    def test_immediate_post_dominator_of_exit_is_none(self, update_modified_cfg, update_pd=None):
        pd = PostDominance(update_modified_cfg)
        assert pd.immediate_post_dominator(update_modified_cfg.end) is None

    def test_post_dominators_set_contains_self_and_exit(self):
        cfg = build_cfg(parse_program("proc f(int x) { if (x > 0) { x = 1; } }"))
        pd = PostDominance(cfg)
        branch = cfg.branch_nodes()[0]
        dominators = pd.post_dominators(branch)
        assert branch.node_id in dominators
        assert cfg.end.node_id in dominators
