"""Tests for Def/Use maps, reachability and reaching definitions."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.dataflow import DefUse, Reachability, ReachingDefinitions
from repro.lang.parser import parse_program


class TestDefUseOnUpdateExample:
    def test_def_of_write_nodes(self, update_modified_cfg):
        def_use = DefUse(update_modified_cfg)
        # Def(n9) = Meter (paper example, line 13 of Fig. 2(a))
        assert def_use.definition(update_modified_cfg.node(9)) == "Meter"
        assert def_use.definition(update_modified_cfg.node(1)) == "PedalCmd"

    def test_def_of_branch_node_is_none(self, update_modified_cfg):
        def_use = DefUse(update_modified_cfg)
        assert def_use.definition(update_modified_cfg.node(10)) is None

    def test_use_of_branch_node(self, update_modified_cfg):
        def_use = DefUse(update_modified_cfg)
        # Use(n10) = {PedalCmd} (paper example, line 15 of Fig. 2(a))
        assert def_use.uses(update_modified_cfg.node(10)) == ("PedalCmd",)
        assert def_use.uses(update_modified_cfg.node(0)) == ("PedalPos",)

    def test_use_of_constant_write_is_empty(self, update_modified_cfg):
        def_use = DefUse(update_modified_cfg)
        assert def_use.uses(update_modified_cfg.node(7)) == ()

    def test_nodes_defining_and_using(self, update_modified_cfg):
        def_use = DefUse(update_modified_cfg)
        defining = {n.node_id for n in def_use.nodes_defining("PedalCmd")}
        assert defining == {1, 3, 4, 5}
        using = {n.node_id for n in def_use.nodes_using("PedalCmd")}
        assert using == {1, 3, 5, 10, 12}


class TestReachability:
    def test_matches_cfg_is_cfg_path(self, update_modified_cfg):
        reach = Reachability(update_modified_cfg)
        nodes = update_modified_cfg.nodes
        for source in nodes:
            for target in nodes:
                assert reach.is_cfg_path(source, target) == update_modified_cfg.is_cfg_path(
                    source, target
                )

    def test_reflexive(self, update_modified_cfg):
        reach = Reachability(update_modified_cfg)
        n5 = update_modified_cfg.node(5)
        assert reach.is_cfg_path(n5, n5)

    def test_no_backward_paths_in_loop_free_cfg(self, update_modified_cfg):
        reach = Reachability(update_modified_cfg)
        assert not reach.is_cfg_path(update_modified_cfg.node(10), update_modified_cfg.node(0))

    def test_loop_allows_round_trip(self):
        cfg = build_cfg(parse_program("proc f(int x) { while (x > 0) { x = x - 1; } }"))
        reach = Reachability(cfg)
        header = cfg.branch_nodes()[0]
        body = cfg.write_nodes()[0]
        assert reach.is_cfg_path(header, body)
        assert reach.is_cfg_path(body, header)


class TestReachingDefinitions:
    def test_single_definition_reaches_use(self):
        cfg = build_cfg(parse_program("proc f(int x) { int y = x; if (y > 0) { y = 1; } }"))
        analysis = ReachingDefinitions(cfg)
        branch = cfg.branch_nodes()[0]
        defs = analysis.definitions_reaching_use(branch, "y")
        assert [d.label for d in defs] == ["y = x"]

    def test_definition_killed_by_redefinition(self):
        cfg = build_cfg(parse_program("proc f(int x) { x = 1; x = 2; if (x > 0) { skip; } }"))
        analysis = ReachingDefinitions(cfg)
        branch = cfg.branch_nodes()[0]
        defs = analysis.definitions_reaching_use(branch, "x")
        assert [d.label for d in defs] == ["x = 2"]

    def test_both_branch_definitions_reach_join(self):
        cfg = build_cfg(
            parse_program(
                "proc f(int c) { int x = 0; if (c > 0) { x = 1; } else { x = 2; } if (x > 0) { skip; } }"
            )
        )
        analysis = ReachingDefinitions(cfg)
        final_branch = cfg.branch_nodes()[1]
        labels = {d.label for d in analysis.definitions_reaching_use(final_branch, "x")}
        assert labels == {"x = 1", "x = 2"}

    def test_update_example_pedalcmd_definitions_reach_n10(self, update_modified_cfg):
        analysis = ReachingDefinitions(update_modified_cfg)
        n10 = update_modified_cfg.node(10)
        defs = {d.node_id for d in analysis.definitions_reaching_use(n10, "PedalCmd")}
        # only the line-8 redefinition (n5) survives; n1/n3/n4 are killed by it
        assert defs == {5}

    def test_parameter_has_no_reaching_definition(self, update_modified_cfg):
        analysis = ReachingDefinitions(update_modified_cfg)
        n0 = update_modified_cfg.node(0)
        assert analysis.definitions_reaching_use(n0, "PedalPos") == []

    def test_loop_definition_reaches_header(self):
        cfg = build_cfg(parse_program("proc f(int x) { while (x > 0) { x = x - 1; } }"))
        analysis = ReachingDefinitions(cfg)
        header = cfg.branch_nodes()[0]
        labels = {d.label for d in analysis.definitions_reaching_use(header, "x")}
        assert labels == {"x = (x - 1)"}
