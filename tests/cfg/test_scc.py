"""Tests for SCC / loop detection used by CheckLoops."""

from repro.cfg.builder import build_cfg
from repro.cfg.scc import SCCAnalysis
from repro.lang.parser import parse_program


def analysis_for(source):
    cfg = build_cfg(parse_program(source))
    return cfg, SCCAnalysis(cfg)


class TestLoopFreeGraphs:
    def test_every_component_is_singleton(self, update_modified_cfg):
        scc = SCCAnalysis(update_modified_cfg)
        assert all(len(c) == 1 for c in scc.components())
        assert scc.loop_nodes() == frozenset()

    def test_no_loop_entries(self, update_modified_cfg):
        scc = SCCAnalysis(update_modified_cfg)
        assert not any(scc.is_loop_entry(n) for n in update_modified_cfg.nodes)


class TestSingleLoop:
    SOURCE = "proc f(int x) { x = 0; while (x < 10) { x = x + 1; } x = 99; }"

    def test_loop_nodes_form_one_scc(self):
        cfg, scc = analysis_for(self.SOURCE)
        header = cfg.branch_nodes()[0]
        body = [n for n in cfg.write_nodes() if n.label == "x = (x + 1)"][0]
        assert scc.scc_of(header) == scc.scc_of(body)
        assert scc.is_in_loop(header) and scc.is_in_loop(body)

    def test_header_is_loop_entry(self):
        cfg, scc = analysis_for(self.SOURCE)
        header = cfg.branch_nodes()[0]
        assert scc.is_loop_entry(header)

    def test_statements_outside_loop_are_not_loop_members(self):
        cfg, scc = analysis_for(self.SOURCE)
        prologue = [n for n in cfg.write_nodes() if n.label == "x = 0"][0]
        epilogue = [n for n in cfg.write_nodes() if n.label == "x = 99"][0]
        assert not scc.is_in_loop(prologue)
        assert not scc.is_in_loop(epilogue)

    def test_get_scc_returns_all_members(self):
        cfg, scc = analysis_for(self.SOURCE)
        header = cfg.branch_nodes()[0]
        members = scc.scc_of(header)
        assert len(members) == 2


class TestNestedLoops:
    SOURCE = (
        "proc f(int x, int y) {"
        "  while (x > 0) {"
        "    y = x;"
        "    while (y > 0) { y = y - 1; }"
        "    x = x - 1;"
        "  }"
        "}"
    )

    def test_nested_loops_collapse_into_one_scc(self):
        cfg, scc = analysis_for(self.SOURCE)
        outer = cfg.branch_nodes()[0]
        inner = cfg.branch_nodes()[1]
        # inner loop nodes are reachable from the outer header and back
        assert scc.scc_of(outer) == scc.scc_of(inner)

    def test_loop_entry_detection_for_outer_header(self):
        cfg, scc = analysis_for(self.SOURCE)
        outer = cfg.branch_nodes()[0]
        assert scc.is_loop_entry(outer)

    def test_loop_nodes_cover_bodies(self):
        cfg, scc = analysis_for(self.SOURCE)
        loop_ids = scc.loop_nodes()
        labels = {cfg.node(i).label for i in loop_ids}
        assert "y = (y - 1)" in labels
        assert "x = (x - 1)" in labels


class TestSequentialLoops:
    SOURCE = (
        "proc f(int x, int y) {"
        "  while (x > 0) { x = x - 1; }"
        "  while (y > 0) { y = y - 1; }"
        "}"
    )

    def test_two_separate_loop_components(self):
        cfg, scc = analysis_for(self.SOURCE)
        first, second = cfg.branch_nodes()
        assert scc.scc_of(first) != scc.scc_of(second)
        assert scc.is_loop_entry(first) and scc.is_loop_entry(second)
