"""Tests for control dependence (Definition 3.9)."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.control_dependence import ControlDependence
from repro.lang.parser import parse_program


@pytest.fixture
def update_cd(update_modified_cfg):
    return ControlDependence(update_modified_cfg)


class TestUpdateExample:
    """Control dependences used in the paper's affected-set computation."""

    def test_n1_is_control_dependent_on_n0(self, update_modified_cfg, update_cd):
        # "node n1 is control dependent on n0"
        assert update_cd.is_control_dependent(
            update_modified_cfg.node(0), update_modified_cfg.node(1)
        )

    def test_n2_is_control_dependent_on_n0(self, update_modified_cfg, update_cd):
        assert update_cd.is_control_dependent(
            update_modified_cfg.node(0), update_modified_cfg.node(2)
        )

    def test_n3_and_n4_depend_on_n2(self, update_modified_cfg, update_cd):
        n2 = update_modified_cfg.node(2)
        assert update_cd.is_control_dependent(n2, update_modified_cfg.node(3))
        assert update_cd.is_control_dependent(n2, update_modified_cfg.node(4))

    def test_n11_depends_on_n10_and_n13_n14_on_n12(self, update_modified_cfg, update_cd):
        assert update_cd.is_control_dependent(
            update_modified_cfg.node(10), update_modified_cfg.node(11)
        )
        assert update_cd.is_control_dependent(
            update_modified_cfg.node(12), update_modified_cfg.node(13)
        )
        assert update_cd.is_control_dependent(
            update_modified_cfg.node(12), update_modified_cfg.node(14)
        )

    def test_n5_is_not_control_dependent_on_n0(self, update_modified_cfg, update_cd):
        # n5 executes on every path, so it depends on nothing.
        assert not update_cd.is_control_dependent(
            update_modified_cfg.node(0), update_modified_cfg.node(5)
        )
        assert update_cd.controllers_of(update_modified_cfg.node(5)) == frozenset()

    def test_bswitch_chain_does_not_depend_on_pedal_chain(self, update_modified_cfg, update_cd):
        assert not update_cd.is_control_dependent(
            update_modified_cfg.node(0), update_modified_cfg.node(6)
        )
        assert not update_cd.is_control_dependent(
            update_modified_cfg.node(0), update_modified_cfg.node(7)
        )

    def test_dependents_of_n0(self, update_modified_cfg, update_cd):
        # Control dependence is not transitive: n3/n4 depend on n2, not on n0
        # (the affected-set rules pick them up through n2, see Fig. 5(b)).
        dependents = update_cd.dependents_of(update_modified_cfg.node(0))
        assert dependents == frozenset({1, 2})


class TestSmallGraphs:
    def test_no_dependence_in_straight_line_code(self):
        cfg = build_cfg(parse_program("proc f(int x) { x = 1; x = 2; }"))
        cd = ControlDependence(cfg)
        first, second = cfg.write_nodes()
        assert not cd.is_control_dependent(first, second)

    def test_loop_body_depends_on_loop_header(self):
        cfg = build_cfg(parse_program("proc f(int x) { while (x > 0) { x = x - 1; } }"))
        cd = ControlDependence(cfg)
        header = cfg.branch_nodes()[0]
        body = cfg.write_nodes()[0]
        assert cd.is_control_dependent(header, body)

    def test_statement_after_if_join_not_dependent(self):
        cfg = build_cfg(
            parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }")
        )
        cd = ControlDependence(cfg)
        branch = cfg.branch_nodes()[0]
        join_write = [n for n in cfg.write_nodes() if n.label == "x = 3"][0]
        assert not cd.is_control_dependent(branch, join_write)

    def test_nested_if_dependences(self):
        cfg = build_cfg(
            parse_program(
                "proc f(int x) { if (x > 0) { if (x > 1) { x = 2; } } else { x = 3; } }"
            )
        )
        cd = ControlDependence(cfg)
        outer, inner = cfg.branch_nodes()
        innermost_write = [n for n in cfg.write_nodes() if n.label == "x = 2"][0]
        assert cd.is_control_dependent(outer, inner)
        assert cd.is_control_dependent(inner, innermost_write)
        assert not cd.is_control_dependent(outer, innermost_write)

    def test_non_branch_nodes_have_no_dependents(self):
        cfg = build_cfg(parse_program("proc f(int x) { x = 1; if (x > 0) { x = 2; } }"))
        cd = ControlDependence(cfg)
        write = cfg.write_nodes()[0]
        assert cd.dependents_of(write) == frozenset()
