"""Flattened interprocedural CFG construction and call-aware region hashing."""

import re

import pytest

from repro.cfg.builder import RETURN_VARIABLE, build_cfg
from repro.cfg.ir import NodeKind
from repro.cfg.region_hash import RegionHashIndex, region_signature
from repro.lang.parser import parse_program

SOURCE = """
global int g = 0;

proc inc(int a) {
    if (a > 0) { g = g + a; return a; }
    return 0;
}

proc main(int x) {
    int got = 0;
    got = inc(x);
    if (got > 0) { g = g * 2; }
    inc(g);
}
"""


def _flat(source=SOURCE, entry="main"):
    return build_cfg(parse_program(source), entry)


class TestCallLowering:
    def test_call_and_return_nodes_paired(self):
        cfg = _flat()
        calls = [n for n in cfg.nodes if n.kind is NodeKind.CALL]
        returns = [n for n in cfg.nodes if n.kind is NodeKind.CALL_RETURN]
        assert len(calls) == len(returns) == 2
        for call in calls:
            ret = cfg.node(call.return_node_id)
            assert ret.kind is NodeKind.CALL_RETURN
            assert ret.call_node_id == call.node_id
            assert ret.callee == call.callee == "inc"
            assert call.callee_digest == ret.callee_digest

    def test_splice_depth_stamps(self):
        cfg = _flat()
        for node in cfg.nodes:
            if node.kind in (NodeKind.CALL, NodeKind.CALL_RETURN):
                assert node.call_depth == 0
        spliced = [n for n in cfg.nodes if n.call_depth == 1]
        assert spliced, "callee body nodes must be stamped with depth 1"

    def test_scope_names_cover_params_locals_and_return(self):
        cfg = _flat()
        call = next(n for n in cfg.nodes if n.kind is NodeKind.CALL)
        assert set(call.scope_names) == {"a", RETURN_VARIABLE}
        assert call.call_params == ("a",)

    def test_callee_returns_flow_to_call_return_not_exit(self):
        cfg = _flat()
        call = next(n for n in cfg.nodes if n.kind is NodeKind.CALL)
        ret = cfg.node(call.return_node_id)
        return_assigns = [
            n
            for n in cfg.nodes
            if n.kind is NodeKind.ASSIGN and n.target == RETURN_VARIABLE
        ]
        assert return_assigns
        for node in return_assigns[:2]:  # first splice's returns
            successors = cfg.successors(node)
            assert len(successors) == 1

    def test_callee_assert_routes_to_flat_exit(self):
        cfg = _flat(
            """
            proc f(int a) { assert a > 0; return a; }
            proc m(int x) { int r = 0; r = f(x); }
            """,
            "m",
        )
        error = next(n for n in cfg.nodes if n.kind is NodeKind.ERROR)
        assert [s.kind for s in cfg.successors(error)] == [NodeKind.END]

    def test_single_procedure_numbering_unchanged(self):
        """Call-free programs keep the paper's n0..nk numbering."""
        source = "proc p(int x) { int y = 0; if (x > 0) { y = 1; } }"
        flat = build_cfg(parse_program(source), "p")
        bare = build_cfg(parse_program(source).procedure("p"))
        assert [n.node_id for n in flat.nodes] == [n.node_id for n in bare.nodes]
        assert [n.structural_key() for n in flat.nodes] == [
            n.structural_key() for n in bare.nodes
        ]

    def test_bare_procedure_with_calls_needs_program(self):
        program = parse_program(SOURCE)
        with pytest.raises(ValueError, match="build the CFG from the Program"):
            build_cfg(program.procedure("main"))

    def test_recursion_rejected_by_builder(self):
        program = parse_program("proc m(int x) { m(x); }")
        with pytest.raises(ValueError, match="[Rr]ecursive"):
            build_cfg(program, "m")

    def test_unknown_entry_raises(self):
        with pytest.raises(KeyError):
            build_cfg(parse_program(SOURCE), "nope")

    def test_arity_mismatch_raises(self):
        program = parse_program("proc f(int a, int b) { skip; } proc m(int x) { f(x); }")
        with pytest.raises(ValueError, match="argument"):
            build_cfg(program, "m")


def _rename(source, old, new):
    return re.sub(rf"\b{old}\b", new, source)


class TestCallAwareRegionHashing:
    def test_region_digest_stable_under_callee_rename(self):
        one = _flat()
        two = _flat(_rename(SOURCE, "inc", "bump"))
        sig_one = region_signature(one, one.begin)
        sig_two = region_signature(two, two.begin)
        assert sig_one.digest == sig_two.digest

    def test_region_digest_changes_with_callee_edit(self):
        one = _flat()
        two = _flat(SOURCE.replace("a > 0", "a >= 0"))
        assert (
            region_signature(one, one.begin).digest
            != region_signature(two, two.begin).digest
        )

    def test_downstream_region_survives_callee_edit_upstream(self):
        """A region that reaches no call site keeps its digest."""
        one = _flat()
        two = _flat(SOURCE.replace("g = g + a;", "g = g + a + 1;"))
        # The second call's splice region differs, but the suffix region of
        # the *last* CALL_RETURN's successor (the exit) is call-free.
        assert (
            region_signature(one, one.end).digest
            == region_signature(two, two.end).digest
        )

    def test_call_segment_is_the_whole_call(self):
        """The segment of a CALL node runs to just after its CALL_RETURN."""
        cfg = _flat()
        index = RegionHashIndex(cfg)
        call = next(n for n in cfg.nodes if n.kind is NodeKind.CALL)
        segment = index.segment(call)
        assert segment is not None
        ret = cfg.node(call.return_node_id)
        assert segment.boundary_id == cfg.successors(ret)[0].node_id
        assert ret.node_id in segment.index

    def test_unbalanced_segments_rejected(self):
        """A branch root whose ipdom is a CALL_RETURN gets no segment."""
        cfg = _flat(
            """
            proc f(int a) { if (a > 0) { return 1; } return 0; }
            proc m(int x) { int r = 0; r = f(x); }
            """,
            "m",
        )
        index = RegionHashIndex(cfg)
        branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
        assert branch.call_depth == 1
        segment = index.segment(branch)
        # The in-callee branch's immediate post-dominator is the
        # CALL_RETURN, whose pop has not run when the boundary is captured.
        assert segment is None

    def test_decision_vars_flow_through_call_bindings(self):
        cfg = _flat()
        signature = region_signature(cfg, cfg.begin)
        # The callee branches on its formal `a`, which is bound from the
        # caller's `x` (first call) and `g` (second call): both must be in
        # the region's decision closure.
        assert "x" in signature.decision_vars
        assert "g" in signature.decision_vars
