"""Tests for CFG construction, including the Figure 2 node numbering."""

import pytest

from repro.cfg.builder import RETURN_VARIABLE, build_cfg
from repro.cfg.ir import FALSE_EDGE, TRUE_EDGE, NodeKind
from repro.lang.parser import parse_procedure, parse_program


def cfg_for(source, name=None):
    return build_cfg(parse_program(source), name)


class TestBasicShapes:
    def test_straight_line_program(self):
        cfg = cfg_for("proc f(int x) { x = 1; x = 2; }")
        kinds = [n.kind for n in cfg.nodes]
        assert kinds == [NodeKind.BEGIN, NodeKind.ASSIGN, NodeKind.ASSIGN, NodeKind.END]

    def test_empty_procedure(self):
        cfg = cfg_for("proc f() { }")
        assert [n.kind for n in cfg.nodes] == [NodeKind.BEGIN, NodeKind.END]
        assert cfg.successors(cfg.begin) == [cfg.end]

    def test_if_produces_branch_node_with_labelled_edges(self):
        cfg = cfg_for("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }")
        branch = cfg.branch_nodes()[0]
        true_target = cfg.successor_on(branch, TRUE_EDGE)
        false_target = cfg.successor_on(branch, FALSE_EDGE)
        assert true_target.target == "x" and str(true_target.expr) == "1"
        assert false_target.target == "x" and str(false_target.expr) == "2"

    def test_if_without_else_falls_through(self):
        cfg = cfg_for("proc f(int x) { if (x > 0) { x = 1; } x = 2; }")
        branch = cfg.branch_nodes()[0]
        false_target = cfg.successor_on(branch, FALSE_EDGE)
        assert false_target.label == "x = 2"

    def test_while_loop_back_edge(self):
        cfg = cfg_for("proc f(int x) { while (x > 0) { x = x - 1; } }")
        branch = cfg.branch_nodes()[0]
        body = cfg.successor_on(branch, TRUE_EDGE)
        assert cfg.successors(body) == [branch]
        assert cfg.successor_on(branch, FALSE_EDGE) is cfg.end

    def test_var_decl_without_init_defaults(self):
        cfg = cfg_for("proc f() { int x; bool b; }")
        writes = cfg.write_nodes()
        assert str(writes[0].expr) == "0"
        assert str(writes[1].expr) == "false"

    def test_return_value_assigns_synthetic_variable(self):
        cfg = cfg_for("proc f(int x) { return x + 1; }")
        writes = cfg.write_nodes()
        assert writes[0].target == RETURN_VARIABLE
        assert cfg.successors(writes[0]) == [cfg.end]

    def test_return_exits_early(self):
        cfg = cfg_for("proc f(int x) { if (x > 0) { return; } x = 1; }")
        nops = [n for n in cfg.nodes if n.kind is NodeKind.NOP]
        assert cfg.successors(nops[0]) == [cfg.end]

    def test_assert_desugars_to_branch_and_error(self):
        cfg = cfg_for("proc f(int x) { assert x >= 0; x = 1; }")
        branch = cfg.branch_nodes()[0]
        error_nodes = [n for n in cfg.nodes if n.kind is NodeKind.ERROR]
        assert len(error_nodes) == 1
        assert cfg.successor_on(branch, FALSE_EDGE) is error_nodes[0]
        assert cfg.successors(error_nodes[0]) == [cfg.end]

    def test_skip_is_nop(self):
        cfg = cfg_for("proc f() { skip; }")
        assert any(n.kind is NodeKind.NOP for n in cfg.nodes)

    def test_well_formedness_checked(self):
        cfg = cfg_for("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } x = 3; }")
        cfg.check_well_formed()

    def test_build_cfg_accepts_procedure(self):
        procedure = parse_procedure("proc f(int x) { x = 1; }")
        cfg = build_cfg(procedure)
        assert cfg.procedure_name == "f"

    def test_build_cfg_rejects_other_types(self):
        with pytest.raises(TypeError):
            build_cfg("not a program")


class TestStatementMapping:
    def test_statement_to_node_mapping(self):
        program = parse_program("proc f(int x) { x = 1; if (x > 0) { x = 2; } }")
        procedure = program.procedures[0]
        cfg = build_cfg(procedure)
        assign_nodes = cfg.nodes_for_statement(procedure.body[0])
        assert len(assign_nodes) == 1
        assert assign_nodes[0].kind is NodeKind.ASSIGN

    def test_nodes_at_line(self):
        cfg = cfg_for("proc f(int x) {\n    x = 1;\n    x = 2;\n}")
        assert len(cfg.nodes_at_line(2)) == 1
        assert len(cfg.nodes_at_line(3)) == 1


class TestFigure2Numbering:
    """The update() CFG must use the paper's n0..n14 labels (Figure 2(b))."""

    EXPECTED_LABELS = {
        "n0": "(PedalPos <= 0)",
        "n1": "PedalCmd = (PedalCmd + 1)",
        "n2": "(PedalPos == 1)",
        "n3": "PedalCmd = (PedalCmd + 2)",
        "n4": "PedalCmd = PedalPos",
        "n5": "PedalCmd = (PedalCmd + 1)",
        "n6": "(BSwitch == 0)",
        "n7": "Meter = 1",
        "n8": "(BSwitch == 1)",
        "n9": "Meter = 2",
        "n10": "(PedalCmd == 2)",
        "n11": "AltPress = 0",
        "n12": "(PedalCmd == 3)",
        "n13": "AltPress = 1",
        "n14": "AltPress = 2",
    }

    def test_node_names_match_paper(self, update_modified_cfg):
        labels = {n.name: n.label for n in update_modified_cfg.nodes if n.node_id >= 0}
        assert labels == self.EXPECTED_LABELS

    def test_node_count_matches_paper(self, update_modified_cfg):
        statement_nodes = [n for n in update_modified_cfg.nodes if n.node_id >= 0]
        assert len(statement_nodes) == 15

    def test_paper_path_p0_exists(self, update_modified_cfg):
        """p0 = <n0, n1, n5, n6, n7, n10, n11> must be a CFG path."""
        cfg = update_modified_cfg
        sequence = [0, 1, 5, 6, 7, 10, 11]
        for first, second in zip(sequence, sequence[1:]):
            successors = [n.node_id for n in cfg.successors(cfg.node(first))]
            assert second in successors

    def test_branch_and_write_partition(self, update_modified_cfg):
        branch_ids = {n.node_id for n in update_modified_cfg.branch_nodes()}
        write_ids = {n.node_id for n in update_modified_cfg.write_nodes()}
        assert branch_ids == {0, 2, 6, 8, 10, 12}
        assert write_ids == {1, 3, 4, 5, 7, 9, 11, 13, 14}

    def test_vars_set_matches_paper(self, update_modified_cfg):
        assert update_modified_cfg.variables() == {
            "PedalPos",
            "PedalCmd",
            "BSwitch",
            "Meter",
            "AltPress",
        }
