"""Call graph construction and name-independent procedure content digests."""

import random

import pytest

from repro.cfg.callgraph import (
    CallGraphError,
    build_call_graph,
    procedure_digests,
)
from repro.lang.parser import parse_program

THREE_PROC = """
global int g = 0;

proc leaf(int a) {
    if (a > 0) { g = g + 1; return a; }
    return 0;
}

proc mid(int b) {
    int t = 0;
    t = leaf(b);
    return t + 1;
}

proc top(int x, int y) {
    int r = 0;
    r = mid(x);
    r = leaf(y);
    leaf(r);
}
"""


class TestCallGraph:
    def test_edges_and_sites(self):
        graph = build_call_graph(parse_program(THREE_PROC))
        assert graph.calls("top") == ("mid", "leaf")
        assert graph.calls("mid") == ("leaf",)
        assert graph.calls("leaf") == ()
        assert graph.callers_of("leaf") == ("mid", "top")
        assert len([s for s in graph.sites if s.caller == "top"]) == 3

    def test_transitive_and_reaches(self):
        graph = build_call_graph(parse_program(THREE_PROC))
        assert graph.transitive_callees("top") == {"mid", "leaf"}
        assert graph.reaches("top", "leaf")
        assert graph.reaches("mid", "leaf")
        assert not graph.reaches("leaf", "top")

    def test_topological_order_callees_first(self):
        graph = build_call_graph(parse_program(THREE_PROC))
        order = graph.topological_order()
        assert order.index("leaf") < order.index("mid") < order.index("top")

    def test_undefined_callee_raises(self):
        with pytest.raises(CallGraphError, match="undefined"):
            build_call_graph(parse_program("proc m(int x) { nope(x); }"))

    def test_cycle_raises(self):
        program = parse_program(
            "proc a(int x) { b(x); } proc b(int x) { a(x); }"
        )
        graph = build_call_graph(program)
        with pytest.raises(CallGraphError, match="cycle"):
            graph.topological_order()


def _rename(source, old, new):
    """Whole-word rename of a procedure and its call sites."""
    import re

    return re.sub(rf"\b{old}\b", new, source)


class TestProcedureDigests:
    def test_digest_stable_under_reparse(self):
        one = procedure_digests(parse_program(THREE_PROC))
        two = procedure_digests(parse_program(THREE_PROC))
        assert one == two

    def test_digest_stable_under_callee_rename(self):
        """Renaming a callee (and its call sites) is not a content change."""
        renamed = _rename(THREE_PROC, "leaf", "leaf_checker")
        original = procedure_digests(parse_program(THREE_PROC))
        after = procedure_digests(parse_program(renamed))
        assert after["leaf_checker"] == original["leaf"]
        assert after["mid"] == original["mid"]
        assert after["top"] == original["top"]

    def test_digest_changes_with_callee_edit_transitively(self):
        edited = THREE_PROC.replace("a > 0", "a >= 0")
        original = procedure_digests(parse_program(THREE_PROC))
        after = procedure_digests(parse_program(edited))
        assert after["leaf"] != original["leaf"]
        assert after["mid"] != original["mid"]  # calls leaf
        assert after["top"] != original["top"]  # calls leaf and mid

    def test_caller_only_edit_leaves_callee_digest(self):
        edited = THREE_PROC.replace("r = mid(x);", "r = mid(x + 1);")
        original = procedure_digests(parse_program(THREE_PROC))
        after = procedure_digests(parse_program(edited))
        assert after["leaf"] == original["leaf"]
        assert after["mid"] == original["mid"]
        assert after["top"] != original["top"]

    def test_param_reorder_changes_digest(self):
        base = "proc f(int a, int b) { return a; } proc m(int x) { int r = 0; r = f(x, 0); }"
        swapped = "proc f(int b, int a) { return a; } proc m(int x) { int r = 0; r = f(x, 0); }"
        one = procedure_digests(parse_program(base))
        two = procedure_digests(parse_program(swapped))
        assert one["f"] != two["f"]
        assert one["m"] != two["m"]

    def test_random_edits_change_exactly_reaching_digests(self):
        """Seeded property: an edit changes a digest iff the procedure reaches it."""
        rng = random.Random(7)
        graph = build_call_graph(parse_program(THREE_PROC))
        original = procedure_digests(parse_program(THREE_PROC))
        edits = {
            "leaf": ("g = g + 1;", "g = g + 2;"),
            "mid": ("return t + 1;", "return t + 3;"),
            "top": ("leaf(r);", "leaf(r + 1);"),
        }
        for _ in range(8):
            name = rng.choice(list(edits))
            old, new = edits[name]
            after = procedure_digests(parse_program(THREE_PROC.replace(old, new)))
            for proc in ("leaf", "mid", "top"):
                should_change = proc == name or graph.reaches(proc, name)
                assert (after[proc] != original[proc]) == should_change, (
                    f"edit in {name}: digest of {proc} "
                    f"{'should' if should_change else 'should not'} change"
                )
