"""Property tests for CFG region hashing (seeded-random program generation).

The summary cache's correctness rests on two properties of the region
digest, checked here over generated straight-line/branching programs:

1. **stability** -- re-parsing the same source (and even shifting every
   node id by prepending statements) leaves every region digest unchanged;
2. **sensitivity** -- a region's digest changes iff the region's IR
   changes: mutating one statement changes the digest of exactly the
   regions containing the mutated node, and leaves strictly-downstream
   regions untouched.
"""

import random

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.region_hash import RegionHashIndex, region_signature, segment_signature
from repro.lang.parser import parse_program

VARIABLES = ["a", "b", "c"]
PARAMS = ["x", "y", "z"]


def _random_statements(rng: random.Random, depth: int, budget: int) -> list:
    """A random MiniLang statement list using assignments and if/else."""
    lines = []
    count = rng.randint(1, 3)
    for _ in range(count):
        if budget <= 0 or depth >= 3 or rng.random() < 0.55:
            target = rng.choice(VARIABLES)
            left = rng.choice(VARIABLES + PARAMS)
            op = rng.choice(["+", "-", "*"])
            lines.append(f"{target} = {left} {op} {rng.randint(0, 9)};")
        else:
            guard_var = rng.choice(VARIABLES + PARAMS)
            relation = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            guard = f"{guard_var} {relation} {rng.randint(-5, 5)}"
            then_branch = _random_statements(rng, depth + 1, budget - 1)
            else_branch = _random_statements(rng, depth + 1, budget - 1)
            lines.append(f"if ({guard}) {{")
            lines.extend("    " + line for line in then_branch)
            if rng.random() < 0.7:
                lines.append("} else {")
                lines.extend("    " + line for line in else_branch)
            lines.append("}")
    return lines


def _random_source(seed: int, body_prefix: str = "") -> str:
    rng = random.Random(seed)
    body = "\n".join("    " + line for line in _random_statements(rng, 0, 3))
    globals_block = "".join(f"global int {name} = 0;\n" for name in VARIABLES)
    params = ", ".join(f"int {name}" for name in PARAMS)
    return f"{globals_block}\nproc generated({params}) {{\n{body_prefix}{body}\n}}\n"


def _signatures(source: str):
    cfg = build_cfg(parse_program(source).procedures[0])
    return cfg, {node.node_id: region_signature(cfg, node) for node in cfg.nodes}


@pytest.mark.parametrize("seed", range(25))
def test_region_hash_stable_under_reparse(seed):
    """Parsing the same source twice yields identical digests per node."""
    source = _random_source(seed)
    _, first = _signatures(source)
    _, second = _signatures(source)
    assert first.keys() == second.keys()
    for node_id, signature in first.items():
        assert signature.digest == second[node_id].digest
        assert signature.used_vars == second[node_id].used_vars


@pytest.mark.parametrize("seed", range(25))
def test_region_hash_independent_of_node_ids(seed):
    """Prepending statements shifts every node id but no suffix digest.

    This is the re-parse scenario that matters across program versions: an
    edit upstream renumbers the unchanged suffix, whose regions must still
    hash identically so cached summaries keep matching.
    """
    source = _random_source(seed)
    padded = _random_source(seed, body_prefix="    a = 1;\n    b = 2;\n")
    _, plain = _signatures(source)
    _, shifted = _signatures(padded)
    # The two prepended assignments occupy ids 0 and 1; statement node i of
    # the original program is node i + 2 of the padded one.
    for node_id, signature in plain.items():
        if node_id < 0:  # begin/end: begin's region differs (it contains the pad)
            continue
        counterpart = shifted[node_id + 2]
        assert signature.digest == counterpart.digest, f"node {node_id} digest drifted"


def _mutate_one_literal(rng: random.Random, source: str):
    """Replace one numeric literal with a different one; returns (line, new)."""
    lines = source.splitlines()
    candidates = [
        i
        for i, line in enumerate(lines)
        if "= " in line and line.strip().endswith(";") and not line.startswith("global")
    ]
    if not candidates:
        return None
    target = rng.choice(candidates)
    line = lines[target]
    head, tail = line.rsplit(" ", 1)
    literal = tail.rstrip(";")
    if not literal.lstrip("-").isdigit():
        return None
    lines[target] = f"{head} {int(literal) + 100};"
    return target, "\n".join(lines) + "\n"


@pytest.mark.parametrize("seed", range(40))
def test_region_hash_changes_iff_region_changes(seed):
    """Digests change exactly for regions containing the mutated node."""
    rng = random.Random(10_000 + seed)
    source = _random_source(seed)
    mutation = _mutate_one_literal(rng, source)
    if mutation is None:
        pytest.skip("generated program had no mutable literal")
    _, mutated_source = mutation
    cfg_old, old = _signatures(source)
    cfg_new, new = _signatures(mutated_source)
    assert old.keys() == new.keys()
    # Identify the mutated node: same id in both parses (single in-place edit).
    changed_ids = {
        node_id
        for node_id in old
        if cfg_old.node(node_id).structural_key() != cfg_new.node(node_id).structural_key()
    }
    assert len(changed_ids) == 1
    for node_id, signature in old.items():
        contains_change = bool(signature.node_ids & changed_ids)
        if contains_change:
            assert signature.digest != new[node_id].digest, (
                f"region of n{node_id} contains the edit but hashed identically"
            )
        else:
            assert signature.digest == new[node_id].digest, (
                f"region of n{node_id} is untouched but its hash changed"
            )


@pytest.mark.parametrize("seed", range(15))
def test_segment_signatures_stable_and_bounded(seed):
    """Segments re-hash stably and never include their boundary node."""
    source = _random_source(seed)
    cfg_a = build_cfg(parse_program(source).procedures[0])
    cfg_b = build_cfg(parse_program(source).procedures[0])
    index_a, index_b = RegionHashIndex(cfg_a), RegionHashIndex(cfg_b)
    for node in cfg_a.nodes:
        segment_a = index_a.segment(node)
        segment_b = index_b.segment(cfg_b.node(node.node_id))
        if segment_a is None:
            assert segment_b is None
            continue
        assert segment_a.digest == segment_b.digest
        assert segment_a.boundary_id is not None
        assert segment_a.boundary_id not in segment_a.node_ids


def test_suffix_and_segment_digests_never_collide():
    """A segment digest can never equal a suffix digest (distinct keyspaces)."""
    source = _random_source(3)
    cfg = build_cfg(parse_program(source).procedures[0])
    index = RegionHashIndex(cfg)
    suffix_digests = {index.signature(node).digest for node in cfg.nodes}
    for node in cfg.nodes:
        segment = index.segment(node)
        if segment is not None:
            assert segment.digest not in suffix_digests


def test_all_digests_covers_segments():
    source = _random_source(7)
    cfg = build_cfg(parse_program(source).procedures[0])
    index = RegionHashIndex(cfg)
    digests = index.all_digests()
    for node in cfg.nodes:
        assert index.signature(node).digest in digests
        segment = index.segment(node)
        if segment is not None:
            assert segment.digest in digests
