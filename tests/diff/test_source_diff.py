"""Tests for the line-based source diff."""

from repro.diff.source_diff import diff_procedure_sources, diff_source
from repro.lang.parser import parse_procedure


class TestSourceDiff:
    def test_identical_sources(self):
        diff = diff_source("a\nb\nc", "a\nb\nc")
        assert not diff.has_changes()

    def test_changed_line_detected(self):
        diff = diff_source("a\nb\nc", "a\nX\nc")
        assert diff.changed_base_lines == {2}
        assert diff.changed_modified_lines == {2}

    def test_added_line_detected(self):
        diff = diff_source("a\nc", "a\nb\nc")
        assert diff.changed_modified_lines == {2}
        assert diff.changed_base_lines == set()

    def test_removed_line_detected(self):
        diff = diff_source("a\nb\nc", "a\nc")
        assert diff.changed_base_lines == {2}

    def test_unified_rendering(self):
        diff = diff_source("a\nb", "a\nc")
        text = diff.unified()
        assert "-b" in text and "+c" in text

    def test_procedure_source_diff_agrees_with_ast_diff(
        self, update_base_source, update_modified_source
    ):
        base = parse_procedure(update_base_source, "update")
        modified = parse_procedure(update_modified_source, "update")
        diff = diff_procedure_sources(base, modified)
        assert len(diff.changed_modified_lines) == 1
        (line,) = diff.changed_modified_lines
        assert "PedalPos <= 0" in diff.modified_lines[line - 1]

    def test_artifact_versions_have_line_changes(self):
        from repro.artifacts import all_artifacts

        for artifact in all_artifacts():
            base = artifact.base_program().procedure(artifact.procedure_name)
            spec = artifact.versions[0]
            modified = artifact.version_program(spec.name).procedure(artifact.procedure_name)
            assert diff_procedure_sources(base, modified).has_changes()
