"""Tests for lifting AST diffs onto CFG nodes (DiffMap)."""

from repro.diff.ast_diff import ChangeKind
from repro.diff.diff_map import build_diff_map
from repro.lang.parser import parse_procedure


def diff_map_for(base_source, mod_source, name=None):
    base = parse_procedure(base_source, name)
    modified = parse_procedure(mod_source, name)
    return build_diff_map(base, modified)


class TestUpdateExample:
    def test_changed_node_is_n0(self, update_base_source, update_modified_source):
        diff_map = diff_map_for(update_base_source, update_modified_source, "update")
        changed = diff_map.changed_or_added_mod_nodes()
        assert [n.name for n in changed] == ["n0"]
        assert diff_map.count_changed_nodes() == 1

    def test_all_other_nodes_unchanged(self, update_base_source, update_modified_source):
        diff_map = diff_map_for(update_base_source, update_modified_source, "update")
        unchanged = [
            n
            for n in diff_map.cfg_mod.nodes
            if n.node_id >= 0 and diff_map.mark_of_mod_node(n) is ChangeKind.UNCHANGED
        ]
        assert len(unchanged) == 14

    def test_get_maps_base_nodes_to_mod_nodes(self, update_base_source, update_modified_source):
        diff_map = diff_map_for(update_base_source, update_modified_source, "update")
        for base_node in diff_map.cfg_base.nodes:
            if base_node.node_id < 0:
                continue
            mapped = diff_map.get(base_node)
            assert mapped is not None
            assert mapped.node_id == base_node.node_id  # same structure, same numbering

    def test_describe_mentions_changed_node(self, update_base_source, update_modified_source):
        diff_map = diff_map_for(update_base_source, update_modified_source, "update")
        assert "n0" in diff_map.describe()


class TestAddRemove:
    def test_added_statement_marks_added_node(self):
        diff_map = diff_map_for(
            "proc f(int x) { x = 1; }",
            "proc f(int x) { x = 1; x = 2; }",
        )
        added = diff_map.added_mod_nodes()
        assert len(added) == 1
        assert added[0].label == "x = 2"

    def test_removed_statement_marks_removed_base_node(self):
        diff_map = diff_map_for(
            "proc f(int x) { x = 1; x = 2; }",
            "proc f(int x) { x = 1; }",
        )
        removed = diff_map.removed_base_nodes()
        assert len(removed) == 1
        assert removed[0].label == "x = 2"
        assert diff_map.get(removed[0]) is None

    def test_count_changed_nodes_includes_removed(self):
        diff_map = diff_map_for(
            "proc f(int x) { x = 1; x = 2; }",
            "proc f(int x) { x = 3; }",
        )
        # one changed node (x=1 -> x=3) and one removed node
        assert diff_map.count_changed_nodes() == 2

    def test_identical_versions_have_no_marks(self, update_base_source):
        diff_map = diff_map_for(update_base_source, update_base_source, "update")
        assert diff_map.count_changed_nodes() == 0
        assert diff_map.changed_mod_nodes() == []
        assert diff_map.removed_base_nodes() == []

    def test_changed_assert_maps_both_generated_nodes(self):
        diff_map = diff_map_for(
            "proc f(int x) { assert x > 0; }",
            "proc f(int x) { assert x >= 0; }",
        )
        changed = diff_map.changed_mod_nodes()
        # assert lowers to a branch plus an error node; both map as changed
        assert len(changed) == 2
