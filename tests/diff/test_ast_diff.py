"""Tests for the structural AST diff."""

from repro.diff.ast_diff import ChangeKind, diff_procedures
from repro.lang.ast_nodes import Assign, If
from repro.lang.parser import parse_procedure


def diff_sources(base_source, mod_source):
    return diff_procedures(parse_procedure(base_source), parse_procedure(mod_source))


class TestIdenticalVersions:
    def test_no_changes_detected(self, update_base_source):
        base = parse_procedure(update_base_source, "update")
        modified = parse_procedure(update_base_source, "update")
        result = diff_procedures(base, modified)
        assert not result.has_changes()
        assert len(result.unchanged_pairs) == 15

    def test_whitespace_only_difference_is_no_change(self):
        result = diff_sources(
            "proc f(int x) { x = x + 1; }",
            "proc f(int x) {\n    x   =   x + 1;\n}",
        )
        assert not result.has_changes()


class TestOperatorAndOperandChanges:
    def test_changed_condition_detected(self, update_base_source, update_modified_source):
        base = parse_procedure(update_base_source, "update")
        modified = parse_procedure(update_modified_source, "update")
        result = diff_procedures(base, modified)
        assert len(result.changed_pairs) == 1
        base_stmt, mod_stmt = result.changed_pairs[0]
        assert isinstance(base_stmt, If) and isinstance(mod_stmt, If)
        assert base_stmt.condition.op == "==" and mod_stmt.condition.op == "<="
        assert not result.added and not result.removed

    def test_changed_condition_keeps_nested_statements_unchanged(
        self, update_base_source, update_modified_source
    ):
        base = parse_procedure(update_base_source, "update")
        modified = parse_procedure(update_modified_source, "update")
        result = diff_procedures(base, modified)
        assert len(result.unchanged_pairs) == 14

    def test_changed_assignment_value(self):
        result = diff_sources("proc f(int x) { x = 1; }", "proc f(int x) { x = 2; }")
        assert len(result.changed_pairs) == 1
        assert isinstance(result.changed_pairs[0][0], Assign)

    def test_multiple_changes(self):
        result = diff_sources(
            "proc f(int x) { if (x == 0) { x = 1; } x = 5; }",
            "proc f(int x) { if (x <= 0) { x = 1; } x = 6; }",
        )
        assert len(result.changed_pairs) == 2


class TestAddedAndRemovedStatements:
    def test_added_statement(self):
        result = diff_sources(
            "proc f(int x) { x = 1; }",
            "proc f(int x) { x = 1; x = 2; }",
        )
        assert len(result.added) == 1
        assert not result.removed

    def test_removed_statement(self):
        result = diff_sources(
            "proc f(int x) { x = 1; x = 2; }",
            "proc f(int x) { x = 1; }",
        )
        assert len(result.removed) == 1
        assert not result.added

    def test_removed_if_removes_nested_statements_too(self):
        result = diff_sources(
            "proc f(int x) { if (x > 0) { x = 1; x = 2; } x = 3; }",
            "proc f(int x) { x = 3; }",
        )
        # the if and both nested assignments are removed
        assert len(result.removed) == 3

    def test_added_nested_statement_inside_unchanged_if(self):
        result = diff_sources(
            "proc f(int x) { if (x > 0) { x = 1; } }",
            "proc f(int x) { if (x > 0) { x = 1; x = 2; } }",
        )
        assert len(result.added) == 1
        # the guarding if itself is unchanged
        kinds = [result.modified_statement_kind(stmt) for stmt, in
                 [(s,) for _, s in result.unchanged_pairs]]
        assert all(kind is ChangeKind.UNCHANGED for kind in kinds)

    def test_replacement_of_different_statement_kinds(self):
        result = diff_sources(
            "proc f(int x) { x = 1; }",
            "proc f(int x) { if (x > 0) { skip; } }",
        )
        assert len(result.removed) == 1
        assert len(result.added) >= 1


class TestClassificationHelpers:
    def test_base_and_modified_statement_kind(self):
        result = diff_sources(
            "proc f(int x) { x = 1; x = 9; }",
            "proc f(int x) { x = 2; x = 9; }",
        )
        base_changed, mod_changed = result.changed_pairs[0]
        assert result.base_statement_kind(base_changed) is ChangeKind.CHANGED
        assert result.modified_statement_kind(mod_changed) is ChangeKind.CHANGED
        base_same, mod_same = result.unchanged_pairs[0]
        assert result.base_statement_kind(base_same) is ChangeKind.UNCHANGED
        assert result.modified_statement_kind(mod_same) is ChangeKind.UNCHANGED

    def test_base_to_modified_mapping(self):
        result = diff_sources(
            "proc f(int x) { x = 1; x = 9; }",
            "proc f(int x) { x = 2; x = 9; }",
        )
        mapping = result.base_to_modified()
        assert len(mapping) == 2

    def test_summary_text(self):
        result = diff_sources("proc f(int x) { x = 1; }", "proc f(int x) { x = 2; }")
        assert "1 changed" in result.summary()


class TestArtifactVersions:
    def test_every_artifact_version_reports_expected_change_count(self):
        from repro.artifacts import all_artifacts

        for artifact in all_artifacts():
            base = artifact.base_program().procedure(artifact.procedure_name)
            for spec in artifact.versions:
                modified = artifact.version_program(spec.name).procedure(artifact.procedure_name)
                result = diff_procedures(base, modified)
                assert result.has_changes(), f"{artifact.name} {spec.name} shows no diff"
                observed = len(result.changed_pairs) + len(result.added) + len(result.removed)
                assert observed == spec.change_count, (
                    f"{artifact.name} {spec.name}: expected {spec.change_count} changes, "
                    f"diff found {observed}"
                )
