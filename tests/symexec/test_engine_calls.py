"""Interprocedural symbolic execution: frames, scoping, summaries."""

import pytest

from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _distinct(summary):
    return tuple(sorted(str(pc) for pc in summary.distinct_path_conditions()))


def _env(record):
    return dict(record.final_environment)


class TestCallExecution:
    def test_return_value_binds_target(self):
        program = parse_program(
            """
            proc double(int v) { return v + v; }
            proc main(int x) { int r = 0; r = double(x); }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        assert len(result.summary) == 1
        assert str(_env(result.summary.records[0])["r"]) == "(x + x)"

    def test_caller_locals_restored_after_shadowing(self):
        """A callee formal named like a caller local must not clobber it."""
        program = parse_program(
            """
            proc inner(int v) { int t = 99; return v + t; }
            proc main(int x) {
                int v = 7;
                int t = 3;
                int r = 0;
                r = inner(x);
            }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        env = _env(result.summary.records[0])
        assert str(env["v"]) == "7"
        assert str(env["t"]) == "3"
        assert str(env["r"]) == "(x + 99)"

    def test_callee_cannot_see_caller_locals(self):
        """Reading an undeclared name inside the callee fails loudly."""
        program = parse_program(
            """
            proc inner(int v) { return v + hidden; }
            proc main(int x) { int hidden = 1; int r = 0; r = inner(x); }
            """
        )
        from repro.symexec.evaluator import UndefinedVariableError

        with pytest.raises(UndefinedVariableError):
            symbolic_execute(program, procedure_name="main")

    def test_global_writes_persist_past_return(self):
        program = parse_program(
            """
            global int g = 0;
            proc bump(int v) { g = g + v; return g; }
            proc main(int x) { bump(x); bump(x); }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        assert str(_env(result.summary.records[0])["g"]) == "(x + x)"

    def test_nested_calls(self):
        program = parse_program(
            """
            proc leaf(int a) { return a + 1; }
            proc mid(int b) { int t = 0; t = leaf(b); return t * 2; }
            proc main(int x) { int r = 0; r = mid(x); }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        assert str(_env(result.summary.records[0])["r"]) == "((x + 1) * 2)"

    def test_branching_callee_splits_paths(self):
        program = parse_program(
            """
            proc sign(int v) {
                if (v > 0) { return 1; }
                return 0;
            }
            proc main(int x, int y) {
                int a = 0;
                int b = 0;
                a = sign(x);
                b = sign(y);
            }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        assert len(result.summary) == 4

    def test_error_inside_callee_reported(self):
        program = parse_program(
            """
            proc check(int v) { assert v > 0; return v; }
            proc main(int x) { int r = 0; r = check(x); }
            """
        )
        result = symbolic_execute(program, procedure_name="main")
        errors = result.summary.error_records
        assert len(errors) == 1
        assert str(errors[0].path_condition) == "(x <= 0)"

    def test_missing_return_value_raises(self):
        """Unvalidated program falling off the callee end with a target."""
        program = parse_program(
            """
            proc f(int v) { skip; }
            proc main(int x) { int r = 0; r = f(x); }
            """
        )
        with pytest.raises(RuntimeError, match="returned no value"):
            symbolic_execute(program, procedure_name="main")


CALLS_SOURCE = """
global int g = 0;

proc guard(int v, int lo) {
    if (v < lo) { g = g + 1; return lo; }
    return v;
}

proc main(int x, int y) {
    int a = 0;
    a = guard(x, 10);
    if (a > 5) { g = g * 2; }
    a = guard(a + y, 0);
}
"""


class TestCallSummaries:
    def test_callee_summaries_replay_across_versions(self):
        """A caller-only edit replays the untouched callee's summaries."""
        base = parse_program(CALLS_SOURCE)
        modified = parse_program(CALLS_SOURCE.replace("a > 5", "a > 6"))
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(base, "main", solver=solver, summary_cache=cache)
        warm = symbolic_execute(modified, "main", solver=solver, summary_cache=cache)
        cold = symbolic_execute(modified, "main", solver=ConstraintSolver())
        assert _distinct(warm.summary) == _distinct(cold.summary)
        assert warm.statistics.summary_cache_hits > 0
        assert warm.statistics.replayed_paths + warm.statistics.replayed_segments > 0

    def test_callee_edit_invalidates_reaching_summaries(self):
        """An edited callee must not replay its stale summaries."""
        base = parse_program(CALLS_SOURCE)
        modified = parse_program(CALLS_SOURCE.replace("g = g + 1;", "g = g + 2;"))
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(base, "main", solver=solver, summary_cache=cache)
        warm = symbolic_execute(modified, "main", solver=solver, summary_cache=cache)
        cold = symbolic_execute(modified, "main", solver=ConstraintSolver())
        assert _distinct(warm.summary) == _distinct(cold.summary)
        final_base = _env(cold.summary.records[0])
        final_warm = _env(warm.summary.records[0])
        assert str(final_base["g"]) == str(final_warm["g"])

    def test_interior_callee_replay_deletes_popped_scope(self):
        """Replay from a root inside a callee must not leak callee bindings.

        The upstream-only edit (a global write nothing downstream reads)
        invalidates the whole-run region but leaves the callee-interior
        branch regions intact, so the second run replays from roots whose
        recorded paths popped the callee scope: the rebased final
        environments must match a cold run exactly -- including the
        *absence* of the callee's formals and ``__return__``.
        """
        source = """
            global int g = 0;
            proc pick(int v) {
                if (v > 0) { return v; }
                return 0 - v;
            }
            proc main(int x) {
                g = 1;
                int r = 0;
                r = pick(x);
            }
        """
        base = parse_program(source)
        modified = parse_program(source.replace("g = 1;", "g = 2;"))
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(base, "main", solver=solver, summary_cache=cache)
        warm = symbolic_execute(modified, "main", solver=solver, summary_cache=cache)
        cold = symbolic_execute(modified, "main", solver=ConstraintSolver())
        assert warm.statistics.replayed_paths > 0
        warm_envs = {str(r.path_condition): _env(r) for r in warm.summary.records}
        cold_envs = {str(r.path_condition): _env(r) for r in cold.summary.records}
        assert warm_envs.keys() == cold_envs.keys()
        for pc, cold_env in cold_envs.items():
            warm_env = warm_envs[pc]
            assert set(warm_env) == set(cold_env), (
                f"replayed environment for {pc} has stale/missing names: "
                f"{sorted(set(warm_env) ^ set(cold_env))}"
            )
            assert {n: str(t) for n, t in warm_env.items()} == {
                n: str(t) for n, t in cold_env.items()
            }

    def test_frames_join_the_cache_fingerprint(self):
        """Roots inside a callee key on the frame stack, not just the env."""
        program = parse_program(CALLS_SOURCE)
        executor = SymbolicExecutor(
            program, procedure_name="main", summary_cache=SummaryCache()
        )
        from repro.cfg.ir import NodeKind
        from repro.solver.terms import mk_int
        from repro.symexec.state import CallFrame

        branch = next(
            n for n in executor.cfg.nodes if n.kind is NodeKind.BRANCH and n.call_depth == 1
        )
        signature = executor.region_index.signature(branch)
        env = {"v": mk_int(1), "lo": mk_int(2), "g": mk_int(0)}
        frame_a = CallFrame(callee="guard", saved=(("a", mk_int(3)),))
        frame_b = CallFrame(callee="guard", saved=(("a", mk_int(4)),))
        one = executor._fingerprint(env, signature, (), (frame_a,))
        two = executor._fingerprint(env, signature, (), (frame_b,))
        assert one is not None and two is not None
        assert one != two
