"""Tests for method summaries and path records."""

from repro.symexec.engine import symbolic_execute
from repro.symexec.summary import MethodSummary, PathRecord
from repro.symexec.state import PathCondition
from repro.solver.terms import BinaryTerm, IntConst, int_symbol

X = int_symbol("x")


def record(op, value, is_error=False):
    condition = PathCondition().extend(BinaryTerm(op, X, IntConst(value)))
    return PathRecord(condition, (("x", X),), trace=(0,), is_error=is_error)


class TestMethodSummary:
    def test_add_and_len(self):
        summary = MethodSummary("f")
        summary.add(record(">", 0))
        summary.add(record("<=", 0))
        assert len(summary) == 2
        assert len(summary.path_conditions) == 2

    def test_error_records_filter(self):
        summary = MethodSummary("f")
        summary.add(record(">", 0))
        summary.add(record("<=", 0, is_error=True))
        assert len(summary.error_records) == 1

    def test_distinct_path_conditions(self):
        summary = MethodSummary("f")
        summary.add(record(">", 0))
        summary.add(record(">", 0))
        summary.add(record("<", 0))
        assert len(summary.distinct_path_conditions()) == 2

    def test_describe_with_limit(self):
        summary = MethodSummary("f")
        for value in range(5):
            summary.add(record("==", value))
        text = summary.describe(limit=2)
        assert "5 path conditions" in text
        assert "3 more" in text

    def test_record_environment_accessor(self):
        rec = record(">", 0)
        assert str(rec.environment()["x"]) == "x"

    def test_summary_from_real_run(self, update_modified):
        result = symbolic_execute(update_modified, "update")
        summary = result.summary
        assert summary.procedure_name == "update"
        # every record's trace starts at the begin node and ends at the end node
        for rec in summary:
            assert rec.trace[0] == -1
            assert rec.trace[-1] == -2
