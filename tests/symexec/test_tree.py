"""Tests for the symbolic execution tree (Figure 1)."""

from repro.symexec.engine import symbolic_execute
from repro.symexec.tree import ExecutionTree, ExecutionTreeNode


class TestExecutionTree:
    def test_empty_tree(self):
        tree = ExecutionTree()
        assert tree.count() == 0
        assert tree.render() == "<empty tree>"

    def test_manual_tree_construction(self):
        root = ExecutionTreeNode("Loc: 1", {}, "true")
        child = ExecutionTreeNode("Loc: 2", {}, "(x > 0)", edge_label="true")
        root.add_child(child)
        tree = ExecutionTree(root)
        assert tree.count() == 2
        assert root.leaves() == [child]

    def test_figure1_tree_rendering(self, testx):
        result = symbolic_execute(testx, "testX", build_tree=True,
                                  tracked_variables=["x", "y"])
        rendering = result.tree.render()
        assert "PC: (x > 0)" in rendering
        assert "PC: (x <= 0)" in rendering
        assert "y: (y + x)" in rendering
        assert "y: (y - x)" in rendering

    def test_tree_matches_state_count(self, update_modified):
        result = symbolic_execute(update_modified, "update", build_tree=True)
        assert result.tree.count() == result.statistics.states_explored

    def test_leaf_count_equals_terminal_states(self, testx):
        result = symbolic_execute(testx, "testX", build_tree=True)
        assert len(result.tree.root.leaves()) == len(result.path_conditions)

    def test_tracked_variables_limit_environment(self, testx):
        result = symbolic_execute(testx, "testX", build_tree=True, tracked_variables=["y"])
        assert set(result.tree.root.environment) == {"y"}
