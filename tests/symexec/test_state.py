"""Tests for symbolic states and path conditions."""

from repro.cfg.builder import build_cfg
from repro.lang.parser import parse_program
from repro.solver.terms import BinaryTerm, IntConst, int_symbol
from repro.symexec.state import PathCondition, SymbolicState


X = int_symbol("x")


def small_cfg():
    return build_cfg(parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }"))


class TestPathCondition:
    def test_empty_is_true(self):
        assert str(PathCondition()) == "true"
        assert len(PathCondition()) == 0

    def test_extend_is_persistent(self):
        base = PathCondition()
        extended = base.extend(BinaryTerm(">", X, IntConst(0)))
        assert len(base) == 0
        assert len(extended) == 1

    def test_extend_simplifies(self):
        extended = PathCondition().extend(BinaryTerm("<", IntConst(1), IntConst(2)))
        assert str(extended) == "true"

    def test_holds_under_assignment(self):
        condition = PathCondition().extend(BinaryTerm(">", X, IntConst(0)))
        assert condition.holds({"x": 1})
        assert not condition.holds({"x": 0})

    def test_as_term_conjunction(self):
        condition = (
            PathCondition()
            .extend(BinaryTerm(">", X, IntConst(0)))
            .extend(BinaryTerm("<", X, IntConst(5)))
        )
        term = condition.as_term()
        assert term.evaluate({"x": 3}) is True
        assert term.evaluate({"x": 7}) is False

    def test_str_rendering(self):
        condition = PathCondition().extend(BinaryTerm(">", X, IntConst(0)))
        assert str(condition) == "(x > 0)"


class TestSymbolicState:
    def test_make_and_lookup(self):
        cfg = small_cfg()
        state = SymbolicState.make(cfg.begin, {"x": X})
        assert state.value_of("x") == X
        assert state.depth == 0

    def test_with_assignment_does_not_mutate(self):
        cfg = small_cfg()
        state = SymbolicState.make(cfg.begin, {"x": X})
        new_state = state.with_assignment(cfg.node(0), "x", IntConst(1))
        assert state.value_of("x") == X
        assert new_state.value_of("x") == IntConst(1)
        assert new_state.trace[-1] == 0

    def test_with_constraint_increments_depth(self):
        cfg = small_cfg()
        state = SymbolicState.make(cfg.begin, {"x": X})
        new_state = state.with_constraint(cfg.node(0), BinaryTerm(">", X, IntConst(0)))
        assert new_state.depth == state.depth + 1
        assert len(new_state.path_condition) == 1

    def test_with_node_extends_trace_only(self):
        cfg = small_cfg()
        state = SymbolicState.make(cfg.begin, {"x": X}, trace=(cfg.begin.node_id,))
        moved = state.with_node(cfg.node(0))
        assert moved.environment == state.environment
        assert moved.trace == (cfg.begin.node_id, 0)

    def test_describe_contains_location_and_pc(self):
        cfg = small_cfg()
        state = SymbolicState.make(cfg.begin, {"x": X})
        text = state.describe()
        assert "Loc: nbegin" in text
        assert "PC: true" in text
