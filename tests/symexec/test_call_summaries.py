"""Generalised (fresh-formal) call summaries: recording, replay, bail-outs.

The engine summarises loop-free callees over fresh symbolic formals and
instantiates the summary at each call site by substitution.  These tests pin
the eligibility gates (loopy callees never generalise; replay still bails
cleanly around ``While`` bodies) and the exactness of instantiated replay
against native execution.
"""

from repro.artifacts.interproc import cross_caller_pair
from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

LOOPY_CALLEE_SOURCE = """\
global int total = 0;

proc drain(int n) {
    int i = 0;
    while (i < n) {
        total = total + 1;
        i = i + 1;
    }
    return i;
}

proc main(int a, int b) {
    int r = 0;
    r = drain(a);
    if (b > 0) {
        total = total + r;
    }
}
"""

CALL_IN_LOOP_SOURCE = """\
global int acc = 0;

proc step(int v, int cap) {
    if (v > cap) {
        acc = acc + cap;
        return cap;
    }
    acc = acc + v;
    return v;
}

proc main(int x, int y) {
    int i = 0;
    int r = 0;
    while (i < 2) {
        r = step(x, y);
        i = i + 1;
    }
    if (r > 0) {
        acc = acc + 1;
    }
}
"""

TWO_SITES_SOURCE = """\
global int out = 0;

proc clamp(int v, int hi) {
    if (v > hi) {
        return hi;
    }
    return v;
}

proc main(int p, int q) {
    int a = 0;
    int b = 0;
    a = clamp(p, 10);
    b = clamp(q, 20);
    out = a + b;
}
"""


def _distinct_pcs(result):
    return sorted(map(str, result.summary.distinct_path_conditions()))


def _run(program, procedure, cache=None, solver=None, depth_bound=None):
    return symbolic_execute(
        program,
        procedure_name=procedure,
        solver=solver or ConstraintSolver(),
        summary_cache=cache,
        depth_bound=depth_bound,
    )


class TestLoopyCalleeNeverGeneralises:
    def test_while_in_callee_disables_generalisation(self):
        # Regression pin: a callee containing a While has an unbounded
        # standalone path set; the generalised machinery must bail before
        # recording anything, and the cached run must still match native.
        program = parse_program(LOOPY_CALLEE_SOURCE)
        native = _run(program, "main", depth_bound=8)
        cache = SummaryCache()
        solver = ConstraintSolver()
        first = _run(program, "main", cache=cache, solver=solver, depth_bound=8)
        second = _run(program, "main", cache=cache, solver=solver, depth_bound=8)
        for result in (first, second):
            statistics = result.statistics
            assert statistics.generalized_call_stores == 0
            assert statistics.generalized_call_hits == 0
            assert statistics.instantiated_paths == 0
            assert _distinct_pcs(result) == _distinct_pcs(native)
        assert cache.entries_per_callee() == {}

    def test_call_site_inside_while_body_stays_exact(self):
        # The caller loops around a loop-free callee: the call site sits
        # inside a While body, where suffix/segment replay must keep
        # bailing cleanly while call-summary instantiation stays exact.
        program = parse_program(CALL_IN_LOOP_SOURCE)
        native = _run(program, "main", depth_bound=10)
        cache = SummaryCache()
        solver = ConstraintSolver()
        first = _run(program, "main", cache=cache, solver=solver, depth_bound=10)
        second = _run(program, "main", cache=cache, solver=solver, depth_bound=10)
        assert _distinct_pcs(first) == _distinct_pcs(native)
        assert _distinct_pcs(second) == _distinct_pcs(native)
        assert cache.entries_per_callee().get("step", 0) <= 1


class TestGeneralisedReplay:
    def test_one_entry_serves_every_call_site(self):
        program = parse_program(TWO_SITES_SOURCE)
        cache = SummaryCache()
        solver = ConstraintSolver()
        result = _run(program, "main", cache=cache, solver=solver)
        statistics = result.statistics
        # Two syntactic call sites, one callee: exactly one generalised
        # entry recorded, and the second site replays it.
        assert cache.entries_per_callee() == {"clamp": 1}
        assert statistics.generalized_call_stores == 1
        assert statistics.generalized_call_hits >= 1
        assert _distinct_pcs(result) == _distinct_pcs(_run(program, "main"))

    def test_depth_bound_truncates_instantiated_paths(self):
        program = parse_program(TWO_SITES_SOURCE)
        for bound in (1, 2, 3):
            cache = SummaryCache()
            native = _run(program, "main", depth_bound=bound)
            cached = _run(program, "main", cache=cache, depth_bound=bound)
            assert _distinct_pcs(cached) == _distinct_pcs(native)

    def test_cross_program_replay(self):
        artifact_a, artifact_b = cross_caller_pair()
        program_a = parse_program(artifact_a.base_source)
        program_b = parse_program(artifact_b.base_source)
        cache = SummaryCache()
        solver = ConstraintSolver()
        _run(program_a, artifact_a.procedure_name, cache=cache, solver=solver)
        result_b = _run(program_b, artifact_b.procedure_name, cache=cache, solver=solver)
        statistics = result_b.statistics
        # B's callers never ran before, but the shared callee's generalised
        # entry (recorded by A) replays; nothing is re-recorded.
        assert statistics.generalized_call_hits >= 1
        assert statistics.generalized_call_stores == 0
        assert cache.entries_per_callee() == {"saturate": 1}
        native_b = _run(program_b, artifact_b.procedure_name)
        assert _distinct_pcs(result_b) == _distinct_pcs(native_b)
