"""Tests for the full symbolic execution engine."""

import pytest

from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.strategy import ExplorationStrategy


def run(source, name=None, **kwargs):
    return symbolic_execute(parse_program(source), procedure_name=name, **kwargs)


class TestFigure1Example:
    def test_two_feasible_paths(self, testx):
        result = symbolic_execute(testx, "testX")
        assert len(result.path_conditions) == 2
        conditions = {str(pc) for pc in result.path_conditions}
        assert conditions == {"(x > 0)", "(x <= 0)"}

    def test_symbolic_final_values(self, testx):
        result = symbolic_execute(testx, "testX")
        finals = {str(pc): record.environment()["y"] for pc, record in
                  zip(result.path_conditions, result.summary.records)}
        assert str(finals["(x > 0)"]) == "(y + x)"
        assert str(finals["(x <= 0)"]) == "(y - x)"

    def test_execution_tree_shape(self, testx):
        result = symbolic_execute(testx, "testX", build_tree=True)
        tree = result.tree
        assert tree is not None
        # begin -> branch -> {then, else} -> {end, end}: 6 states
        assert tree.count() == result.statistics.states_explored
        assert len(tree.root.leaves()) == 2


class TestBranchingAndFeasibility:
    def test_infeasible_path_is_pruned(self):
        result = run(
            "proc f(int x) { if (x > 0) { if (x < 0) { x = 1; } else { x = 2; } } }"
        )
        # the x<0 branch under x>0 is infeasible
        assert result.statistics.infeasible_branches == 1
        assert len(result.path_conditions) == 2

    def test_concrete_branch_takes_single_side(self):
        result = run("proc f(int x) { int y = 1; if (y > 0) { x = 1; } else { x = 2; } }")
        assert len(result.path_conditions) == 1
        # concrete conditions add no constraints
        assert str(result.path_conditions[0]) == "true"

    def test_else_if_chain_path_count(self):
        result = run(
            "proc f(int x) {"
            " if (x == 0) { x = 0; } else if (x == 1) { x = 1; } else { x = 2; } }"
        )
        assert len(result.path_conditions) == 3

    def test_independent_branches_multiply(self):
        result = run(
            "proc f(int a, int b) { if (a > 0) { skip; } if (b > 0) { skip; } }"
        )
        assert len(result.path_conditions) == 4

    def test_boolean_parameter_branches(self):
        result = run("proc f(bool b) { if (b) { skip; } else { skip; } }")
        assert len(result.path_conditions) == 2

    def test_update_full_execution_counts(self, update_modified):
        result = symbolic_execute(update_modified, "update")
        assert len(result.path_conditions) == 24
        assert result.statistics.infeasible_branches > 0

    def test_path_conditions_are_mutually_exclusive_models(self, update_modified, solver):
        result = symbolic_execute(update_modified, "update", solver=solver)
        # Each PC must be satisfiable (the engine already checked) and a model
        # of one PC must violate every other PC (paths partition the inputs).
        models = [solver.model(list(pc)) for pc in result.path_conditions]
        for index, model in enumerate(models):
            assert model is not None
            env = {name: model.get(name, 0) for name in ("PedalPos", "BSwitch", "PedalCmd")}
            satisfied = [pc for pc in result.path_conditions if pc.holds(env)]
            assert len(satisfied) == 1


class TestAssertionsAndErrors:
    def test_failing_assertion_creates_error_path(self):
        result = run("proc f(int x) { assert x > 0; x = 1; }")
        assert result.statistics.error_paths == 1
        errors = result.summary.error_records
        assert len(errors) == 1
        assert str(errors[0].path_condition) == "(x <= 0)"

    def test_assertion_that_cannot_fail(self):
        result = run("proc f(int x) { if (x > 0) { assert x >= 1; } }")
        assert result.statistics.error_paths == 0

    def test_error_paths_counted_in_path_conditions(self):
        result = run("proc f(int x) { assert x != 0; }")
        assert len(result.path_conditions) == 2


class TestLoopsAndDepthBounds:
    def test_loop_requires_depth_bound(self):
        result = run(
            "proc f(int n) { int i = 0; while (i < n) { i = i + 1; } }",
            depth_bound=5,
        )
        assert result.statistics.depth_bound_hits > 0
        assert len(result.path_conditions) >= 1

    def test_loop_unrolling_counts(self):
        result = run(
            "proc f(int n) { int i = 0; while (i < n) { i = i + 1; } }",
            depth_bound=4,
        )
        # paths: n<=0, n==1, n==2, n==3 complete within the bound
        assert len(result.path_conditions) == 4

    def test_concrete_loop_terminates_without_bound(self):
        result = run("proc f() { int i = 0; while (i < 3) { i = i + 1; } }")
        assert len(result.path_conditions) == 1


class TestGlobalsAndInitialState:
    def test_initialised_globals_are_concrete(self):
        result = run("global int g = 5; proc f(int x) { if (g > 0) { x = 1; } }")
        assert len(result.path_conditions) == 1
        assert str(result.path_conditions[0]) == "true"

    def test_uninitialised_globals_are_symbolic(self):
        result = run("global int g; proc f(int x) { if (g > 0) { x = 1; } }")
        assert len(result.path_conditions) == 2

    def test_initial_environment_contains_params_and_globals(self, update_modified):
        executor = SymbolicExecutor(update_modified, "update")
        env = executor.initial_environment()
        assert set(env) == {"AltPress", "Meter", "PedalPos", "BSwitch", "PedalCmd"}
        assert str(env["AltPress"]) == "0"
        assert str(env["PedalPos"]) == "PedalPos"


class TestStrategyHooks:
    class CountingStrategy(ExplorationStrategy):
        def __init__(self):
            self.visited = 0
            self.asked = 0

        def on_state(self, state):
            self.visited += 1

        def should_explore(self, successor):
            self.asked += 1
            return True

    class PruneEverythingStrategy(ExplorationStrategy):
        def should_explore(self, successor):
            return False

    def test_on_state_called_for_every_state(self, update_modified):
        strategy = self.CountingStrategy()
        executor = SymbolicExecutor(update_modified, "update", strategy=strategy)
        result = executor.run()
        assert strategy.visited == result.statistics.states_explored

    def test_should_explore_called_only_at_branch_successors(self):
        strategy = self.CountingStrategy()
        program = parse_program("proc f(int x) { x = 1; x = 2; if (x > 0) { x = 3; } }")
        executor = SymbolicExecutor(program, strategy=strategy)
        executor.run()
        # straight-line transitions are never submitted to the strategy; the
        # single (concrete) branch contributes exactly one consultation
        assert strategy.asked == 1

    def test_pruning_strategy_blocks_branch_exploration(self, update_modified):
        executor = SymbolicExecutor(
            update_modified, "update", strategy=self.PruneEverythingStrategy()
        )
        result = executor.run()
        assert len(result.path_conditions) == 0
        assert result.statistics.pruned_by_strategy > 0


class TestErrorsAndMisuse:
    def test_rejects_non_program_input(self):
        with pytest.raises(TypeError):
            SymbolicExecutor(42)

    def test_rejects_empty_program(self):
        with pytest.raises(ValueError):
            SymbolicExecutor(parse_program("global int g;"))

    def test_shared_solver_statistics_are_scoped_per_run(self, update_modified):
        solver = ConstraintSolver()
        first = symbolic_execute(update_modified, "update", solver=solver)
        second = symbolic_execute(update_modified, "update", solver=solver)
        assert first.statistics.solver_queries > 0
        # second run reuses the cache, so it answers entirely from cache hits
        assert second.statistics.solver_cache_hits == second.statistics.solver_queries
