"""Unit tests for the cross-version summary cache and engine replay."""

import pytest

from repro.artifacts import update_base_program, update_modified_program
from repro.cfg.builder import build_cfg
from repro.cfg.region_hash import RegionHashIndex
from repro.core.dise import run_dise
from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import (
    SegmentSummary,
    SubtreeSummary,
    SummaryCache,
    term_symbols,
)
from repro.solver.terms import BinaryTerm, IntConst, int_symbol


def _distinct(summary):
    return sorted(str(pc) for pc in summary.distinct_path_conditions())


def _records(summary):
    return sorted(
        (
            str(record.path_condition),
            tuple((name, str(term)) for name, term in record.final_environment),
            record.trace,
            record.is_error,
        )
        for record in summary.records
    )


class TestTermSymbols:
    def test_memoized_and_correct(self):
        term = BinaryTerm("+", int_symbol("p"), BinaryTerm("*", int_symbol("q"), IntConst(3)))
        assert term_symbols(term) == frozenset({"p", "q"})
        assert term_symbols(term) is term_symbols(term)


class TestSummaryCacheStore:
    def test_lookup_miss_then_hit(self):
        cache = SummaryCache()
        key = ("suffix", "d" * 32, (), (), None)
        assert cache.lookup(key) is None
        summary = SubtreeSummary(procedure="p", digest="d" * 32, records=())
        cache.store(key, summary)
        assert cache.lookup(key) is summary
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1
        assert cache.statistics.stores == 1

    def test_begin_version_tolerates_transient_absence(self):
        """A digest missing from one version survives until the tolerance."""
        cache = SummaryCache(miss_tolerance=2)
        key = ("suffix", "live", (), (), None)
        cache.store(key, SubtreeSummary(procedure="p", digest="live", records=()))
        assert cache.begin_version("p", frozenset({"other"})) == 0
        assert len(cache) == 1
        assert cache.begin_version("p", frozenset({"other"})) == 1
        assert len(cache) == 0
        assert cache.statistics.invalidations == 1

    def test_begin_version_resets_missing_streak(self):
        cache = SummaryCache(miss_tolerance=2)
        key = ("segment", "flip", (), (), None)
        cache.store(key, SegmentSummary(procedure="p", digest="flip", records=()))
        cache.begin_version("p", frozenset())          # absent once
        cache.begin_version("p", frozenset({"flip"}))  # reappears
        cache.begin_version("p", frozenset())          # absent once again
        assert len(cache) == 1

    def test_begin_version_scoped_by_procedure(self):
        cache = SummaryCache(miss_tolerance=1)
        cache.store(("suffix", "x", (), (), None),
                    SubtreeSummary(procedure="p", digest="x", records=()))
        cache.store(("suffix", "y", (), (), None),
                    SubtreeSummary(procedure="q", digest="y", records=()))
        cache.begin_version("p", frozenset())
        assert len(cache) == 1  # q's entry untouched

    def test_stale_after_evicts_unused_entries(self):
        cache = SummaryCache(miss_tolerance=99, stale_after=2)
        digest = "d"
        cache.store(("suffix", digest, (), (), None),
                    SubtreeSummary(procedure="p", digest=digest, records=()))
        live = frozenset({digest})
        cache.begin_version("p", live)
        cache.begin_version("p", live)
        assert len(cache) == 1
        cache.begin_version("p", live)
        assert len(cache) == 0


class TestEngineReplay:
    def test_second_run_is_fully_replayed(self):
        cache = SummaryCache()
        solver = ConstraintSolver()
        program = update_modified_program()
        first = symbolic_execute(program, "update", solver=solver, summary_cache=cache)
        second = symbolic_execute(program, "update", solver=solver, summary_cache=cache)
        assert _records(first.summary) == _records(second.summary)
        assert second.statistics.states_explored == 1
        assert second.statistics.replayed_paths == len(first.summary)
        assert second.statistics.summary_cache_hits == 1
        assert second.statistics.solver_queries == 0

    def test_replay_matches_cold_run_exactly(self):
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(update_base_program(), "update", solver=solver, summary_cache=cache)
        warm = symbolic_execute(
            update_modified_program(), "update", solver=solver, summary_cache=cache
        )
        cold = symbolic_execute(update_modified_program(), "update", solver=ConstraintSolver())
        assert _records(warm.summary) == _records(cold.summary)

    def test_cacheless_runs_never_touch_cache_counters(self):
        result = symbolic_execute(update_modified_program(), "update")
        statistics = result.statistics
        assert statistics.summary_cache_hits == 0
        assert statistics.summary_cache_misses == 0
        assert statistics.summary_cache_stores == 0
        assert statistics.replayed_paths == 0

    def test_build_tree_disables_cache(self):
        cache = SummaryCache()
        result = symbolic_execute(
            update_modified_program(), "update", summary_cache=cache, build_tree=True
        )
        assert result.tree is not None
        assert len(cache) == 0

    def test_depth_budget_partitions_entries(self):
        """Summaries recorded under one depth bound never serve another."""
        cache = SummaryCache()
        solver = ConstraintSolver()
        program = update_modified_program()
        bounded = symbolic_execute(
            program, "update", solver=solver, summary_cache=cache, depth_bound=2
        )
        unbounded = symbolic_execute(program, "update", solver=solver, summary_cache=cache)
        cold_bounded = symbolic_execute(
            update_modified_program(), "update", solver=ConstraintSolver(), depth_bound=2
        )
        cold = symbolic_execute(update_modified_program(), "update", solver=ConstraintSolver())
        assert _records(bounded.summary) == _records(cold_bounded.summary)
        assert _records(unbounded.summary) == _records(cold.summary)

    def test_prefix_dependent_subtrees_are_not_cached(self):
        """When a suffix re-reads prefix symbols, replay must not transfer."""
        source = """
        proc twice(int x) {
            if (x > 0) {
                x = x + 1;
            }
            if (x > 10) {
                x = x + 2;
            }
        }
        """
        program = parse_program(source)
        cache = SummaryCache()
        solver = ConstraintSolver()
        first = symbolic_execute(program, "twice", solver=solver, summary_cache=cache)
        second = symbolic_execute(program, "twice", solver=solver, summary_cache=cache)
        cold = symbolic_execute(parse_program(source), "twice", solver=ConstraintSolver())
        # The second-guard subtrees observe x, whose value embeds the prefix
        # symbol; only prefix-independent roots (here: the initial state,
        # whose path condition is empty) may replay.
        assert _records(second.summary) == _records(cold.summary)
        assert _records(first.summary) == _records(cold.summary)

    def test_dise_cache_roundtrip_on_update_example(self):
        cache = SummaryCache()
        solver = ConstraintSolver()
        first = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=solver, summary_cache=cache,
        )
        second = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=solver, summary_cache=cache,
        )
        cold = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=ConstraintSolver(),
        )
        assert _distinct(first.execution.summary) == _distinct(cold.execution.summary)
        assert _distinct(second.execution.summary) == _distinct(cold.execution.summary)
        assert second.execution.statistics.replayed_paths == len(cold.execution.summary)
        assert second.execution.statistics.states_explored == 1

    def test_dise_metrics_report_cache_fields(self):
        cache = SummaryCache()
        result = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=ConstraintSolver(), summary_cache=cache,
        )
        metrics = result.metrics()
        for key in (
            "summary_cache_hits",
            "summary_cache_misses",
            "summary_cache_stores",
            "summaries_invalidated",
            "replayed_paths",
        ):
            assert key in metrics
        assert metrics["summary_cache_stores"] > 0

    def test_write_coinciding_with_root_value_does_not_poison_replay(self):
        """Regression: a write whose value equals the recording root's value
        leaves no environment delta, so replay under a root with a different
        entry value must be ruled out by the fingerprint (write-only vars
        are pinned even though the subtree never reads them)."""
        template = """
        global int w = {init};
        proc f(int x) {{
            if (x > 0) {{
                w = 5;
            }} else {{
                w = 5;
            }}
        }}
        """
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(
            parse_program(template.format(init=5)), "f", solver=solver, summary_cache=cache
        )
        warm = symbolic_execute(
            parse_program(template.format(init=7)), "f", solver=solver, summary_cache=cache
        )
        cold = symbolic_execute(parse_program(template.format(init=7)), "f")
        assert _records(warm.summary) == _records(cold.summary)
        for record in warm.summary.records:
            assert str(dict(record.final_environment)["w"]) == "5"

    def test_segment_replay_skips_states_on_tail_edit(self):
        """An edit at the exit invalidates every suffix but no upstream segment."""
        base_source = """
        global int out = 0;
        proc tail(int c1, int c2) {
            if (c1 > 0) { out = out + 1; } else { out = out - 1; }
            if (c2 > 0) { out = out + 2; } else { out = out - 2; }
            out = out * 2;
        }
        """
        edited_source = base_source.replace("out * 2", "out * 3")
        cache = SummaryCache()
        solver = ConstraintSolver()
        symbolic_execute(parse_program(base_source), "tail", solver=solver, summary_cache=cache)
        warm = symbolic_execute(
            parse_program(edited_source), "tail", solver=solver, summary_cache=cache
        )
        cold = symbolic_execute(parse_program(edited_source), "tail", solver=ConstraintSolver())
        assert _records(warm.summary) == _records(cold.summary)
        assert warm.statistics.replayed_segments > 0
        assert warm.statistics.states_explored < cold.statistics.states_explored
        assert warm.statistics.solver_queries + warm.statistics.incremental_hits < (
            cold.statistics.solver_queries + cold.statistics.incremental_hits
        )


class TestRegionIndexSharing:
    def test_executor_accepts_prebuilt_index(self):
        program = update_modified_program()
        cfg = build_cfg(program.procedure("update"))
        index = RegionHashIndex(cfg)
        from repro.symexec.engine import SymbolicExecutor

        executor = SymbolicExecutor(
            program, procedure_name="update", cfg=cfg,
            summary_cache=SummaryCache(), region_index=index,
        )
        assert executor.region_index is index
        executor.run()
