"""Tests for translating AST expressions into symbolic terms."""

import pytest

from repro.lang.parser import parse_procedure
from repro.lang.ast_nodes import Assign
from repro.solver.terms import BinaryTerm, IntConst, Symbol, int_symbol
from repro.symexec.evaluator import UndefinedVariableError, evaluate_expression


def expression_from(source_expr, declared="int x, int y"):
    procedure = parse_procedure(f"proc p({declared}) {{ x = {source_expr}; }}")
    stmt = procedure.body[0]
    assert isinstance(stmt, Assign)
    return stmt.value


class TestEvaluation:
    def test_literal(self):
        term = evaluate_expression(expression_from("5"), {})
        assert term == IntConst(5)

    def test_variable_lookup(self):
        env = {"x": int_symbol("X"), "y": IntConst(3)}
        term = evaluate_expression(expression_from("y"), env)
        assert term == IntConst(3)

    def test_symbolic_addition(self):
        env = {"x": int_symbol("x"), "y": int_symbol("y")}
        term = evaluate_expression(expression_from("x + y"), env)
        assert term == BinaryTerm("+", Symbol("x"), Symbol("y"))

    def test_concrete_folding(self):
        env = {"x": IntConst(2), "y": IntConst(3)}
        assert evaluate_expression(expression_from("x * y + 1"), env) == IntConst(7)

    def test_partial_folding(self):
        env = {"x": int_symbol("x"), "y": IntConst(0)}
        # x + 0 simplifies to x
        assert evaluate_expression(expression_from("x + y"), env) == Symbol("x")

    def test_unary_operators(self):
        env = {"x": IntConst(4), "y": IntConst(0)}
        assert evaluate_expression(expression_from("-x"), env) == IntConst(-4)

    def test_comparison_expression(self):
        env = {"x": int_symbol("x"), "y": IntConst(1)}
        procedure = parse_procedure("proc p(int x, int y, bool b) { b = x > y; }")
        term = evaluate_expression(procedure.body[0].value, env)
        assert term == BinaryTerm(">", Symbol("x"), IntConst(1))

    def test_undefined_variable_raises(self):
        with pytest.raises(UndefinedVariableError):
            evaluate_expression(expression_from("x + y"), {"x": IntConst(1)})

    def test_paper_figure1_symbolic_value(self):
        """y = y + x with symbolic Y and X produces the Figure 1 value Y + X."""
        env = {"y": int_symbol("y"), "x": int_symbol("x")}
        procedure = parse_procedure("proc t(int x, int y) { y = y + x; }")
        term = evaluate_expression(procedure.body[0].value, env)
        assert str(term) == "(y + x)"
