"""Differential test: memoized lookahead == unmemoized lookahead, everywhere.

The walk memo is keyed on everything the walk's answer can depend on (region
content digest, decision-variable fingerprint, relevant path-condition
slice, canonical target set), so replaying a memoized result must be
observationally identical to re-walking.  This test pins that equivalence on
every version of all three paper artifacts: the directed runs must produce
exactly the same distinct path conditions, prune counts and affected-set
outcomes with and without memoization.
"""

import pytest

from repro.artifacts.mutants import asw_artifact, oae_artifact, wbs_artifact
from repro.core.dise import run_dise
from repro.solver.core import ConstraintSolver


def _distinct_pcs(result):
    return tuple(sorted(map(str, result.execution.summary.distinct_path_conditions())))


@pytest.mark.parametrize("make_artifact", [asw_artifact, wbs_artifact, oae_artifact])
def test_memoized_and_unmemoized_directed_runs_are_identical(make_artifact):
    artifact = make_artifact()
    base = artifact.base_program()
    total_memo_hits = 0
    for spec in artifact.versions:
        modified = artifact.version_program(spec.name)
        memoized = run_dise(
            base, modified, procedure=artifact.procedure_name,
            solver=ConstraintSolver(), lookahead_memoize=True,
        )
        unmemoized = run_dise(
            base, modified, procedure=artifact.procedure_name,
            solver=ConstraintSolver(), lookahead_memoize=False,
        )
        assert _distinct_pcs(memoized) == _distinct_pcs(unmemoized), spec.name
        assert len(memoized.path_conditions) == len(unmemoized.path_conditions), spec.name
        assert (
            memoized.execution.statistics.pruned_by_strategy
            == unmemoized.execution.statistics.pruned_by_strategy
        ), spec.name
        assert (
            memoized.execution.statistics.states_explored
            == unmemoized.execution.statistics.states_explored
        ), spec.name
        total_memo_hits += memoized.execution.statistics.lookahead_walk_memo_hits
        assert unmemoized.execution.statistics.lookahead_walk_memo_hits == 0
    # The equivalence must not be vacuous: the memo has to actually fire
    # somewhere in each artifact's history.
    assert total_memo_hits > 0
