"""Shared fixtures for the integration test suite."""

import pytest

from repro.parallel.shard import reset_scheduler_cost_model


@pytest.fixture(autouse=True)
def _cold_cost_model():
    """Start every test with a cold scheduler cost model.

    The model is process-global by design (history sweeps want its
    estimates to carry across runs), but the differential and speculation
    tests here assert scheduling-sensitive counters (shards, waves,
    token-miss fallbacks) that must not depend on which tests warmed the
    model first.
    """
    reset_scheduler_cost_model()
    yield
    reset_scheduler_cost_model()
