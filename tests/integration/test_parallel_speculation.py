"""Directed-run speculation pins: chained shard keys never miss.

PR 4 recorded honestly that directed parallel runs on the small artifacts
degraded (0.2-0.3x): the frontier collector's strategy sets went stale
against the replay run, so shard cache keys carried wrong strategy tokens
and the replay run fell back to native exploration.  The chained
collection waves (see ``repro.parallel.shard``) eliminate that failure
mode *by construction* -- these tests pin the end state: a directed
parallel run over a version history performs **zero** strategy-token-miss
fallbacks, at any worker count, even while shards are being killed.
"""

import pytest

from repro import faults
from repro.artifacts import oae_artifact, wbs_artifact
from repro.core.dise import DiSE
from repro.parallel.shard import ShardConfig, reset_scheduler_cost_model
from repro.symexec.summary_cache import SummaryCache


def _pcs(result):
    return sorted(str(c) for c in result.execution.summary.distinct_path_conditions())


def _run_history(artifact, workers, parallel_config=None, cache=None):
    """Run DiSE over the artifact's full history with a shared cache.

    Returns ``(total_token_misses, [(version, pcs)])``.
    """
    cache = cache if cache is not None else SummaryCache()
    previous = artifact.base_program()
    misses = 0
    pcs = []
    for name in artifact.version_names():
        program = artifact.version_program(name)
        result = DiSE(
            previous,
            program,
            procedure_name=artifact.procedure_name,
            summary_cache=cache,
            workers=workers,
            parallel_config=parallel_config,
        ).run()
        misses += result.execution.statistics.strategy_token_misses
        pcs.append((name, _pcs(result)))
        previous = program
    return misses, pcs


@pytest.fixture(autouse=True)
def _cold_cost_model():
    reset_scheduler_cost_model()
    yield
    reset_scheduler_cost_model()


class TestZeroTokenMissFallbacks:
    @pytest.mark.parametrize("make_artifact", [wbs_artifact, oae_artifact])
    @pytest.mark.parametrize("workers", [2, 4])
    def test_directed_history_sweep_has_zero_token_misses(self, make_artifact, workers):
        artifact = make_artifact()
        misses, parallel_pcs = _run_history(artifact, workers)
        assert misses == 0, (
            f"{artifact.name} workers={workers}: directed replay degraded to "
            f"native exploration {misses} times (stale shard strategy tokens)"
        )
        # And chaining never bought speed with wrong answers: the parallel
        # sweep's path conditions match a serial sweep version-for-version.
        _, serial_pcs = _run_history(artifact, workers=1)
        assert parallel_pcs == serial_pcs

    def test_serial_directed_runs_also_clean(self):
        # The metric itself must not fire on ordinary serial sweeps (a
        # token miss requires an entry under a *different* token, which a
        # serial history run never creates for the keys it probes).
        artifact = wbs_artifact()
        misses, _ = _run_history(artifact, workers=1)
        assert misses == 0


class TestChaosStillConverges:
    def test_crashed_shards_fall_back_exactly_not_approximately(self):
        """Chaos leg: kill shards with no retries and no inline rescue.

        A failed shard's key goes to the next wave's skip set and its
        subtree is explored natively *by the collector*, so the recorded
        entries still carry exact chained tokens: salvage holds AND the
        zero-token-miss guarantee survives the faults.
        """
        artifact = wbs_artifact()
        config = ShardConfig(
            cold_split_depth=1,
            min_shards=1,
            max_task_retries=0,
            retry_backoff_seconds=0.01,
            quarantine_inline=False,
        )
        plan = faults.parse_spec("seed:6,crash:0.3")
        with faults.injected(plan):
            misses, chaos_pcs = _run_history(
                artifact, workers=2, parallel_config=config
            )
        assert misses == 0
        _, serial_pcs = _run_history(artifact, workers=1)
        assert chaos_pcs == serial_pcs
