"""Differential oracle for the interprocedural layer.

For every version of the multi-procedure histories (ASW-CALLS, FCS), the
distinct path conditions must be identical across three execution regimes:

* **inline (cold)** -- fresh solver, no summary cache: every call is
  executed by stepping into the spliced callee body;
* **summary replay (warm)** -- the shared-cache batch runner, where
  unchanged callee regions replay per-procedure summaries instead of
  re-executing;
* **parallel (workers=2)** -- frontier subtrees (call frames included) are
  shipped to worker processes and merged back through the cache.

Also pins the interprocedural invalidation contract: a callee-only edit
leaves every caller region that does not reach the callee valid (their
summaries keep replaying), while the reaching regions hash differently and
are re-explored.
"""

import pytest

from repro.artifacts import interproc_artifacts
from repro.core.dise import run_dise
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute


def _distinct(summary):
    return tuple(sorted(str(pc) for pc in summary.distinct_path_conditions()))


def _artifact(name):
    return next(a for a in interproc_artifacts() if a.name == name)


@pytest.fixture(scope="module", params=[a.name for a in interproc_artifacts()])
def history_run(request):
    artifact = _artifact(request.param)
    report = VersionHistoryRunner(artifact, include_full=True).run()
    programs = {"base": parse_program(artifact.base_source)}
    for spec in artifact.versions:
        programs[spec.name] = parse_program(spec.source)
    return artifact, report, programs


class TestInterproceduralDifferential:
    def test_warm_dise_matches_inline_cold(self, history_run):
        artifact, report, programs = history_run
        assert len(report.versions) == len(artifact.versions)
        for row in report.versions:
            cold = run_dise(
                programs[row.previous],
                programs[row.version],
                procedure=artifact.procedure_name,
                solver=ConstraintSolver(),
            )
            assert row.dise_distinct_pcs == _distinct(cold.execution.summary), (
                f"{artifact.name} {row.previous}->{row.version}: warm DiSE diverged"
            )

    def test_warm_full_matches_inline_cold(self, history_run):
        artifact, report, programs = history_run
        for row in report.versions:
            cold = symbolic_execute(
                programs[row.version],
                procedure_name=artifact.procedure_name,
                solver=ConstraintSolver(),
            )
            assert row.full_distinct_pcs == _distinct(cold.summary), (
                f"{artifact.name} {row.version}: warm full exploration diverged"
            )

    def test_parallel_history_matches_serial(self, history_run):
        artifact, report, _ = history_run
        parallel = VersionHistoryRunner(artifact, workers=2).run()
        for serial_row, parallel_row in zip(report.versions, parallel.versions):
            assert serial_row.dise_distinct_pcs == parallel_row.dise_distinct_pcs, (
                f"{artifact.name} {serial_row.version}: parallel DiSE diverged"
            )
            assert serial_row.full_distinct_pcs == parallel_row.full_distinct_pcs, (
                f"{artifact.name} {serial_row.version}: parallel full leg diverged"
            )

    def test_summaries_actually_replayed(self, history_run):
        artifact, report, _ = history_run
        replayed = sum(
            (row.dise or {}).get("replayed_paths", 0)
            + (row.full or {}).get("replayed_paths", 0)
            + (row.full or {}).get("replayed_segments", 0)
            for row in report.versions
        )
        assert replayed > 0
        assert report.cache["hits"] > 0

    def test_callee_preserving_versions_reuse_summaries(self, history_run):
        """Caller-only edits leave every callee summary valid (>= 30% reuse)."""
        preserving = {
            "ASW-CALLS": {"v4", "v5"},
            "FCS": {"v3", "v6"},
        }
        artifact, report, _ = history_run
        for row in report.versions:
            if row.version not in preserving[artifact.name]:
                continue
            assert row.summary_reuse is not None
            assert row.summary_reuse >= 0.30, (
                f"{artifact.name} {row.version}: caller-only edit only reused "
                f"{row.summary_reuse}"
            )


class TestCalleeOnlyEditImpact:
    def test_callee_edit_affects_reaching_callers_only(self):
        """FCS v4 edits escalate; sensor_vote splices must stay unchanged."""
        artifact = _artifact("FCS")
        base = parse_program(artifact.base_source)
        modified = parse_program(artifact.version_source("v4"))
        result = run_dise(base, modified, procedure=artifact.procedure_name)
        static = result.diff_map
        from repro.cfg.ir import NodeKind

        changed_ids = {
            node.node_id
            for node in static.cfg_mod.nodes
            if static.mark_of_mod_node(node).value in ("changed", "added")
        }
        sensor_calls = [
            n
            for n in static.cfg_mod.nodes
            if n.kind is NodeKind.CALL and n.callee == "sensor_vote"
        ]
        escalate_calls = [
            n
            for n in static.cfg_mod.nodes
            if n.kind is NodeKind.CALL and n.callee == "escalate"
        ]
        assert sensor_calls and escalate_calls
        # The edited callee's call sites are changed (digest shift)...
        assert all(n.node_id in changed_ids for n in escalate_calls)
        # ...while call sites of the untouched callee are not.
        assert all(n.node_id not in changed_ids for n in sensor_calls)
