"""Integration tests spanning the whole pipeline on the evaluation artifacts.

These are the programmatic counterparts of the benchmark harness: they check
the *relational* claims of the paper's Table 2 and Table 3 (DiSE states and
path conditions never exceed full symbolic execution; localised changes give
large reductions; changes that do not influence any branch give zero affected
path conditions) on a subset of versions small enough for the unit-test run.
"""

import pytest

from repro.artifacts import asw_artifact, oae_artifact, wbs_artifact
from repro.core.dise import compare_dise_with_full, run_dise
from repro.evolution.regression import regression_analysis
from repro.evolution.testgen import generate_tests
from repro.symexec.engine import symbolic_execute


class TestPublicApiSurface:
    def test_top_level_imports(self):
        import repro

        assert callable(repro.parse_program)
        assert callable(repro.run_dise)
        assert callable(repro.symbolic_execute)
        assert callable(repro.generate_tests)

    def test_quickstart_flow(self):
        from repro import parse_program, run_dise

        base = parse_program("proc f(int x) { if (x == 0) { x = 1; } else { x = 2; } }")
        modified = parse_program("proc f(int x) { if (x <= 0) { x = 1; } else { x = 2; } }")
        result = run_dise(base, modified, procedure="f")
        assert len(result.path_conditions) == 2


@pytest.mark.parametrize(
    "artifact,version",
    [
        (asw_artifact(), "v2"),
        (asw_artifact(), "v5"),
        (wbs_artifact(), "v5"),
        (oae_artifact(), "v2"),
    ],
    ids=lambda value: value if isinstance(value, str) else value.name,
)
class TestTable2Relations:
    def test_dise_is_never_worse_than_full(self, artifact, version):
        row = compare_dise_with_full(
            artifact.base_program(),
            artifact.version_program(version),
            procedure=artifact.procedure_name,
            version_label=version,
        )
        assert row.dise_path_conditions <= row.full_path_conditions
        assert row.dise_states <= row.full_states

    def test_dise_conditions_are_full_conditions(self, artifact, version):
        modified = artifact.version_program(version)
        dise_result = run_dise(
            artifact.base_program(), modified, procedure=artifact.procedure_name
        )
        full_result = symbolic_execute(modified, artifact.procedure_name)
        full_set = {str(pc) for pc in full_result.path_conditions}
        assert {str(pc) for pc in dise_result.path_conditions} <= full_set


class TestLocalisedVersusGlobalChanges:
    def test_output_only_asw_change_yields_zero_affected_paths(self):
        artifact = asw_artifact()
        result = run_dise(
            artifact.base_program(),
            artifact.version_program("v7"),
            procedure=artifact.procedure_name,
        )
        assert len(result.path_conditions) == 0

    def test_guard_change_yields_large_reduction_in_asw(self):
        artifact = asw_artifact()
        row = compare_dise_with_full(
            artifact.base_program(),
            artifact.version_program("v2"),
            procedure=artifact.procedure_name,
        )
        assert row.dise_path_conditions * 10 <= row.full_path_conditions

    def test_broad_oae_change_affects_most_paths(self):
        artifact = oae_artifact()
        row = compare_dise_with_full(
            artifact.base_program(),
            artifact.version_program("v6"),
            procedure=artifact.procedure_name,
        )
        assert row.dise_path_conditions >= row.full_path_conditions // 2


class TestTable3Workflow:
    def test_regression_workflow_on_wbs_version(self):
        artifact = wbs_artifact()
        report = regression_analysis(
            artifact.base_program(),
            artifact.version_program("v5"),
            procedure=artifact.procedure_name,
            version="v5",
            changes=artifact.version("v5").change_count,
        )
        base_suite = generate_tests(
            symbolic_execute(artifact.base_program(), artifact.procedure_name).summary,
            artifact.base_program().procedure(artifact.procedure_name),
        )
        assert report.total <= len(base_suite) + report.added_count
        assert report.selected_count <= len(base_suite)

    def test_selected_tests_really_exist_in_base_suite(self):
        artifact = asw_artifact()
        version = "v4"
        report = regression_analysis(
            artifact.base_program(),
            artifact.version_program(version),
            procedure=artifact.procedure_name,
            version=version,
            changes=1,
        )
        base_suite = generate_tests(
            symbolic_execute(artifact.base_program(), artifact.procedure_name).summary,
            artifact.base_program().procedure(artifact.procedure_name),
        )
        base_calls = set(base_suite.call_strings())
        assert set(report.selected) <= base_calls
        assert not (set(report.added) & base_calls)
