"""Differential oracle for the cross-version summary cache.

The summary cache claims its replays are *exact*: a cached run must produce
the same distinct path conditions a cold run produces, for every version of
every artifact history.  These tests are what make that claim trustworthy
-- they run each history twice, once through the shared-cache batch runner
and once as isolated cold runs (fresh solver, no cache), and compare the
distinct path-condition sets of both the directed (DiSE) and the
full-exploration legs.
"""

import pytest

from repro.artifacts import all_artifacts
from repro.core.dise import run_dise
from repro.evolution.history import VersionHistoryRunner
from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute


def _distinct(summary):
    return tuple(sorted(str(pc) for pc in summary.distinct_path_conditions()))


@pytest.fixture(scope="module", params=[a.name for a in all_artifacts()])
def history_run(request):
    """One shared-cache history run per artifact (the system under test)."""
    artifact = next(a for a in all_artifacts() if a.name == request.param)
    report = VersionHistoryRunner(artifact, include_full=True).run()
    programs = {"base": parse_program(artifact.base_source)}
    for spec in artifact.versions:
        programs[spec.name] = parse_program(spec.source)
    return artifact, report, programs


class TestDifferentialHistory:
    def test_cached_dise_matches_cold_dise(self, history_run):
        """Same distinct affected PCs whether subtrees are replayed or re-run."""
        artifact, report, programs = history_run
        assert len(report.versions) == len(artifact.versions)
        for row in report.versions:
            cold = run_dise(
                programs[row.previous],
                programs[row.version],
                procedure=artifact.procedure_name,
                solver=ConstraintSolver(),
            )
            assert row.dise_distinct_pcs == _distinct(cold.execution.summary), (
                f"{artifact.name} {row.previous}->{row.version}: cached DiSE diverged"
            )

    def test_cached_full_matches_cold_full(self, history_run):
        """The full-exploration leg is exact as well (ColorGo-style oracle)."""
        artifact, report, programs = history_run
        for row in report.versions:
            cold = symbolic_execute(
                programs[row.version],
                procedure_name=artifact.procedure_name,
                solver=ConstraintSolver(),
            )
            assert row.full_distinct_pcs == _distinct(cold.summary), (
                f"{artifact.name} {row.version}: cached full exploration diverged"
            )

    def test_some_versions_actually_replayed(self, history_run):
        """Guard against the cache silently never hitting (vacuous equality)."""
        artifact, report, _ = history_run
        replayed = sum(
            (row.dise or {}).get("replayed_paths", 0)
            + (row.full or {}).get("replayed_paths", 0)
            + (row.full or {}).get("replayed_segments", 0)
            for row in report.versions
        )
        assert replayed > 0
        assert report.cache["hits"] > 0


def test_directed_replay_preserves_error_paths():
    """Replayed subtrees keep assertion-failure records intact."""
    base = parse_program(
        """
        proc check(int x, int y) {
            if (x > 0) {
                assert y != 1;
            }
            if (y > 5) {
                y = y + 1;
            }
        }
        """
    )
    modified = parse_program(
        """
        proc check(int x, int y) {
            if (x >= 0) {
                assert y != 1;
            }
            if (y > 5) {
                y = y + 1;
            }
        }
        """
    )
    from repro.symexec.summary_cache import SummaryCache

    cache = SummaryCache()
    solver = ConstraintSolver()
    warm_first = symbolic_execute(base, "check", solver=solver, summary_cache=cache)
    warm = symbolic_execute(modified, "check", solver=solver, summary_cache=cache)
    cold = symbolic_execute(modified, "check", solver=ConstraintSolver())
    assert _distinct(warm.summary) == _distinct(cold.summary)
    assert len(warm.summary.error_records) == len(cold.summary.error_records) > 0
    assert warm_first.statistics.summary_cache_stores > 0
