"""Differential acceptance tests for the parallel exploration subsystem.

Two pinned properties:

* ``workers > 1`` produces the **identical distinct path-condition set** as
  ``workers = 1`` on every version of every artifact history (ASW, WBS,
  OAE -- 40 version pairs).  This holds by construction (workers feed the
  exact-replay summary cache; speculation misses fall back to native
  exploration) and is pinned here against regressions.
* a cold history run that dumps the persistent summary store, followed by
  a warm resume in a **fresh process** (new intern table, new caches, new
  solver), reuses a substantial share of the stored summaries and reports
  identical results.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.artifacts import all_artifacts
from repro.core.dise import DiSE
from repro.symexec.engine import symbolic_execute

REUSE_FLOOR = 0.30


def _pcs(summary):
    return sorted(str(c) for c in summary.distinct_path_conditions())


def _artifact(name):
    return next(a for a in all_artifacts() if a.name == name)


def _version_pairs(artifact):
    history = artifact.history()
    programs = {}

    def parsed(source):
        if source not in programs:
            from repro.lang.parser import parse_program

            programs[source] = parse_program(source)
        return programs[source]

    return [
        (prev_name, name, parsed(prev_source), parsed(source))
        for (prev_name, _, _, prev_source), (name, _, _, source) in zip(history, history[1:])
    ]


@pytest.mark.parametrize("artifact_name", ["ASW", "WBS", "OAE"])
def test_parallel_dise_identical_distinct_pcs_all_versions(artifact_name):
    artifact = _artifact(artifact_name)
    for prev_name, name, base, modified in _version_pairs(artifact):
        serial = DiSE(base, modified, procedure_name=artifact.procedure_name).run()
        parallel = DiSE(
            base, modified, procedure_name=artifact.procedure_name, workers=2
        ).run()
        assert _pcs(parallel.execution.summary) == _pcs(serial.execution.summary), (
            f"{artifact_name} {prev_name}->{name}: parallel DiSE diverged from serial"
        )


@pytest.mark.parametrize("artifact_name", ["ASW", "WBS", "OAE"])
def test_parallel_full_execution_identical_distinct_pcs(artifact_name):
    artifact = _artifact(artifact_name)
    for _, name, _, modified in _version_pairs(artifact):
        serial = symbolic_execute(modified, procedure_name=artifact.procedure_name)
        parallel = symbolic_execute(
            modified, procedure_name=artifact.procedure_name, workers=2
        )
        assert _pcs(parallel.summary) == _pcs(serial.summary), (
            f"{artifact_name} {name}: parallel full execution diverged from serial"
        )


_RESUME_SCRIPT = r"""
import json, sys
from repro.artifacts import all_artifacts
from repro.evolution.history import VersionHistoryRunner

artifact_name, store = sys.argv[1], sys.argv[2]
artifact = next(a for a in all_artifacts() if a.name == artifact_name)
runner = VersionHistoryRunner(artifact, store_path=store)
report = runner.run()
seed = report.seed or {}
print(json.dumps({
    "cache": report.cache,
    "seed_paths": seed.get("paths", 0),
    "seed_replayed": seed.get("replayed_paths", 0),
    "seed_distinct": seed.get("distinct_path_conditions", 0),
    "pcs": {
        row.version: [list(row.dise_distinct_pcs), list(row.full_distinct_pcs)]
        for row in report.versions
    },
}))
"""


def test_store_warm_resume_in_fresh_process(tmp_path):
    """Cold run + dump, then a genuinely fresh process resumes warm."""
    store = str(tmp_path / "asw_store.json")
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def run():
        proc = subprocess.run(
            [sys.executable, "-c", _RESUME_SCRIPT, "ASW", store],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return json.loads(proc.stdout)

    cold = run()
    assert cold["cache"]["store_loaded"] == 0
    assert cold["cache"]["store_dumped"] > 0
    assert cold["seed_replayed"] == 0, "cold seed leg has nothing to replay"

    warm = run()
    assert warm["cache"]["store_loaded"] == cold["cache"]["store_dumped"]
    assert warm["cache"]["adopted"] == warm["cache"]["store_loaded"]

    # Identical results across the process fence.
    assert warm["pcs"] == cold["pcs"]
    assert warm["seed_distinct"] == cold["seed_distinct"]

    # The seed leg re-executes the exact program the cold run recorded, so
    # its reuse isolates what the on-disk store contributed: nothing else
    # could have warmed a fresh process's cache.
    assert warm["seed_paths"] > 0
    seed_reuse = warm["seed_replayed"] / warm["seed_paths"]
    assert seed_reuse >= REUSE_FLOOR, (
        f"fresh-process warm resume replayed only {seed_reuse:.0%} of the seed leg"
    )
