"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.artifacts.simple import (
    TESTX_SOURCE,
    UPDATE_BASE_SOURCE,
    UPDATE_MODIFIED_SOURCE,
    testx_program,
    update_base_program,
    update_modified_program,
)
from repro.cfg.builder import build_cfg
from repro.solver.core import ConstraintSolver


@pytest.fixture
def solver():
    return ConstraintSolver()


@pytest.fixture
def testx():
    return testx_program()


@pytest.fixture
def update_base():
    return update_base_program()


@pytest.fixture
def update_modified():
    return update_modified_program()


@pytest.fixture
def update_modified_cfg(update_modified):
    return build_cfg(update_modified, "update")


@pytest.fixture
def update_base_cfg(update_base):
    return build_cfg(update_base, "update")


@pytest.fixture
def testx_source():
    return TESTX_SOURCE


@pytest.fixture
def update_base_source():
    return UPDATE_BASE_SOURCE


@pytest.fixture
def update_modified_source():
    return UPDATE_MODIFIED_SOURCE
