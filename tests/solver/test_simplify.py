"""Tests for term simplification."""

from hypothesis import given, settings, strategies as st

from repro.solver.simplify import simplify
from repro.solver.terms import (
    FALSE,
    TRUE,
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    NotTerm,
    int_symbol,
)

X = int_symbol("x")
Y = int_symbol("y")


class TestConstantFolding:
    def test_arithmetic_folding(self):
        assert simplify(BinaryTerm("+", IntConst(2), IntConst(3))) == IntConst(5)
        assert simplify(BinaryTerm("*", IntConst(4), IntConst(5))) == IntConst(20)

    def test_comparison_folding(self):
        assert simplify(BinaryTerm("<", IntConst(1), IntConst(2))) == TRUE
        assert simplify(BinaryTerm("==", IntConst(1), IntConst(2))) == FALSE

    def test_boolean_folding(self):
        assert simplify(BinaryTerm("&&", TRUE, FALSE)) == FALSE

    def test_division_by_zero_not_folded(self):
        term = BinaryTerm("/", IntConst(1), IntConst(0))
        assert simplify(term) == term

    def test_nested_folding(self):
        term = BinaryTerm("+", BinaryTerm("*", IntConst(2), IntConst(3)), IntConst(1))
        assert simplify(term) == IntConst(7)


class TestAlgebraicIdentities:
    def test_add_zero(self):
        assert simplify(BinaryTerm("+", X, IntConst(0))) == X
        assert simplify(BinaryTerm("+", IntConst(0), X)) == X

    def test_subtract_zero_and_self(self):
        assert simplify(BinaryTerm("-", X, IntConst(0))) == X
        assert simplify(BinaryTerm("-", X, X)) == IntConst(0)

    def test_multiply_by_zero_and_one(self):
        assert simplify(BinaryTerm("*", X, IntConst(0))) == IntConst(0)
        assert simplify(BinaryTerm("*", IntConst(1), X)) == X

    def test_divide_by_one(self):
        assert simplify(BinaryTerm("/", X, IntConst(1))) == X

    def test_logical_identities(self):
        cmp_term = BinaryTerm(">", X, IntConst(0))
        assert simplify(BinaryTerm("&&", TRUE, cmp_term)) == cmp_term
        assert simplify(BinaryTerm("&&", FALSE, cmp_term)) == FALSE
        assert simplify(BinaryTerm("||", FALSE, cmp_term)) == cmp_term
        assert simplify(BinaryTerm("||", TRUE, cmp_term)) == TRUE

    def test_comparison_of_equal_terms(self):
        assert simplify(BinaryTerm("==", X, X)) == TRUE
        assert simplify(BinaryTerm("<", X, X)) == FALSE
        assert simplify(BinaryTerm("<=", X, X)) == TRUE

    def test_double_not(self):
        assert simplify(NotTerm(NotTerm(X))) == X

    def test_double_negation(self):
        assert simplify(NegTerm(NegTerm(X))) == X

    def test_negation_of_constant(self):
        assert simplify(NegTerm(IntConst(4))) == IntConst(-4)


@st.composite
def arithmetic_terms(draw, depth=0):
    """Random integer terms over x and y with small constants."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(min_value=0, max_value=2))
        if choice == 0:
            return IntConst(draw(st.integers(min_value=-10, max_value=10)))
        return X if choice == 1 else Y
    op = draw(st.sampled_from(["+", "-", "*"]))
    left = draw(arithmetic_terms(depth=depth + 1))
    right = draw(arithmetic_terms(depth=depth + 1))
    return BinaryTerm(op, left, right)


class TestSimplifyPreservesSemantics:
    @given(arithmetic_terms(), st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=150, deadline=None)
    def test_simplified_term_evaluates_identically(self, term, x, y):
        env = {"x": x, "y": y}
        assert simplify(term).evaluate(env) == term.evaluate(env)

    @given(arithmetic_terms(), arithmetic_terms(), st.sampled_from(["<", "<=", "==", "!=", ">", ">="]),
           st.integers(-5, 5), st.integers(-5, 5))
    @settings(max_examples=150, deadline=None)
    def test_simplified_comparison_evaluates_identically(self, left, right, op, x, y):
        term = BinaryTerm(op, left, right)
        env = {"x": x, "y": y}
        assert simplify(term).evaluate(env) == term.evaluate(env)
