"""Tests for linearisation of terms into normal-form atoms."""

import pytest

from repro.solver.linear import (
    EQ,
    LE,
    NE,
    LinearAtom,
    LinearExpr,
    NonLinearError,
    linearize_comparison,
    linearize_int,
)
from repro.solver.terms import BinaryTerm, BoolConst, IntConst, NegTerm, int_symbol

X = int_symbol("x")
Y = int_symbol("y")


class TestLinearExpr:
    def test_from_dict_drops_zero_coefficients(self):
        expr = LinearExpr.from_dict({"x": 0, "y": 2}, 1)
        assert expr.coeffs == (("y", 2),)

    def test_add_and_subtract(self):
        a = LinearExpr.from_dict({"x": 1, "y": 2}, 3)
        b = LinearExpr.from_dict({"x": 1, "y": -2}, 1)
        assert a.add(b).coefficient_map() == {"x": 2}
        assert a.add(b).constant == 4
        assert a.subtract(a).is_constant()

    def test_scale_and_negate(self):
        expr = LinearExpr.from_dict({"x": 2}, -1)
        assert expr.scale(3).coefficient_map() == {"x": 6}
        assert expr.negate().constant == 1

    def test_evaluate(self):
        expr = LinearExpr.from_dict({"x": 2, "y": -1}, 5)
        assert expr.evaluate({"x": 3, "y": 4}) == 7

    def test_str_rendering(self):
        expr = LinearExpr.from_dict({"x": 1, "y": -2}, 3)
        text = str(expr)
        assert "x" in text and "y" in text and "3" in text


class TestLinearizeInt:
    def test_constant_and_symbol(self):
        assert linearize_int(IntConst(4)).constant == 4
        assert linearize_int(X).coefficient_map() == {"x": 1}

    def test_addition_and_subtraction(self):
        expr = linearize_int(BinaryTerm("-", BinaryTerm("+", X, Y), X))
        assert expr.coefficient_map() == {"y": 1}

    def test_multiplication_by_constant(self):
        expr = linearize_int(BinaryTerm("*", IntConst(3), X))
        assert expr.coefficient_map() == {"x": 3}
        expr = linearize_int(BinaryTerm("*", X, IntConst(-2)))
        assert expr.coefficient_map() == {"x": -2}

    def test_negation(self):
        expr = linearize_int(NegTerm(BinaryTerm("+", X, IntConst(1))))
        assert expr.coefficient_map() == {"x": -1}
        assert expr.constant == -1

    def test_constant_division_folds(self):
        expr = linearize_int(BinaryTerm("/", IntConst(7), IntConst(2)))
        assert expr.constant == 3

    @pytest.mark.parametrize(
        "term",
        [
            BinaryTerm("*", X, Y),
            BinaryTerm("/", X, IntConst(2)),
            BinaryTerm("%", X, IntConst(2)),
            BoolConst(True),
        ],
    )
    def test_nonlinear_terms_raise(self, term):
        with pytest.raises(NonLinearError):
            linearize_int(term)


class TestLinearizeComparison:
    def test_less_than_uses_integer_shift(self):
        atom = linearize_comparison("<", X, IntConst(5))
        # x < 5 over ints becomes x - 5 + 1 <= 0
        assert atom.op == LE
        assert atom.expr.constant == -4

    def test_greater_than(self):
        atom = linearize_comparison(">", X, IntConst(0))
        assert atom.op == LE
        assert atom.holds({"x": 1})
        assert not atom.holds({"x": 0})

    def test_equality_and_disequality(self):
        assert linearize_comparison("==", X, Y).op == EQ
        assert linearize_comparison("!=", X, Y).op == NE

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "==", "!="])
    @pytest.mark.parametrize("x", [-3, 0, 2, 5])
    def test_atom_agrees_with_python_semantics(self, op, x):
        atom = linearize_comparison(op, X, IntConst(2))
        expected = {
            "<": x < 2,
            "<=": x <= 2,
            ">": x > 2,
            ">=": x >= 2,
            "==": x == 2,
            "!=": x != 2,
        }[op]
        assert atom.holds({"x": x}) == expected

    def test_trivially_true_and_false(self):
        assert linearize_comparison("<", IntConst(1), IntConst(2)).is_trivially_true()
        assert linearize_comparison(">", IntConst(1), IntConst(2)).is_trivially_false()

    def test_variables(self):
        atom = linearize_comparison("==", BinaryTerm("+", X, Y), IntConst(0))
        assert atom.variables() == frozenset({"x", "y"})
