"""Branch-and-bound seeding with a context's narrowed interval box."""

from hypothesis import given, settings

from repro.solver.context import SolverContext
from repro.solver.core import ConstraintSolver
from repro.solver.intervals import Interval
from repro.solver.terms import bool_symbol, int_symbol, mk_binary, mk_int

from tests.solver.test_property_solver import constraint_sets  # reuse generator

X = int_symbol("x")
Y = int_symbol("y")


def _disjunction(left, right):
    return mk_binary("||", left, right)


def test_context_fallback_seeds_the_box():
    solver = ConstraintSolver()
    context = SolverContext(solver)
    context.push(mk_binary("<", X, mk_int(10)))
    context.push(mk_binary(">", X, mk_int(0)))
    # A deferred disjunction forces the complete-solver fallback.
    context.push(_disjunction(mk_binary("==", Y, X), mk_binary("==", Y, mk_int(99))))
    result = context.check()
    assert result.satisfiable
    assert solver.statistics.context_fallbacks == 1
    assert solver.statistics.box_seeds == 1


def test_seed_never_widens_and_unknown_vars_are_ignored():
    solver = ConstraintSolver(bound=16)
    seed = {
        "x": Interval(-1000, 1000),  # wider than the solver bound: no effect
        "zz": Interval(0, 0),  # not a constraint variable: ignored
    }
    result = solver.check([mk_binary("<", X, mk_int(5))], seed_box=seed)
    assert result.satisfiable
    assert solver.statistics.box_seeds == 0  # nothing was actually tightened


def test_seeded_unsat_stays_unsat_and_counts():
    solver = ConstraintSolver()
    constraints = [
        _disjunction(mk_binary("==", X, mk_int(1)), mk_binary("==", X, mk_int(2))),
        mk_binary(">", X, mk_int(5)),
    ]
    unseeded = solver.check(constraints)
    assert not unseeded.satisfiable
    seeded = ConstraintSolver()
    result = seeded.check(constraints, seed_box={"x": Interval(6, 100)})
    assert not result.satisfiable
    assert seeded.statistics.box_seeds >= 1


def test_seeding_reduces_branch_steps_on_wide_equalities():
    """The point of the satellite: a tight start skips the ±2^16 bisection."""
    constraints = [
        # x == y (two-variable equality: undecidable by the box alone, so the
        # context must fall back), plus a disjunction to defer.
        mk_binary("==", X, Y),
        _disjunction(mk_binary("<", X, mk_int(3)), bool_symbol("p")),
        mk_binary("==", Y, mk_int(7)),
        mk_binary("!=", X, mk_int(8)),
    ]
    cold = ConstraintSolver()
    cold_result = cold.check(constraints)
    warm = ConstraintSolver()
    warm_result = warm.check(
        constraints, seed_box={"x": Interval(7, 7), "y": Interval(7, 7)}
    )
    assert cold_result.satisfiable == warm_result.satisfiable
    assert warm.statistics.branch_steps <= cold.statistics.branch_steps
    # One per tightened branch-and-bound start; case splits each count.
    assert warm.statistics.box_seeds >= 1


@given(constraint_sets())
@settings(max_examples=50, deadline=None)
def test_context_check_with_seeding_matches_plain_solver(constraints):
    """Differential: the context (whose fallbacks now seed the box) must
    agree with a plain unseeded solve of the same conjunction."""
    plain = ConstraintSolver()
    try:
        expected = plain.check(list(constraints)).satisfiable
    except Exception:
        return  # outside the decidable fragment; context would raise too
    solver = ConstraintSolver()
    context = SolverContext(solver)
    for term in constraints:
        context.push(term)
    assert context.check().satisfiable == expected
