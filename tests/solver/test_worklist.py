"""Property tests for the worklist (delta) propagation and equality substitution.

The incremental context narrows interval domains with a variable-indexed
worklist seeded only by each push's delta atoms.  Bounds-consistency
narrowing operators are monotone, so chaotic iteration must converge to the
same fixed point as re-running whole-set propagation -- these tests pin that
equivalence on seeded random atom sets, both for the raw
:func:`~repro.solver.intervals.propagate_delta` helper and for the fixpoints
a :class:`~repro.solver.context.SolverContext` accumulates push by push.

The equality-substitution fast path is cross-checked against the complete
solver on random mixed conjunctions.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.solver.context import SolverContext, _substitute_equalities
from repro.solver.core import ConstraintSolver
from repro.solver.intervals import (
    Domains,
    Interval,
    initial_domains,
    propagate,
    propagate_delta,
)
from repro.solver.linear import EQ, LE, NE, LinearAtom, LinearExpr
from repro.solver.terms import BinaryTerm, IntConst, int_symbol

VARIABLES = ("x", "y", "z")
OPS = (LE, EQ, NE)


def random_atoms(seed: int, count: int) -> list:
    rng = random.Random(seed)
    atoms = []
    for _ in range(count):
        coeffs = {
            name: rng.randint(-3, 3)
            for name in rng.sample(VARIABLES, rng.randint(1, len(VARIABLES)))
        }
        expr = LinearExpr.from_dict(coeffs, rng.randint(-8, 8))
        if expr.is_constant():
            continue
        atoms.append(LinearAtom(expr, rng.choice(OPS)))
    return atoms


def index_atoms(atoms) -> dict:
    by_var = {}
    for atom in atoms:
        for name in atom.variables():
            by_var.setdefault(name, []).append(atom)
    return by_var


class TestPropagateDeltaMatchesWholeSet:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_full_seed_equals_batch_propagate(self, seed):
        atoms = random_atoms(seed, count=5)
        domains = initial_domains(VARIABLES, bound=32)
        batch = propagate(list(atoms), dict(domains))
        delta_result, steps = propagate_delta(index_atoms(atoms), atoms, dict(domains))
        if batch is None:
            assert delta_result is None
        else:
            assert delta_result == batch
            # Every delta atom is examined at least once on conflict-free runs.
            assert steps >= len(atoms)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_incremental_prefix_plus_delta_reaches_batch_fixpoint(self, seed):
        atoms = random_atoms(seed, count=6)
        if len(atoms) < 2:
            return
        split = len(atoms) // 2
        prefix, delta = atoms[:split], atoms[split:]
        domains = initial_domains(VARIABLES, bound=32)
        narrowed_prefix = propagate(list(prefix), dict(domains))
        batch = propagate(list(atoms), dict(domains))
        if narrowed_prefix is None:
            # The prefix alone conflicts, so the whole set must conflict too.
            assert batch is None
            return
        combined, _ = propagate_delta(index_atoms(atoms), delta, dict(narrowed_prefix))
        if batch is None:
            assert combined is None
        else:
            assert combined == batch


class TestContextFixpointMatchesBatch:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_pushed_domains_equal_whole_prefix_propagation(self, seed):
        rng = random.Random(seed)
        solver = ConstraintSolver(bound=32)
        context = SolverContext(solver)
        pushed_atoms = []
        for _ in range(rng.randint(1, 5)):
            name = rng.choice(VARIABLES)
            op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
            constraint = BinaryTerm(op, int_symbol(name), IntConst(rng.randint(-8, 8)))
            context.push(constraint)
        frames_atoms = [atom for frame in context._frames for atom in frame.atoms]
        top = context._frames[-1]
        variables = set()
        for atom in frames_atoms:
            variables |= atom.variables()
        batch = propagate(frames_atoms, initial_domains(variables, bound=solver.bound))
        if top.unsat:
            # The context proved UNSAT incrementally; batch propagation over
            # the same single-variable atoms must agree (an earlier frame may
            # already have conflicted, in which case later atoms were never
            # linearised -- re-check satisfiability with the solver instead).
            assert batch is None or not solver.check(context.constraints()).satisfiable
        else:
            assert batch is not None
            assert context.current_domains() == batch


class TestEqualitySubstitutionAgainstCompleteSolver:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=150, deadline=None)
    def test_substitution_verdicts_agree_with_complete_solver(self, seed):
        rng = random.Random(seed)
        atoms = []
        variables = set()
        for _ in range(rng.randint(1, 4)):
            x, y = rng.sample(VARIABLES, 2)
            atoms.append(
                LinearAtom(LinearExpr(((x, 1), (y, -1)), rng.randint(-4, 4)), EQ)
            )
            variables |= {x, y}
        for _ in range(rng.randint(0, 3)):
            name = rng.choice(VARIABLES)
            atoms.append(
                LinearAtom(LinearExpr(((name, 1),), rng.randint(-6, 6)), rng.choice(OPS))
            )
            variables.add(name)
        domains: Domains = {name: Interval(-8, 8) for name in variables}
        narrowed = propagate(list(atoms), dict(domains))
        if narrowed is None:
            # Propagation already proves UNSAT; the substitution path is
            # never consulted in that situation.
            return
        verdict = _substitute_equalities(atoms, narrowed)
        # Brute-force over the box is the ground truth.
        names = sorted(variables)

        def holds_somewhere(assignment, remaining):
            if not remaining:
                return all(atom.holds(assignment) for atom in atoms)
            name = remaining[0]
            interval = narrowed[name]
            for value in range(max(interval.low, -8), min(interval.high, 8) + 1):
                assignment[name] = value
                if holds_somewhere(assignment, remaining[1:]):
                    return True
            del assignment[name]
            return False

        truth = holds_somewhere({}, names)
        if verdict is None:
            return  # undecided: the context would fall back to the solver
        assert verdict.satisfiable == truth
        if verdict.satisfiable:
            assert verdict.model is not None
            assert all(atom.holds(verdict.model) for atom in atoms)
