"""Tests for symbolic terms: evaluation, substitution, negation."""

import pytest

from repro.solver.terms import (
    BOOL_SORT,
    FALSE,
    INT_SORT,
    TRUE,
    BinaryTerm,
    BoolConst,
    EvaluationError,
    IntConst,
    NegTerm,
    NotTerm,
    Symbol,
    bool_symbol,
    conjunction,
    int_symbol,
    negate,
)


X = int_symbol("x")
Y = int_symbol("y")
B = bool_symbol("b")


class TestEvaluation:
    def test_constants(self):
        assert IntConst(5).evaluate({}) == 5
        assert BoolConst(True).evaluate({}) is True

    def test_symbol_lookup(self):
        assert X.evaluate({"x": 7}) == 7

    def test_missing_symbol_raises(self):
        with pytest.raises(EvaluationError):
            X.evaluate({})

    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            ("+", 3, 4, 7),
            ("-", 3, 4, -1),
            ("*", 3, 4, 12),
            ("/", 7, 2, 3),
            ("/", -7, 2, -3),  # truncation toward zero (Java semantics)
            ("%", 7, 2, 1),
            ("%", -7, 2, -1),
            ("==", 3, 3, True),
            ("!=", 3, 3, False),
            ("<", 3, 4, True),
            ("<=", 4, 4, True),
            (">", 3, 4, False),
            (">=", 4, 4, True),
        ],
    )
    def test_binary_operators(self, op, left, right, expected):
        term = BinaryTerm(op, IntConst(left), IntConst(right))
        assert term.evaluate({}) == expected

    def test_logical_operators(self):
        assert BinaryTerm("&&", TRUE, FALSE).evaluate({}) is False
        assert BinaryTerm("||", TRUE, FALSE).evaluate({}) is True

    def test_division_by_zero_raises(self):
        with pytest.raises(EvaluationError):
            BinaryTerm("/", IntConst(1), IntConst(0)).evaluate({})

    def test_negation_terms(self):
        assert NegTerm(IntConst(3)).evaluate({}) == -3
        assert NotTerm(FALSE).evaluate({}) is True

    def test_compound_expression(self):
        term = BinaryTerm("+", BinaryTerm("*", X, IntConst(2)), Y)
        assert term.evaluate({"x": 3, "y": 1}) == 7


class TestSymbolsAndSorts:
    def test_symbol_collection(self):
        term = BinaryTerm("+", X, BinaryTerm("-", Y, X))
        assert term.symbols() == frozenset({"x", "y"})

    def test_sorts(self):
        assert X.sort == INT_SORT
        assert B.sort == BOOL_SORT
        assert BinaryTerm("+", X, Y).sort == INT_SORT
        assert BinaryTerm("<", X, Y).sort == BOOL_SORT
        assert BinaryTerm("&&", B, TRUE).sort == BOOL_SORT

    def test_operator_overloads(self):
        assert str(X + Y) == "(x + y)"
        assert str(X - IntConst(1)) == "(x - 1)"
        assert str(X * IntConst(2)) == "(x * 2)"


class TestSubstitution:
    def test_substitute_symbol(self):
        term = BinaryTerm("+", X, Y)
        result = term.substitute({"x": IntConst(5)})
        assert result.evaluate({"y": 1}) == 6

    def test_substitute_leaves_unmapped_symbols(self):
        result = X.substitute({"y": IntConst(1)})
        assert result == X

    def test_substitute_nested(self):
        term = NotTerm(BinaryTerm("<", X, Y))
        result = term.substitute({"x": IntConst(0), "y": IntConst(1)})
        assert result.evaluate({}) is False


class TestNegate:
    @pytest.mark.parametrize(
        "op,negated_op",
        [("==", "!="), ("!=", "=="), ("<", ">="), ("<=", ">"), (">", "<="), (">=", "<")],
    )
    def test_comparison_flipping(self, op, negated_op):
        term = BinaryTerm(op, X, Y)
        assert negate(term) == BinaryTerm(negated_op, X, Y)

    def test_double_negation(self):
        assert negate(NotTerm(B)) == B

    def test_constant_negation(self):
        assert negate(TRUE) == FALSE

    def test_de_morgan_and(self):
        term = BinaryTerm("&&", B, BinaryTerm(">", X, IntConst(0)))
        negated = negate(term)
        assert negated.op == "||"
        assert negated.right == BinaryTerm("<=", X, IntConst(0))

    def test_de_morgan_or(self):
        term = BinaryTerm("||", B, B)
        assert negate(term).op == "&&"

    def test_negate_is_semantic_complement(self):
        term = BinaryTerm("&&", BinaryTerm(">", X, IntConst(0)), B)
        for x in (-1, 0, 1):
            for b in (True, False):
                env = {"x": x, "b": b}
                assert negate(term).evaluate(env) == (not term.evaluate(env))


class TestConjunction:
    def test_empty_conjunction_is_true(self):
        assert conjunction([]) == TRUE

    def test_single_element(self):
        assert conjunction([B]) == B

    def test_multiple_elements(self):
        term = conjunction([B, TRUE, BinaryTerm(">", X, IntConst(0))])
        assert term.evaluate({"b": True, "x": 1}) is True
        assert term.evaluate({"b": False, "x": 1}) is False
