"""Tests for interval propagation."""

from repro.solver.intervals import (
    DEFAULT_BOUND,
    Interval,
    atom_definitely_satisfied,
    atom_definitely_violated,
    initial_domains,
    propagate,
)
from repro.solver.linear import linearize_comparison
from repro.solver.terms import BinaryTerm, IntConst, int_symbol

X = int_symbol("x")
Y = int_symbol("y")


def atoms_for(*specs):
    """Build atoms from (op, left, right) term specs."""
    return [linearize_comparison(op, left, right) for op, left, right in specs]


class TestInterval:
    def test_width_and_membership(self):
        interval = Interval(2, 5)
        assert interval.width == 4
        assert interval.contains(2) and interval.contains(5)
        assert not interval.contains(6)

    def test_empty_interval(self):
        assert Interval(3, 2).is_empty
        assert Interval(3, 2).width == 0

    def test_singleton(self):
        assert Interval(4, 4).is_singleton

    def test_intersection(self):
        assert Interval(0, 10).intersect(Interval(5, 20)) == Interval(5, 10)


class TestPropagation:
    def test_upper_bound_narrowing(self):
        atoms = atoms_for(("<=", X, IntConst(10)))
        domains = propagate(atoms, initial_domains({"x"}))
        assert domains["x"].high == 10
        assert domains["x"].low == -DEFAULT_BOUND

    def test_lower_bound_narrowing(self):
        atoms = atoms_for((">", X, IntConst(3)))
        domains = propagate(atoms, initial_domains({"x"}))
        assert domains["x"].low == 4

    def test_equality_pins_value(self):
        atoms = atoms_for(("==", X, IntConst(7)))
        domains = propagate(atoms, initial_domains({"x"}))
        assert domains["x"] == Interval(7, 7)

    def test_contradiction_returns_none(self):
        atoms = atoms_for(("<", X, IntConst(0)), (">", X, IntConst(0)))
        assert propagate(atoms, initial_domains({"x"})) is None

    def test_two_variable_propagation(self):
        # x == y + 5 and y >= 0 implies x >= 5
        atoms = atoms_for(
            ("==", X, BinaryTerm("+", Y, IntConst(5))),
            (">=", Y, IntConst(0)),
        )
        domains = propagate(atoms, initial_domains({"x", "y"}))
        assert domains["x"].low >= 5

    def test_disequality_trims_endpoint(self):
        atoms = atoms_for((">=", X, IntConst(0)), ("<=", X, IntConst(1)), ("!=", X, IntConst(0)))
        domains = propagate(atoms, initial_domains({"x"}))
        assert domains["x"] == Interval(1, 1)

    def test_disequality_contradiction(self):
        atoms = atoms_for(("==", X, IntConst(3)), ("!=", X, IntConst(3)))
        assert propagate(atoms, initial_domains({"x"})) is None

    def test_constant_false_atom(self):
        atoms = atoms_for(("<", IntConst(2), IntConst(1)))
        assert propagate(atoms, initial_domains(set())) is None


class TestAtomClassification:
    def test_definitely_satisfied(self):
        atom = atoms_for(("<=", X, IntConst(10)))[0]
        domains = {"x": Interval(0, 5)}
        assert atom_definitely_satisfied(atom, domains)
        assert not atom_definitely_violated(atom, domains)

    def test_definitely_violated(self):
        atom = atoms_for(("<=", X, IntConst(10)))[0]
        domains = {"x": Interval(11, 20)}
        assert atom_definitely_violated(atom, domains)
        assert not atom_definitely_satisfied(atom, domains)

    def test_undetermined(self):
        atom = atoms_for(("<=", X, IntConst(10)))[0]
        domains = {"x": Interval(5, 20)}
        assert not atom_definitely_satisfied(atom, domains)
        assert not atom_definitely_violated(atom, domains)

    def test_equality_classification(self):
        atom = atoms_for(("==", X, IntConst(3)))[0]
        assert atom_definitely_satisfied(atom, {"x": Interval(3, 3)})
        assert atom_definitely_violated(atom, {"x": Interval(4, 9)})
        assert not atom_definitely_satisfied(atom, {"x": Interval(2, 4)})

    def test_disequality_classification(self):
        atom = atoms_for(("!=", X, IntConst(0)))[0]
        assert atom_definitely_satisfied(atom, {"x": Interval(1, 5)})
        assert atom_definitely_violated(atom, {"x": Interval(0, 0)})
