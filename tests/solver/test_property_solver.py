"""Property-based tests for the constraint solver.

The decision procedure is cross-checked against brute-force enumeration over a
small integer box: for randomly generated conjunctions of linear constraints
the solver must agree with enumeration on satisfiability, and any model it
returns must actually satisfy the constraints.
"""

from itertools import product

from hypothesis import given, settings, strategies as st

from repro.solver.core import ConstraintSolver
from repro.solver.terms import BinaryTerm, IntConst, bool_symbol, int_symbol, negate

X = int_symbol("x")
Y = int_symbol("y")
B = bool_symbol("b")

COMPARISONS = ["<", "<=", ">", ">=", "==", "!="]


@st.composite
def linear_atoms(draw):
    """a*x + b*y + c OP 0 with small coefficients."""
    a = draw(st.integers(min_value=-3, max_value=3))
    b = draw(st.integers(min_value=-3, max_value=3))
    c = draw(st.integers(min_value=-6, max_value=6))
    op = draw(st.sampled_from(COMPARISONS))
    left = BinaryTerm(
        "+",
        BinaryTerm("+", BinaryTerm("*", IntConst(a), X), BinaryTerm("*", IntConst(b), Y)),
        IntConst(c),
    )
    return BinaryTerm(op, left, IntConst(0))


@st.composite
def constraint_sets(draw):
    atoms = draw(st.lists(linear_atoms(), min_size=1, max_size=4))
    negate_flags = draw(st.lists(st.booleans(), min_size=len(atoms), max_size=len(atoms)))
    return [negate(a) if flag else a for a, flag in zip(atoms, negate_flags)]


def brute_force_satisfiable(constraints, bound=8):
    for x, y in product(range(-bound, bound + 1), repeat=2):
        env = {"x": x, "y": y}
        if all(bool(term.evaluate(env)) for term in constraints):
            return True
    return False


class TestSolverAgainstBruteForce:
    @given(constraint_sets())
    @settings(max_examples=120, deadline=None)
    def test_sat_agrees_with_enumeration_when_bruteforce_finds_model(self, constraints):
        # A brute-force witness inside the small box implies the solver must say SAT.
        solver = ConstraintSolver()
        if brute_force_satisfiable(constraints):
            assert solver.is_satisfiable(constraints)

    @given(constraint_sets())
    @settings(max_examples=120, deadline=None)
    def test_models_actually_satisfy_constraints(self, constraints):
        solver = ConstraintSolver()
        result = solver.check(constraints)
        if result.satisfiable:
            model = dict(result.model)
            env = {"x": model.get("x", 0), "y": model.get("y", 0)}
            assert all(bool(term.evaluate(env)) for term in constraints)

    @given(constraint_sets())
    @settings(max_examples=60, deadline=None)
    def test_unsat_has_no_small_witness(self, constraints):
        # If the solver says UNSAT there must be no model in the small box either.
        solver = ConstraintSolver()
        if not solver.is_satisfiable(constraints):
            assert not brute_force_satisfiable(constraints, bound=6)

    @given(constraint_sets(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_adding_bool_symbol_keeps_consistency(self, constraints, positive):
        solver = ConstraintSolver()
        literal = B if positive else negate(B)
        extended = constraints + [literal]
        result = solver.check(extended)
        if result.satisfiable:
            assert result.model.get("b") == (1 if positive else 0)

    @given(linear_atoms())
    @settings(max_examples=80, deadline=None)
    def test_atom_and_its_negation_cannot_both_hold(self, atom):
        solver = ConstraintSolver()
        assert not solver.is_satisfiable([atom, negate(atom)])

    @given(linear_atoms())
    @settings(max_examples=80, deadline=None)
    def test_atom_or_negation_is_satisfiable(self, atom):
        solver = ConstraintSolver()
        assert solver.is_satisfiable([atom]) or solver.is_satisfiable([negate(atom)])
