"""Property tests for the interning-preserving substitution primitive.

``substitute`` is what instantiates generalised (fresh-formal) call
summaries at call sites, so its algebra carries the exactness argument of
compositional replay:

* results are interned (term identity, not just equality);
* it commutes with memoized simplification
  (``simplify(substitute(simplify(t), s)) == simplify(substitute(t, s))``),
  which is why summaries may store *simplified* callee constraints;
* it commutes with ``negate`` the same way, which covers the FALSE-edge
  constraints a callee records;
* ``term_symbols`` stays correct on substituted terms (the ``_symbols``
  instance cache must never go stale), which the post-substitution
  prefix-disjointness check depends on.
"""

from hypothesis import given, settings, strategies as st

from repro.solver.simplify import simplify
from repro.solver.terms import (
    intern_term,
    mk_binary,
    mk_int,
    mk_neg,
    mk_not,
    mk_symbol,
    negate,
    substitute,
    term_key,
)
from repro.symexec.summary_cache import term_symbols

INT_NAMES = ("x", "y", "z", "w")
IMAGE_NAMES = ("x", "y", "u", "v")
ARITH_OPS = ("+", "-", "*")
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")


@st.composite
def int_terms(draw, names=INT_NAMES, depth=2):
    choices = ["symbol", "const"]
    if depth > 0:
        choices += ["binary", "neg"]
    kind = draw(st.sampled_from(choices))
    if kind == "symbol":
        return mk_symbol(draw(st.sampled_from(names)))
    if kind == "const":
        return mk_int(draw(st.integers(min_value=-5, max_value=5)))
    if kind == "neg":
        return mk_neg(draw(int_terms(names=names, depth=depth - 1)))
    return mk_binary(
        draw(st.sampled_from(ARITH_OPS)),
        draw(int_terms(names=names, depth=depth - 1)),
        draw(int_terms(names=names, depth=depth - 1)),
    )


@st.composite
def bool_terms(draw, names=INT_NAMES, depth=2):
    kind = draw(st.sampled_from(["cmp", "logic", "not"] if depth > 0 else ["cmp"]))
    if kind == "cmp":
        return mk_binary(
            draw(st.sampled_from(COMPARISON_OPS)),
            draw(int_terms(names=names, depth=1)),
            draw(int_terms(names=names, depth=1)),
        )
    if kind == "not":
        return mk_not(draw(bool_terms(names=names, depth=depth - 1)))
    return mk_binary(
        draw(st.sampled_from(LOGICAL_OPS)),
        draw(bool_terms(names=names, depth=depth - 1)),
        draw(bool_terms(names=names, depth=depth - 1)),
    )


@st.composite
def substitutions(draw):
    """A mapping from some of the term names to small image terms."""
    mapped = draw(st.lists(st.sampled_from(INT_NAMES), unique=True, max_size=4))
    return {name: draw(int_terms(names=IMAGE_NAMES, depth=1)) for name in mapped}


any_terms = st.one_of(int_terms(), bool_terms())


class TestInterningIdentity:
    @given(any_terms)
    @settings(max_examples=150, deadline=None)
    def test_empty_mapping_is_interned_identity(self, term):
        assert substitute(term, {}) is intern_term(term)

    @given(any_terms, substitutions())
    @settings(max_examples=150, deadline=None)
    def test_result_is_interned(self, term, sigma):
        result = substitute(term, sigma)
        assert result is intern_term(result)

    @given(any_terms, substitutions())
    @settings(max_examples=150, deadline=None)
    def test_repeat_substitution_is_identical(self, term, sigma):
        # Interning makes equal results the *same object*, so instantiating
        # one summary at many call sites with equal arguments dedupes.
        assert substitute(term, sigma) is substitute(term, sigma)

    @given(any_terms, substitutions())
    @settings(max_examples=100, deadline=None)
    def test_untouched_when_domain_disjoint(self, term, sigma):
        relevant = {n: v for n, v in sigma.items() if n in term_symbols(intern_term(term))}
        if not relevant:
            assert substitute(term, sigma) is intern_term(term)


class TestSimplifyCommutation:
    @given(any_terms, substitutions())
    @settings(max_examples=200, deadline=None)
    def test_substitute_commutes_with_simplify(self, term, sigma):
        # The fixpoint the exactness argument rests on: summaries store
        # simplified callee terms, call sites substitute into them, and the
        # result simplifies to exactly what inline execution computes.
        direct = simplify(substitute(term, sigma))
        staged = simplify(substitute(simplify(term), sigma))
        assert term_key(direct) == term_key(staged)

    @given(any_terms, substitutions())
    @settings(max_examples=100, deadline=None)
    def test_simplify_idempotent_after_substitution(self, term, sigma):
        once = simplify(substitute(term, sigma))
        assert simplify(once) is once


class TestNegateCommutation:
    @given(bool_terms(), substitutions())
    @settings(max_examples=200, deadline=None)
    def test_substitute_commutes_with_negate(self, term, sigma):
        assert term_key(substitute(negate(term), sigma)) == term_key(
            negate(substitute(term, sigma))
        )

    @given(bool_terms(), substitutions())
    @settings(max_examples=200, deadline=None)
    def test_negated_false_edge_constraints_instantiate_exactly(self, term, sigma):
        # A callee's FALSE-edge constraint is stored as simplify(negate(c))
        # with c already a simplified evaluator output; at the call site the
        # native run computes simplify(negate(simplify(substitute(c, s))))
        # with s's images simplified env terms.  Both orders must agree --
        # over *simplified* inputs, which is all the engine ever feeds in
        # (the unsimplified generalisation is false: simplify(!!(a == b))
        # and negate(!!(a == b)) normalise to different shapes).
        condition = simplify(term)
        sigma = {name: simplify(image) for name, image in sigma.items()}
        stored = simplify(negate(condition))
        assert term_key(simplify(substitute(stored, sigma))) == term_key(
            simplify(negate(simplify(substitute(condition, sigma))))
        )


class TestSymbolTracking:
    @given(any_terms, substitutions())
    @settings(max_examples=150, deadline=None)
    def test_cached_symbols_match_fresh_computation(self, term, sigma):
        result = substitute(term, sigma)
        assert term_symbols(result) == result.symbols()

    @given(any_terms, substitutions())
    @settings(max_examples=150, deadline=None)
    def test_symbols_are_leafwise_image_union(self, term, sigma):
        # Simultaneous (not iterated) substitution: an image's symbols pass
        # through untouched even when they are themselves in the domain.
        term = intern_term(term)
        expected = set()
        for name in term_symbols(term):
            if name in sigma:
                expected |= term_symbols(intern_term(sigma[name]))
            else:
                expected.add(name)
        assert term_symbols(substitute(term, sigma)) == frozenset(expected)
