"""Tests for the incremental solver context and hash-consed terms."""

import pytest

from repro.solver.context import SolverContext
from repro.solver.core import ConstraintSolver
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BinaryTerm,
    IntConst,
    Symbol,
    int_symbol,
    intern_term,
    interned_count,
    negate,
    term_key,
)

X = int_symbol("x")
Y = int_symbol("y")


def cmp(op, left, right):
    return BinaryTerm(op, left, right)


class TestInterning:
    def test_intern_is_idempotent(self):
        term = cmp(">", X, IntConst(0))
        interned = intern_term(term)
        assert intern_term(interned) is interned
        assert intern_term(cmp(">", X, IntConst(0))) is interned

    def test_interned_terms_compare_structurally_with_raw_terms(self):
        raw = cmp("<=", X, IntConst(4))
        assert intern_term(raw) == cmp("<=", X, IntConst(4))

    def test_simplify_returns_canonical_instance(self):
        term = cmp("<", BinaryTerm("+", X, IntConst(0)), IntConst(3))
        assert simplify(term) is simplify(term)
        assert simplify(simplify(term)) is simplify(term)

    def test_simplify_of_equal_terms_is_identical(self):
        left = BinaryTerm("+", X, Y)
        right = BinaryTerm("+", X, Y)
        assert left is not right
        assert simplify(left) is simplify(right)

    def test_term_key_is_stable_and_distinct(self):
        a = cmp(">", X, IntConst(0))
        b = cmp(">", X, IntConst(1))
        assert term_key(a) == term_key(cmp(">", X, IntConst(0)))
        assert term_key(a) != term_key(b)

    def test_negate_round_trip_is_interned(self):
        term = intern_term(cmp("<", X, Y))
        assert negate(negate(term)) is term

    def test_interned_count_grows_with_new_terms(self):
        before = interned_count()
        term = intern_term(cmp("==", int_symbol("fresh_intern_probe"), IntConst(123456)))
        assert interned_count() > before
        # Interning is weak: dropping the last reference releases the
        # entries again instead of growing the table forever.
        grown = interned_count()
        del term
        import gc

        gc.collect()
        assert interned_count() < grown


class TestSolverContext:
    def test_empty_context_is_satisfiable(self):
        context = SolverContext()
        assert context.is_satisfiable()
        assert context.constraints() == ()

    def test_push_narrows_domains_incrementally(self):
        context = SolverContext()
        context.push(cmp(">", X, IntConst(0)))
        first = context.current_domains()
        assert first["x"].low == 1
        context.push(cmp("<", X, IntConst(10)))
        second = context.current_domains()
        assert second["x"].low == 1 and second["x"].high == 9

    def test_pop_restores_exact_parent_domains(self):
        context = SolverContext()
        context.push(cmp(">", X, IntConst(0)))
        before = context.current_domains()
        context.push(cmp("<", X, IntConst(5)))
        assert context.current_domains() != before
        context.pop()
        assert context.current_domains() == before

    def test_unsat_detected_by_delta_propagation(self):
        solver = ConstraintSolver()
        context = SolverContext(solver)
        context.push(cmp(">", X, IntConst(0)))
        baseline_queries = solver.statistics.queries
        context.push(cmp("<", X, IntConst(0)))
        assert not context.is_satisfiable()
        # The conflict was found by interval propagation alone.
        assert solver.statistics.queries == baseline_queries
        assert solver.statistics.incremental_hits >= 1

    def test_unsat_prefix_stays_unsat_under_more_pushes(self):
        context = SolverContext()
        context.push(cmp(">", X, IntConst(0)))
        context.push(cmp("<", X, IntConst(0)))
        context.push(cmp("==", Y, IntConst(1)))
        assert not context.is_satisfiable()
        context.pop()
        context.pop()
        assert context.is_satisfiable()

    def test_prefix_reuse_across_sibling_branches(self):
        solver = ConstraintSolver()
        context = SolverContext(solver)
        context.push(cmp(">", X, IntConst(0)))
        context.push(cmp(">", Y, IntConst(0)))
        before = solver.statistics.prefix_reuses
        assert context.assume_is_satisfiable(cmp("==", X, IntConst(1)))
        assert context.assume_is_satisfiable(cmp("==", X, IntConst(2)))
        # Both sibling probes reused the two-constraint prefix.
        assert solver.statistics.prefix_reuses >= before + 2
        assert context.depth == 2

    def test_assume_leaves_stack_unchanged(self):
        context = SolverContext()
        context.push(cmp(">", X, IntConst(0)))
        constraints = context.constraints()
        context.assume(cmp("<", X, IntConst(0)))
        assert context.constraints() == constraints

    def test_model_agrees_with_stateless_solver(self):
        solver = ConstraintSolver()
        context = SolverContext(solver)
        constraints = [cmp(">=", X, IntConst(3)), cmp("<", X, IntConst(9))]
        for constraint in constraints:
            context.push(constraint)
        result = context.check()
        assert result.satisfiable
        assert 3 <= result.model["x"] < 9
        assert solver.is_satisfiable(constraints)

    def test_deferred_disjunction_falls_back_to_complete_solver(self):
        solver = ConstraintSolver()
        context = SolverContext(solver)
        context.push(cmp(">", X, IntConst(6)))
        disjunction = BinaryTerm(
            "||", cmp("==", X, IntConst(5)), cmp("==", X, IntConst(9))
        )
        context.push(disjunction)
        assert context.is_satisfiable()
        assert solver.statistics.context_fallbacks >= 1
        context.pop()
        context.push(cmp("<", X, IntConst(0)))
        # Fast UNSAT path still works with a sibling disjunction popped off.
        assert not context.is_satisfiable()

    def test_pop_on_empty_context_raises(self):
        with pytest.raises(IndexError):
            SolverContext().pop()


class TestEngineIntegration:
    def test_testx_branch_checks_are_incremental_hits(self):
        from repro.artifacts.simple import testx_program
        from repro.symexec.engine import symbolic_execute

        solver = ConstraintSolver()
        result = symbolic_execute(testx_program(), "testX", solver=solver)
        assert len(result.path_conditions) == 2
        # Both branch feasibility checks (x > 0 and x <= 0) are single-atom
        # interval queries the incremental layer answers without a full solve.
        assert result.statistics.incremental_hits >= 2
        assert solver.statistics.incremental_hits >= 2

    def test_update_run_reports_prefix_reuse(self):
        from repro.artifacts.simple import update_modified_program
        from repro.symexec.engine import symbolic_execute

        solver = ConstraintSolver()
        result = symbolic_execute(update_modified_program(), "update", solver=solver)
        assert len(result.path_conditions) == 24
        assert result.statistics.prefix_reuses > 0
        ratio = solver.statistics.prefix_reuses / max(
            1, solver.statistics.prefix_reuses + solver.statistics.queries
        )
        assert 0 < ratio <= 1

    def test_dise_statistics_expose_incremental_counters(self):
        from repro.artifacts.simple import update_base_program, update_modified_program
        from repro.core.dise import run_dise

        solver = ConstraintSolver()
        result = run_dise(
            update_base_program(),
            update_modified_program(),
            procedure="update",
            solver=solver,
        )
        assert len(result.path_conditions) == 8
        stats = solver.statistics.as_dict()
        assert stats["prefix_reuses"] > 0
        assert stats["incremental_hits"] > 0
        assert stats["interned_terms"] > 0
