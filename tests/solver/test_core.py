"""Tests for the constraint solver facade."""

import pytest

from repro.solver.core import ConstraintSolver, SolverError
from repro.solver.terms import (
    FALSE,
    TRUE,
    BinaryTerm,
    IntConst,
    NotTerm,
    bool_symbol,
    int_symbol,
    negate,
)

X = int_symbol("x")
Y = int_symbol("y")
Z = int_symbol("z")
B = bool_symbol("b")
C = bool_symbol("c")


def cmp(op, left, right):
    return BinaryTerm(op, left, right)


class TestSatisfiability:
    def test_empty_constraint_set_is_sat(self, solver):
        assert solver.is_satisfiable([])

    def test_true_and_false_constants(self, solver):
        assert solver.is_satisfiable([TRUE])
        assert not solver.is_satisfiable([FALSE])

    def test_single_comparison(self, solver):
        assert solver.is_satisfiable([cmp(">", X, IntConst(0))])

    def test_contradictory_comparisons(self, solver):
        assert not solver.is_satisfiable(
            [cmp(">", X, IntConst(0)), cmp("<", X, IntConst(0))]
        )

    def test_boundary_contradiction(self, solver):
        assert not solver.is_satisfiable(
            [cmp(">=", X, IntConst(5)), cmp("<=", X, IntConst(4))]
        )

    def test_equalities_chain(self, solver):
        constraints = [
            cmp("==", X, BinaryTerm("+", Y, IntConst(1))),
            cmp("==", Y, IntConst(4)),
            cmp("==", X, IntConst(5)),
        ]
        assert solver.is_satisfiable(constraints)

    def test_inconsistent_equalities(self, solver):
        constraints = [
            cmp("==", X, BinaryTerm("+", Y, IntConst(1))),
            cmp("==", Y, IntConst(4)),
            cmp("==", X, IntConst(6)),
        ]
        assert not solver.is_satisfiable(constraints)

    def test_disequality_split(self, solver):
        assert solver.is_satisfiable([cmp("!=", X, IntConst(0))])
        assert not solver.is_satisfiable(
            [cmp("!=", X, IntConst(0)), cmp("==", X, IntConst(0))]
        )

    def test_three_variable_system(self, solver):
        constraints = [
            cmp("==", BinaryTerm("+", X, Y), IntConst(10)),
            cmp("==", BinaryTerm("-", X, Y), IntConst(4)),
            cmp("==", Z, BinaryTerm("+", X, Y)),
        ]
        model = solver.model(constraints)
        assert model is not None
        assert model["x"] == 7 and model["y"] == 3 and model["z"] == 10

    def test_no_integer_solution_between_bounds(self, solver):
        # 2x == 5 has no integer solution
        assert not solver.is_satisfiable(
            [cmp("==", BinaryTerm("*", IntConst(2), X), IntConst(5))]
        )

    def test_paper_update_constraints(self, solver):
        """The first DiSE path condition from the motivating example is satisfiable."""
        pedal_pos = int_symbol("PedalPos")
        pedal_cmd = int_symbol("PedalCmd")
        constraints = [
            cmp("<=", pedal_pos, IntConst(0)),
            cmp("==", BinaryTerm("+", BinaryTerm("+", pedal_cmd, IntConst(1)), IntConst(1)), IntConst(2)),
        ]
        model = solver.model(constraints)
        assert model is not None
        assert model["PedalPos"] <= 0
        assert model["PedalCmd"] == 0


class TestBooleanStructure:
    def test_bool_symbol_constraint(self, solver):
        model = solver.model([B])
        assert model == {"b": 1}

    def test_negated_bool_symbol(self, solver):
        model = solver.model([NotTerm(B)])
        assert model == {"b": 0}

    def test_bool_contradiction(self, solver):
        assert not solver.is_satisfiable([B, NotTerm(B)])

    def test_conjunction_flattening(self, solver):
        term = BinaryTerm("&&", cmp(">", X, IntConst(0)), cmp("<", X, IntConst(2)))
        model = solver.model([term])
        assert model["x"] == 1

    def test_disjunction_case_split(self, solver):
        term = BinaryTerm("||", cmp("==", X, IntConst(5)), cmp("==", X, IntConst(9)))
        assert solver.is_satisfiable([term, cmp(">", X, IntConst(6))])
        assert not solver.is_satisfiable([term, cmp(">", X, IntConst(10))])

    def test_negated_conjunction(self, solver):
        term = negate(BinaryTerm("&&", B, cmp(">", X, IntConst(0))))
        assert solver.is_satisfiable([term, B])
        assert not solver.is_satisfiable([term, B, cmp(">", X, IntConst(0))])

    def test_bool_equality_comparison(self, solver):
        assert solver.is_satisfiable([cmp("==", B, C), B, C])
        assert not solver.is_satisfiable([cmp("==", B, C), B, NotTerm(C)])
        assert solver.is_satisfiable([cmp("!=", B, C), B, NotTerm(C)])

    def test_nonlinear_constraint_rejected(self, solver):
        with pytest.raises(SolverError):
            solver.check([cmp("==", BinaryTerm("*", X, Y), IntConst(6))])


class TestModels:
    def test_model_satisfies_constraints(self, solver):
        constraints = [
            cmp(">=", X, IntConst(3)),
            cmp("<", X, IntConst(9)),
            cmp("==", Y, BinaryTerm("*", IntConst(2), X)),
        ]
        model = solver.model(constraints)
        assert 3 <= model["x"] < 9
        assert model["y"] == 2 * model["x"]

    def test_unsat_model_is_none(self, solver):
        assert solver.model([FALSE]) is None

    def test_model_for_unconstrained_query(self, solver):
        assert solver.model([]) == {}


class TestStatisticsAndCache:
    def test_query_counting(self, solver):
        solver.is_satisfiable([cmp(">", X, IntConst(0))])
        solver.is_satisfiable([cmp(">", X, IntConst(1))])
        assert solver.statistics.queries == 2

    def test_cache_hit_on_repeated_query(self, solver):
        constraints = [cmp(">", X, IntConst(0)), cmp("<", X, IntConst(5))]
        solver.is_satisfiable(constraints)
        solver.is_satisfiable(list(constraints))
        assert solver.statistics.cache_hits == 1

    def test_cache_is_order_insensitive(self, solver):
        a = [cmp(">", X, IntConst(0)), cmp("<", Y, IntConst(5))]
        solver.is_satisfiable(a)
        solver.is_satisfiable(list(reversed(a)))
        assert solver.statistics.cache_hits == 1

    def test_clear_cache(self, solver):
        constraints = [cmp(">", X, IntConst(0))]
        solver.is_satisfiable(constraints)
        solver.clear_cache()
        solver.is_satisfiable(constraints)
        assert solver.statistics.cache_hits == 0

    def test_sat_unsat_counters(self, solver):
        solver.is_satisfiable([TRUE])
        solver.is_satisfiable([FALSE])
        assert solver.statistics.sat_results == 1
        assert solver.statistics.unsat_results == 1

    def test_as_dict_contains_all_counters(self, solver):
        data = solver.statistics.as_dict()
        assert set(data) >= {"queries", "cache_hits", "sat_results", "unsat_results"}
