"""Interning hygiene: repeated independent runs must not grow process memory.

The term intern table and the simplify memo are process-global.  Before this
PR they were strong dictionaries that retained every term ever built, so a
long-lived process (batch drivers, CI workers, services) grew without bound
across independent runs.  Interning is now weak: once a run's states,
results and caches are dropped, its terms -- and their intern-table, memo
and symbol-cache entries -- are collectible.
"""

import gc

from repro.artifacts.mutants import wbs_artifact
from repro.evolution.history import VersionHistoryRunner
from repro.solver.core import ConstraintSolver
from repro.solver.simplify import simplify, simplify_cache_info
from repro.solver.terms import BinaryTerm, IntConst, int_symbol, interned_count
from repro.symexec.summary_cache import SummaryCache


class TestInternTableHygiene:
    def test_repeated_history_runs_do_not_grow_interned_terms(self):
        counts = []
        for _ in range(3):
            runner = VersionHistoryRunner(
                wbs_artifact(),
                include_full=False,
                summary_cache=SummaryCache(),
                solver=ConstraintSolver(),
            )
            runner.run()
            del runner
            gc.collect()
            counts.append(interned_count())
        # The live population after each run is identical: nothing from a
        # finished run keeps accumulating in the process-global table.
        assert counts[1] <= counts[0]
        assert counts[2] <= counts[0]

    def test_dropping_a_run_releases_its_terms(self):
        gc.collect()
        before = interned_count()
        runner = VersionHistoryRunner(
            wbs_artifact(),
            include_full=False,
            summary_cache=SummaryCache(),
            solver=ConstraintSolver(),
        )
        report = runner.run()
        assert report.versions
        del runner, report
        gc.collect()
        assert interned_count() <= before + 2

    def test_simplify_memo_is_released_with_its_terms(self):
        gc.collect()
        entries_before = simplify_cache_info()["entries"]
        kept = simplify(
            BinaryTerm("+", int_symbol("hygiene_probe"), IntConst(0))
        )
        assert simplify_cache_info()["entries"] > entries_before
        # While referenced, repeated simplification is an identity-stable hit.
        assert simplify(BinaryTerm("+", int_symbol("hygiene_probe"), IntConst(0))) is kept
        del kept
        gc.collect()
        assert simplify_cache_info()["entries"] <= entries_before + 2
