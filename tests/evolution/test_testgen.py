"""Tests for test input generation from path conditions (§5.2)."""

from repro.evolution.testgen import TestCase, TestSuite, generate_tests
from repro.symexec.engine import symbolic_execute


class TestTestCaseAndSuite:
    def test_call_string_rendering(self):
        case = TestCase("update", (0, 1, True))
        assert case.call_string() == "update(0, 1, true)"

    def test_suite_deduplicates(self):
        suite = TestSuite("f")
        assert suite.add(TestCase("f", (1,)))
        assert not suite.add(TestCase("f", (1,)))
        assert len(suite) == 1

    def test_contains(self):
        suite = TestSuite("f")
        suite.add(TestCase("f", (2,)))
        assert TestCase("f", (2,)) in suite
        assert TestCase("f", (3,)) not in suite

    def test_constructor_cases_seed_the_index(self):
        seeded = TestSuite("f", cases=[TestCase("f", (7,)), TestCase("f", (8,))])
        assert not seeded.add(TestCase("f", (7,)))
        assert seeded.add(TestCase("f", (9,)))
        assert len(seeded) == 3

    def test_duplicate_detection_at_artifact_scale(self):
        """The hashed index keeps duplicate detection exact at 1k+ cases.

        Every case is inserted twice (and a third time for a sampled
        subset); the suite must keep exactly one copy of each in insertion
        order -- the behaviour the old linear scan provided, now without
        the O(n) membership walk per insert.
        """
        suite = TestSuite("f")
        total = 1500
        for value in range(total):
            assert suite.add(TestCase("f", (value, value % 7, value % 2 == 0)))
        for value in range(total):
            assert not suite.add(TestCase("f", (value, value % 7, value % 2 == 0)))
        for value in range(0, total, 13):
            assert not suite.add(TestCase("f", (value, value % 7, value % 2 == 0)))
            assert TestCase("f", (value, value % 7, value % 2 == 0)) in suite
        assert len(suite) == total
        assert [case.arguments[0] for case in suite] == list(range(total))
        assert len(set(suite.call_strings())) == total


class TestGenerateTests:
    def test_testx_generates_one_test_per_path(self, testx):
        result = symbolic_execute(testx, "testX")
        suite = generate_tests(result.summary, testx.procedure("testX"))
        assert len(suite) == 2
        calls = set(suite.call_strings())
        assert any(call.startswith("testX(") for call in calls)

    def test_generated_inputs_satisfy_their_path_condition(self, update_modified, solver):
        result = symbolic_execute(update_modified, "update", solver=solver)
        procedure = update_modified.procedure("update")
        for record in result.summary.records:
            model = solver.model(list(record.path_condition))
            env = {p.name: model.get(p.name, 0) for p in procedure.params}
            assert record.path_condition.holds(env)

    def test_multiple_paths_can_share_one_test(self):
        """When globals are symbolic, several PCs may map to the same argument values
        (the paper notes this explicitly for its partial-state test generation)."""
        from repro.lang.parser import parse_program

        program = parse_program(
            "global int g;"
            "proc f(int x) { if (g > 0) { x = 1; } else { x = 2; } }"
        )
        result = symbolic_execute(program, "f")
        suite = generate_tests(result.summary, program.procedure("f"))
        assert len(result.path_conditions) == 2
        assert len(suite) == 1

    def test_boolean_arguments_rendered_as_booleans(self):
        from repro.lang.parser import parse_program

        program = parse_program("proc f(bool b) { if (b) { skip; } else { skip; } }")
        result = symbolic_execute(program, "f")
        suite = generate_tests(result.summary, program.procedure("f"))
        assert set(suite.call_strings()) == {"f(true)", "f(false)"}

    def test_accepts_plain_path_condition_sequences(self, update_modified):
        result = symbolic_execute(update_modified, "update")
        suite = generate_tests(result.path_conditions, update_modified.procedure("update"))
        assert len(suite) >= 1

    def test_full_update_suite_size(self, update_modified):
        result = symbolic_execute(update_modified, "update")
        suite = generate_tests(result.summary, update_modified.procedure("update"))
        # 24 path conditions over three integer arguments solve to 24 distinct calls
        # unless two conditions share a model; at minimum most are distinct
        assert 8 <= len(suite) <= 24
