"""Tests for the batch version-history runner."""

import pytest

from repro.artifacts import wbs_artifact
from repro.evolution.history import VersionHistoryRunner, run_history


@pytest.fixture(scope="module")
def wbs_report():
    return run_history(wbs_artifact(), include_full=True, measure_baseline=True)


class TestVersionHistoryRunner:
    def test_one_row_per_version(self, wbs_report):
        artifact = wbs_artifact()
        assert [row.version for row in wbs_report.versions] == artifact.version_names()
        assert [row.previous for row in wbs_report.versions] == (
            ["base"] + artifact.version_names()[:-1]
        )

    def test_seed_run_populates_cache(self, wbs_report):
        assert wbs_report.seed is not None
        assert wbs_report.seed["cache_stores"] > 0
        assert wbs_report.cache["stores"] > 0
        assert wbs_report.cache["entries"] > 0

    def test_every_version_reuses_summaries(self, wbs_report):
        for row in wbs_report.versions:
            assert row.summary_reuse is not None
            assert row.summary_reuse >= 0.30, f"{row.version} reused {row.summary_reuse:.0%}"

    def test_reuse_never_inflates_results(self, wbs_report):
        """Cached legs explore at most as many states as the cold baselines."""
        for row in wbs_report.versions:
            assert row.dise["states"] <= row.baseline_dise["states"]
            assert row.full["states"] <= row.baseline_full["states"]
            assert row.dise["distinct_path_conditions"] == (
                row.baseline_dise["distinct_path_conditions"]
            )
            assert row.full["distinct_path_conditions"] == (
                row.baseline_full["distinct_path_conditions"]
            )

    def test_as_dict_round_trips_to_json(self, wbs_report):
        import json

        payload = json.dumps(wbs_report.as_dict())
        assert "summary_reuse" in payload
        assert "baseline_dise" in payload

    def test_without_full_leg(self):
        report = VersionHistoryRunner(
            wbs_artifact(), include_full=False, measure_baseline=False
        ).run()
        assert report.seed is None
        for row in report.versions:
            assert row.full is None
            assert row.decision_reuse is None

    def test_changed_and_affected_counts_are_adjacent_pair_diffs(self, wbs_report):
        # v1 diffs (base -> v1): a single guard edit.
        assert wbs_report.versions[0].changed_nodes >= 1
        # v2 diffs (v1 -> v2): the v1 edit reverts and the v2 edit applies.
        assert wbs_report.versions[1].changed_nodes >= 2
