"""Tests for regression test selection and augmentation (Table 3 workflow)."""

from repro.evolution.regression import regression_analysis, select_and_augment
from repro.evolution.testgen import TestCase, TestSuite


def suite_with(name, *argument_tuples):
    suite = TestSuite(name)
    for arguments in argument_tuples:
        suite.add(TestCase(name, arguments))
    return suite


class TestSelectAndAugment:
    def test_all_tests_already_exist(self):
        existing = suite_with("f", (1,), (2,), (3,))
        dise = suite_with("f", (1,), (3,))
        report = select_and_augment(existing, dise, version="v1", changes=1)
        assert report.selected_count == 2
        assert report.added_count == 0
        assert report.total == 2

    def test_new_tests_are_added(self):
        existing = suite_with("f", (1,))
        dise = suite_with("f", (1,), (9,))
        report = select_and_augment(existing, dise)
        assert report.selected == ["f(1)"]
        assert report.added == ["f(9)"]

    def test_empty_dise_suite_means_no_tests_needed(self):
        existing = suite_with("f", (1,), (2,))
        report = select_and_augment(existing, TestSuite("f"), version="v2", changes=1)
        assert report.total == 0
        assert report.as_dict()["version"] == "v2"

    def test_report_dictionary_shape(self):
        report = select_and_augment(TestSuite("f"), suite_with("f", (5,)), "v3", 2)
        assert report.as_dict() == {
            "version": "v3",
            "changes": 2,
            "selected": 0,
            "added": 1,
            "total": 1,
        }


class TestEndToEndRegressionAnalysis:
    def test_motivating_example_workflow(self, update_base, update_modified):
        report = regression_analysis(
            update_base, update_modified, procedure="update", version="v1", changes=1
        )
        # DiSE found affected behaviours, so some tests are needed, and every
        # test is classified as either selected or added.
        assert report.total == report.selected_count + report.added_count
        assert report.total >= 1

    def test_unchanged_version_needs_no_tests(self, update_base):
        report = regression_analysis(update_base, update_base, procedure="update")
        assert report.total == 0

    def test_output_only_change_needs_no_tests(self):
        from repro.artifacts import asw_artifact

        artifact = asw_artifact()
        report = regression_analysis(
            artifact.base_program(),
            artifact.version_program("v7"),
            procedure=artifact.procedure_name,
            version="v7",
            changes=1,
        )
        assert report.total == 0
