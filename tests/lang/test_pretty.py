"""Tests for the pretty printer, including parse/print round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_procedure, pretty_program


ROUND_TRIP_SOURCES = [
    "global int y;\n\nproc f(int x) {\n    y = x;\n}\n",
    "proc f(int x) {\n    if (x > 0) {\n        x = 1;\n    } else {\n        x = 2;\n    }\n}\n",
    "proc f(int x) {\n    while (x > 0) {\n        x = x - 1;\n    }\n}\n",
    "proc f(int x) {\n    assert x >= 0;\n    return x;\n}\n",
    "proc f(bool b) {\n    skip;\n}\n",
    "global bool flag = true;\n\nproc f() {\n    int z = 3;\n}\n",
]


class TestRoundTrip:
    @pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
    def test_pretty_then_parse_is_structurally_equal(self, source):
        program = parse_program(source)
        reparsed = parse_program(pretty_program(program))
        assert reparsed.structural_key() == program.structural_key()

    def test_round_trip_paper_examples(self, testx_source, update_modified_source):
        for source in (testx_source, update_modified_source):
            program = parse_program(source)
            reparsed = parse_program(pretty_program(program))
            assert reparsed.structural_key() == program.structural_key()

    def test_pretty_is_idempotent(self, update_base_source):
        program = parse_program(update_base_source)
        once = pretty_program(program)
        twice = pretty_program(parse_program(once))
        assert once == twice


class TestRendering:
    def test_procedure_signature_rendered(self):
        program = parse_program("proc f(int a, bool b) { skip; }")
        text = pretty_procedure(program.procedures[0])
        assert text.startswith("proc f(int a, bool b) {")

    def test_else_branch_rendered(self):
        program = parse_program("proc f(int x) { if (x > 0) { x = 1; } else { x = 2; } }")
        text = pretty_procedure(program.procedures[0])
        assert "} else {" in text

    def test_globals_rendered_before_procedures(self):
        program = parse_program("global int g = 1; proc f() { skip; }")
        text = pretty_program(program)
        assert text.index("global int g = 1;") < text.index("proc f()")

    def test_indentation_depth(self):
        program = parse_program(
            "proc f(int x) { if (x > 0) { if (x > 1) { x = 2; } } }"
        )
        text = pretty_procedure(program.procedures[0])
        assert "        if ((x > 1)) {" in text or "        if (x > 1) {" in text


@st.composite
def small_programs(draw):
    """Generate small random programs as source text via structured choices."""
    n_statements = draw(st.integers(min_value=1, max_value=4))
    statements = []
    for _ in range(n_statements):
        kind = draw(st.sampled_from(["assign", "if", "decl"]))
        constant = draw(st.integers(min_value=-5, max_value=5))
        if kind == "assign":
            statements.append(f"x = x + {constant};")
        elif kind == "decl":
            name = draw(st.sampled_from(["a", "b", "c"]))
            statements.append(f"int {name} = {constant};")
        else:
            statements.append(f"if (x > {constant}) {{ x = {constant}; }} else {{ x = x - 1; }}")
    body = "\n    ".join(statements)
    return f"proc f(int x) {{\n    {body}\n}}\n"


class TestPropertyRoundTrip:
    @given(small_programs())
    @settings(max_examples=60, deadline=None)
    def test_random_program_round_trips(self, source):
        program = parse_program(source)
        reparsed = parse_program(pretty_program(program))
        assert reparsed.structural_key() == program.structural_key()
