"""Tests for AST node helpers (structural keys, variable collection, walking)."""

from repro.lang.ast_nodes import (
    Assign,
    BinaryOp,
    If,
    IntLiteral,
    VarRef,
    walk_statements,
)
from repro.lang.parser import parse_procedure, parse_program


class TestStructuralKeys:
    def test_identical_sources_have_equal_keys(self):
        a = parse_program("proc f(int x) { x = x + 1; }")
        b = parse_program("proc   f( int x )  {  x = x+1 ; }")
        assert a.structural_key() == b.structural_key()

    def test_keys_ignore_line_numbers(self):
        a = parse_program("proc f(int x) { x = 1; }")
        b = parse_program("proc f(int x) {\n\n\n    x = 1;\n}")
        assert a.structural_key() == b.structural_key()

    def test_keys_differ_on_operator_change(self):
        a = parse_program("proc f(int x) { if (x == 0) { skip; } }")
        b = parse_program("proc f(int x) { if (x <= 0) { skip; } }")
        assert a.structural_key() != b.structural_key()

    def test_keys_differ_on_constant_change(self):
        a = parse_program("proc f(int x) { x = 1; }")
        b = parse_program("proc f(int x) { x = 2; }")
        assert a.structural_key() != b.structural_key()

    def test_keys_differ_on_variable_rename(self):
        a = parse_program("proc f(int x) { x = x; }")
        b = parse_program("proc f(int y) { y = y; }")
        assert a.structural_key() != b.structural_key()


class TestExpressionHelpers:
    def test_variables_of_nested_expression(self):
        expr = BinaryOp("+", VarRef("a"), BinaryOp("*", VarRef("b"), VarRef("a")))
        assert expr.variables() == ("a", "b")

    def test_literal_has_no_variables(self):
        assert IntLiteral(3).variables() == ()

    def test_str_rendering(self):
        expr = BinaryOp("+", VarRef("x"), IntLiteral(1))
        assert str(expr) == "(x + 1)"


class TestWalkStatements:
    def test_walk_visits_nested_statements(self):
        procedure = parse_procedure(
            "proc f(int x) { if (x > 0) { x = 1; if (x > 1) { x = 2; } } else { x = 3; } }"
        )
        visited = list(walk_statements(procedure.body))
        assigns = [s for s in visited if isinstance(s, Assign)]
        ifs = [s for s in visited if isinstance(s, If)]
        assert len(assigns) == 3
        assert len(ifs) == 2

    def test_walk_visits_while_bodies(self):
        procedure = parse_procedure("proc f(int x) { while (x > 0) { x = x - 1; } }")
        visited = list(walk_statements(procedure.body))
        assert any(isinstance(s, Assign) for s in visited)

    def test_update_statement_count(self, update_modified):
        procedure = update_modified.procedure("update")
        # 4 branch statements + 9 assignments + 2 nested chain ifs = 15 nodes total
        assert len(list(walk_statements(procedure.body))) == 15
