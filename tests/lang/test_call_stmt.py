"""Parser, pretty-printer and validator coverage for procedure calls."""

import pytest

from repro.lang.ast_nodes import Assign, CallStmt
from repro.lang.errors import ParseError, SemanticError
from repro.lang.parser import parse_program
from repro.lang.pretty import pretty_program
from repro.lang.validate import procedure_signature, validate_program


def _validate(source):
    validate_program(parse_program(source))


class TestCallParsing:
    def test_bare_call(self):
        program = parse_program("proc f(int x) { skip; } proc m(int y) { f(y); }")
        stmt = program.procedure("m").body[0]
        assert isinstance(stmt, CallStmt)
        assert stmt.callee == "f"
        assert stmt.target is None
        assert len(stmt.args) == 1

    def test_targeted_call(self):
        program = parse_program(
            "proc f(int x) { return x; } proc m(int y) { int r = 0; r = f(y + 1); }"
        )
        stmt = program.procedure("m").body[1]
        assert isinstance(stmt, CallStmt)
        assert stmt.target == "r"
        assert stmt.callee == "f"

    def test_zero_and_many_args(self):
        program = parse_program(
            "proc f() { skip; } proc g(int a, int b, int c) { skip; }"
            "proc m(int x) { f(); g(x, x + 1, 2 * x); }"
        )
        calls = program.procedure("m").body
        assert [len(c.args) for c in calls] == [0, 3]

    def test_assignment_from_variable_still_parses(self):
        program = parse_program("proc m(int y) { int r = 0; r = y; }")
        assert isinstance(program.procedure("m").body[1], Assign)

    def test_call_is_not_an_expression(self):
        with pytest.raises(ParseError):
            parse_program("proc f(int x) { return x; } proc m(int y) { int r = f(y) + 1; }")

    def test_pretty_roundtrip(self):
        source = (
            "global int g = 0;\n"
            "proc f(int x) { g = g + x; return x; }\n"
            "proc m(int y) { int r = 0; r = f(y + 2); f(r); }\n"
        )
        program = parse_program(source)
        printed = pretty_program(program)
        assert parse_program(printed).structural_key() == program.structural_key()
        assert "r = f((y + 2));" in printed
        assert "f(r);" in printed

    def test_structural_key_distinguishes_target_callee_args(self):
        one = parse_program("proc f(int x) { return x; } proc m(int y) { f(y); }")
        two = parse_program("proc f(int x) { return x; } proc m(int y) { f(y + 1); }")
        assert one.structural_key() != two.structural_key()


class TestCallValidation:
    def test_valid_program(self):
        _validate(
            """
            global int g = 0;
            proc helper(int a) { if (a > 0) { return a; } return 0 - a; }
            proc main(int x) { int r = 0; r = helper(x); g = r; helper(g); }
            """
        )

    def test_undefined_callee(self):
        with pytest.raises(SemanticError, match="undefined procedure"):
            _validate("proc m(int x) { nope(x); }")

    def test_direct_recursion(self):
        with pytest.raises(SemanticError, match="[Rr]ecursi"):
            _validate("proc m(int x) { m(x); }")

    def test_indirect_recursion(self):
        with pytest.raises(SemanticError, match="[Rr]ecursi"):
            _validate(
                "proc a(int x) { b(x); }"
                "proc b(int x) { c(x); }"
                "proc c(int x) { a(x); }"
            )

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="argument"):
            _validate("proc f(int a, int b) { skip; } proc m(int x) { f(x); }")

    def test_argument_type_mismatch(self):
        with pytest.raises(SemanticError, match="must be int"):
            _validate("proc f(int a) { skip; } proc m(bool x) { f(x); }")

    def test_valueless_callee_cannot_be_assigned(self):
        with pytest.raises(SemanticError, match="returns no value"):
            _validate("proc f(int a) { skip; } proc m(int x) { int r = 0; r = f(x); }")

    def test_callee_missing_return_on_some_path(self):
        with pytest.raises(SemanticError, match="every path"):
            _validate(
                "proc f(int a) { if (a > 0) { return a; } }"
                "proc m(int x) { int r = 0; r = f(x); }"
            )

    def test_return_type_mismatch(self):
        with pytest.raises(SemanticError, match="bool result"):
            _validate(
                "proc f(int a) { return a > 0; }"
                "proc m(int x) { int r = 0; r = f(x); }"
            )

    def test_inconsistent_returns(self):
        with pytest.raises(SemanticError, match="returns both"):
            _validate("proc f(int a) { if (a > 0) { return a; } return a > 1; }")

    def test_local_shadowing_global_rejected(self):
        with pytest.raises(SemanticError, match="shadows a global"):
            _validate("global int g = 0; proc m(int x) { int g = 1; }")

    def test_bare_call_to_valued_procedure_is_fine(self):
        _validate("proc f(int a) { return a; } proc m(int x) { f(x); }")


class TestProcedureSignature:
    def test_signature_fields(self):
        program = parse_program(
            "proc f(int a, bool b) { if (b) { return a; } return 0; }"
        )
        signature = procedure_signature(program.procedure("f"), {})
        assert signature.param_types == ("int", "bool")
        assert signature.return_type == "int"
        assert not signature.may_miss_return

    def test_may_miss_return(self):
        program = parse_program("proc f(int a) { if (a > 0) { return a; } }")
        signature = procedure_signature(program.procedure("f"), {})
        assert signature.may_miss_return
