"""Unit tests for the MiniLang lexer."""

import pytest

from repro.lang.errors import LexerError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenType


def types(source):
    return [token.type for token in tokenize(source)]


def values(source):
    return [token.value for token in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_empty_source_yields_eof_only(self):
        assert types("") == [TokenType.EOF]

    def test_whitespace_only_yields_eof(self):
        assert types("   \n\t  \r\n") == [TokenType.EOF]

    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].type is TokenType.INT_LITERAL
        assert tokens[0].value == "42"

    def test_identifier(self):
        tokens = tokenize("PedalPos")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "PedalPos"

    def test_identifier_with_underscore_and_digits(self):
        tokens = tokenize("_x_1")
        assert tokens[0].type is TokenType.IDENT
        assert tokens[0].value == "_x_1"

    def test_boolean_literals(self):
        tokens = tokenize("true false")
        assert tokens[0].type is TokenType.BOOL_LITERAL
        assert tokens[1].type is TokenType.BOOL_LITERAL

    @pytest.mark.parametrize(
        "keyword,expected",
        [
            ("global", TokenType.GLOBAL),
            ("proc", TokenType.PROC),
            ("int", TokenType.INT),
            ("bool", TokenType.BOOL),
            ("if", TokenType.IF),
            ("else", TokenType.ELSE),
            ("while", TokenType.WHILE),
            ("assert", TokenType.ASSERT),
            ("return", TokenType.RETURN),
            ("skip", TokenType.SKIP),
        ],
    )
    def test_keywords(self, keyword, expected):
        assert types(keyword)[0] is expected

    def test_keyword_prefix_is_identifier(self):
        assert types("iffy")[0] is TokenType.IDENT
        assert types("procedure")[0] is TokenType.IDENT


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("==", TokenType.EQ),
            ("!=", TokenType.NEQ),
            ("<=", TokenType.LE),
            (">=", TokenType.GE),
            ("&&", TokenType.AND),
            ("||", TokenType.OR),
            ("=", TokenType.ASSIGN),
            ("+", TokenType.PLUS),
            ("-", TokenType.MINUS),
            ("*", TokenType.STAR),
            ("/", TokenType.SLASH),
            ("%", TokenType.PERCENT),
            ("<", TokenType.LT),
            (">", TokenType.GT),
            ("!", TokenType.NOT),
        ],
    )
    def test_single_operator(self, text, expected):
        assert types(text)[0] is expected

    def test_multi_char_operator_is_preferred(self):
        # "<=" must not lex as "<" followed by "="
        assert types("a<=b")[1] is TokenType.LE

    def test_expression_token_sequence(self):
        assert values("x = y + 1;") == ["x", "=", "y", "+", "1", ";"]

    def test_comparison_chain(self):
        assert values("a == b != c") == ["a", "==", "b", "!=", "c"]


class TestCommentsAndPositions:
    def test_line_comment_is_skipped(self):
        assert values("x // comment here\n= 1;") == ["x", "=", "1", ";"]

    def test_block_comment_is_skipped(self):
        assert values("x /* a block\ncomment */ = 1;") == ["x", "=", "1", ";"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("x /* never closed")

    def test_line_numbers(self):
        tokens = tokenize("x\ny\nz")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_column_numbers(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(LexerError) as excinfo:
            tokenize("x = @;")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 5


class TestRealisticSources:
    def test_testx_source_tokenizes(self, testx_source):
        token_list = tokenize(testx_source)
        assert token_list[-1].type is TokenType.EOF
        assert any(t.type is TokenType.PROC for t in token_list)

    def test_update_source_tokenizes(self, update_base_source):
        token_list = tokenize(update_base_source)
        identifiers = {t.value for t in token_list if t.type is TokenType.IDENT}
        assert {"update", "PedalPos", "BSwitch", "PedalCmd"} <= identifiers
