"""Unit tests for the MiniLang parser."""

import pytest

from repro.lang.ast_nodes import (
    Assert,
    Assign,
    BinaryOp,
    BoolLiteral,
    If,
    IntLiteral,
    Return,
    Skip,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.parser import parse_procedure, parse_program


def parse_single_statement(body_source: str):
    procedure = parse_procedure(f"proc p(int x, bool b) {{ {body_source} }}")
    assert len(procedure.body) == 1
    return procedure.body[0]


def parse_expression(expr_source: str):
    stmt = parse_single_statement(f"x = {expr_source};")
    assert isinstance(stmt, Assign)
    return stmt.value


class TestProgramStructure:
    def test_empty_program(self):
        program = parse_program("")
        assert program.globals == []
        assert program.procedures == []

    def test_global_with_initialiser(self):
        program = parse_program("global int y = 3;")
        assert program.globals[0].name == "y"
        assert isinstance(program.globals[0].init, IntLiteral)

    def test_global_without_initialiser(self):
        program = parse_program("global int y;")
        assert program.globals[0].init is None

    def test_bool_global(self):
        program = parse_program("global bool flag = true;")
        assert program.globals[0].type_name == "bool"

    def test_procedure_parameters(self):
        procedure = parse_procedure("proc f(int a, bool b, int c) { skip; }")
        assert [p.name for p in procedure.params] == ["a", "b", "c"]
        assert [p.type_name for p in procedure.params] == ["int", "bool", "int"]

    def test_procedure_without_parameters(self):
        procedure = parse_procedure("proc f() { skip; }")
        assert procedure.params == []

    def test_multiple_procedures(self):
        program = parse_program("proc a() { skip; } proc b() { skip; }")
        assert [p.name for p in program.procedures] == ["a", "b"]

    def test_program_procedure_lookup(self):
        program = parse_program("proc a() { skip; } proc b() { skip; }")
        assert program.procedure("b").name == "b"
        with pytest.raises(KeyError):
            program.procedure("missing")

    def test_parse_procedure_by_name(self):
        procedure = parse_procedure("proc a() { skip; } proc b() { skip; }", name="b")
        assert procedure.name == "b"

    def test_parse_procedure_no_procedures_raises(self):
        with pytest.raises(ParseError):
            parse_procedure("global int x;")


class TestStatements:
    def test_var_decl_with_init(self):
        stmt = parse_single_statement("int y = 1 + 2;")
        assert isinstance(stmt, VarDecl)
        assert stmt.name == "y"
        assert isinstance(stmt.init, BinaryOp)

    def test_var_decl_without_init(self):
        stmt = parse_single_statement("int y;")
        assert isinstance(stmt, VarDecl)
        assert stmt.init is None

    def test_assignment(self):
        stmt = parse_single_statement("x = x + 1;")
        assert isinstance(stmt, Assign)
        assert stmt.name == "x"

    def test_if_without_else(self):
        stmt = parse_single_statement("if (x > 0) { x = 1; }")
        assert isinstance(stmt, If)
        assert len(stmt.then_body) == 1
        assert stmt.else_body == []

    def test_if_with_else(self):
        stmt = parse_single_statement("if (x > 0) { x = 1; } else { x = 2; }")
        assert isinstance(stmt, If)
        assert len(stmt.else_body) == 1

    def test_else_if_chain_nests(self):
        stmt = parse_single_statement(
            "if (x == 0) { x = 1; } else if (x == 1) { x = 2; } else { x = 3; }"
        )
        assert isinstance(stmt, If)
        nested = stmt.else_body[0]
        assert isinstance(nested, If)
        assert len(nested.else_body) == 1

    def test_while_loop(self):
        stmt = parse_single_statement("while (x > 0) { x = x - 1; }")
        assert isinstance(stmt, While)
        assert len(stmt.body) == 1

    def test_assert_statement(self):
        stmt = parse_single_statement("assert x >= 0;")
        assert isinstance(stmt, Assert)

    def test_return_with_value(self):
        stmt = parse_single_statement("return x + 1;")
        assert isinstance(stmt, Return)
        assert stmt.value is not None

    def test_return_without_value(self):
        stmt = parse_single_statement("return;")
        assert isinstance(stmt, Return)
        assert stmt.value is None

    def test_skip(self):
        assert isinstance(parse_single_statement("skip;"), Skip)

    def test_statement_line_numbers(self):
        procedure = parse_procedure("proc p(int x) {\n    x = 1;\n    x = 2;\n}")
        assert procedure.body[0].line == 2
        assert procedure.body[1].line == 3


class TestExpressions:
    def test_literals(self):
        assert isinstance(parse_expression("5"), IntLiteral)

    def test_bool_literal_needs_bool_context(self):
        stmt = parse_single_statement("b = true;")
        assert isinstance(stmt.value, BoolLiteral)

    def test_variable_reference(self):
        assert isinstance(parse_expression("x"), VarRef)

    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_logical(self):
        stmt = parse_single_statement("b = x > 0 && x < 10;")
        expr = stmt.value
        assert expr.op == "&&"
        assert expr.left.op == ">"
        assert expr.right.op == "<"

    def test_precedence_and_over_or(self):
        stmt = parse_single_statement("b = b && b || b;")
        assert stmt.value.op == "||"
        assert stmt.value.left.op == "&&"

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "-"

    def test_unary_not(self):
        stmt = parse_single_statement("b = !b;")
        assert isinstance(stmt.value, UnaryOp)
        assert stmt.value.op == "!"

    def test_left_associativity_of_subtraction(self):
        expr = parse_expression("x - 1 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"

    def test_modulo_and_division(self):
        expr = parse_expression("x / 2 % 3")
        assert expr.op == "%"
        assert expr.left.op == "/"

    def test_variables_helper_deduplicates(self):
        expr = parse_expression("x + x * x")
        assert expr.variables() == ("x",)


class TestParseErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "proc p( { }",
            "proc p() { x = ; }",
            "proc p() { if x > 0 { } }",
            "proc p() { int = 3; }",
            "proc p() { x = 1 }",
            "proc p() { while (x) }",
            "proc p() {",
            "int x = 1;",
            "proc p() { 42 = x; }",
        ],
    )
    def test_malformed_sources_raise(self, source):
        with pytest.raises(ParseError):
            parse_program(source)

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("proc p() {\n  x = ;\n}")
        assert excinfo.value.line == 2


class TestPaperExamples:
    def test_testx_structure(self, testx_source):
        program = parse_program(testx_source)
        assert program.global_names() == ["y"]
        procedure = program.procedure("testX")
        assert isinstance(procedure.body[0], If)

    def test_update_structure(self, update_modified_source):
        program = parse_program(update_modified_source)
        procedure = program.procedure("update")
        assert [p.name for p in procedure.params] == ["PedalPos", "BSwitch", "PedalCmd"]
        # first statement is the (modified) changed conditional
        first = procedure.body[0]
        assert isinstance(first, If)
        assert first.condition.op == "<="
