"""Tests for semantic validation."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.lang.validate import validate_program


def validate_source(source):
    validate_program(parse_program(source))


class TestValidPrograms:
    @pytest.mark.parametrize(
        "source",
        [
            "proc f(int x) { x = x + 1; }",
            "proc f(int x) { int y = x; y = y * 2; }",
            "proc f(bool b) { if (b) { skip; } }",
            "proc f(int x) { if (x > 0 && x < 10) { x = 0; } }",
            "global int g = 1; proc f() { g = g + 1; }",
            "global int g; proc f() { g = 2; }",
            "proc f(int x) { while (x != 0) { x = x - 1; } }",
            "proc f(int x) { assert x >= 0; }",
            "proc f(bool a, bool b) { if (a == b) { skip; } }",
            "proc f(int x) { return x + 1; }",
        ],
    )
    def test_accepted(self, source):
        validate_source(source)

    def test_paper_examples_validate(self, testx_source, update_base_source, update_modified_source):
        for source in (testx_source, update_base_source, update_modified_source):
            validate_source(source)

    def test_artifact_programs_validate(self):
        from repro.artifacts import all_artifacts

        for artifact in all_artifacts():
            validate_source(artifact.base_source)
            for spec in artifact.versions:
                validate_source(artifact.version_source(spec.name))


class TestRejectedPrograms:
    @pytest.mark.parametrize(
        "source,fragment",
        [
            ("proc f() { x = 1; }", "not declared"),
            ("proc f(int x) { int x = 1; }", "declared twice"),
            ("proc f(int x) { if (x) { skip; } }", "bool"),
            ("proc f(bool b) { b = b + 1; }", "int operands"),
            ("proc f(int x) { bool b = x; }", "initialise"),
            ("proc f(int x, bool b) { x = b; }", "assign"),
            ("proc f(bool b) { if (b > true) { skip; } }", "Ordering"),
            ("proc f(int x) { while (x + 1) { skip; } }", "bool"),
            ("proc f(int x) { assert x + 1; }", "bool"),
            ("global int g; global int g; proc f() { skip; }", "twice"),
            ("proc f() { skip; } proc f() { skip; }", "twice"),
            ("global int g = true; proc f() { skip; }", "initialised"),
            ("proc f(int x, bool b) { if (x == b) { skip; } }", "same type"),
            ("proc f(bool b) { int y = 1 && 2; }", "bool operands"),
        ],
    )
    def test_rejected(self, source, fragment):
        with pytest.raises(SemanticError) as excinfo:
            validate_source(source)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_error_carries_line_number(self):
        with pytest.raises(SemanticError) as excinfo:
            validate_source("proc f() {\n    skip;\n    y = 1;\n}")
        assert excinfo.value.line == 3
