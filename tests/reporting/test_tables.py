"""Tests for table and figure rendering."""

from repro.core.dise import ComparisonRow, run_dise
from repro.evolution.regression import RegressionReport
from repro.reporting.figures import render_cfg_figure, render_execution_tree
from repro.reporting.tables import (
    format_seconds,
    render_affected_sets,
    render_affected_trace,
    render_directed_trace,
    render_table2,
    render_table3,
)
from repro.symexec.engine import symbolic_execute


def sample_comparison_rows():
    return [
        ComparisonRow("v1", 1, 11, 0.05, 0.2, 41, 87, 8, 24),
        ComparisonRow("v2", 2, 0, 0.01, 0.2, 3, 87, 0, 24),
    ]


class TestFormatting:
    def test_format_seconds_milliseconds(self):
        assert format_seconds(0.123).endswith("ms")

    def test_format_seconds_minutes(self):
        assert format_seconds(75.5).startswith("01:")


class TestTableRenderers:
    def test_table2_contains_headers_and_rows(self):
        text = render_table2(sample_comparison_rows(), "WBS")
        assert "Table 2 (WBS)" in text
        assert "DiSE PCs" in text and "Full PCs" in text
        assert "v1" in text and "v2" in text

    def test_table3_rendering(self):
        reports = [
            RegressionReport("v1", 1, selected=["f(1)"], added=["f(2)", "f(3)"]),
            RegressionReport("v2", 2, selected=[], added=[]),
        ]
        text = render_table3(reports, "ASW")
        assert "Selected" in text and "Added" in text
        lines = text.splitlines()
        assert any("v1" in line and "1" in line and "2" in line for line in lines)

    def test_affected_trace_rendering(self, update_base, update_modified):
        result = run_dise(update_base, update_modified, procedure="update")
        text = render_affected_trace(result.affected.trace)
        assert "Eq. (1)" in text
        assert "n0" in text

    def test_directed_trace_rendering(self, update_base, update_modified):
        result = run_dise(update_base, update_modified, procedure="update", record_trace=True)
        text = render_directed_trace(result.strategy.trace_rows)
        assert "UnExCond" in text
        assert "(no path)" in text

    def test_affected_sets_rendering(self, update_base, update_modified):
        result = run_dise(update_base, update_modified, procedure="update")
        text = render_affected_sets(result.affected)
        assert "ACN (4)" in text and "AWN (7)" in text


class TestFigureRenderers:
    def test_execution_tree_figure(self, testx):
        result = symbolic_execute(testx, "testX", build_tree=True, tracked_variables=["x", "y"])
        text = render_execution_tree(result)
        assert "symbolic execution tree" in text
        assert "Leaf path conditions" in text

    def test_execution_tree_requires_tree(self, testx):
        result = symbolic_execute(testx, "testX")
        try:
            render_execution_tree(result)
        except ValueError as error:
            assert "build_tree" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_cfg_figure(self, update_base, update_modified, update_modified_cfg):
        result = run_dise(update_base, update_modified, procedure="update")
        text = render_cfg_figure(update_modified_cfg, affected=result.affected)
        assert "digraph cfg" in text
        assert "Affected conditional nodes" in text
