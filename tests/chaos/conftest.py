"""Shared fixtures for the chaos test suite."""

import pytest

from repro.parallel.shard import reset_scheduler_cost_model


@pytest.fixture(autouse=True)
def _cold_cost_model():
    """Cold scheduler cost model per test: fault schedules are tuned to the
    shard counts a cold scheduler produces, so estimates leaking in from
    earlier tests would silently change which faults fire."""
    reset_scheduler_cost_model()
    yield
    reset_scheduler_cost_model()
