"""Deadline-budgeted degradation: never a hang, never a wrong answer.

An exhausted :class:`~repro.solver.core.DeadlineBudget` flips the engine
into conservative mode -- branch feasibility the solver can no longer
decide is answered "explore both sides", lookahead reachability "all
targets reachable" -- and the run completes with an explicit
``completeness == "degraded"`` flag.  Conservative means *over*-inclusive:
the degraded path-condition set is a superset of the clean run's, never a
subset, so no real behaviour is lost.
"""

import pytest

from repro.artifacts import asw_artifact
from repro.artifacts.simple import update_modified_program
from repro.core.dise import DiSE
from repro.solver.core import BudgetExhausted, ConstraintSolver, DeadlineBudget
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _pcs(summary):
    return {str(c) for c in summary.distinct_path_conditions()}


class TestDeadlineBudget:
    def test_zero_budget_is_immediately_exhausted(self):
        budget = DeadlineBudget(0)
        assert budget.expired()
        with pytest.raises(BudgetExhausted):
            budget.charge()
        assert budget.exhausted
        assert budget.rejections == 1

    def test_budget_exhausted_is_a_solver_error(self):
        """Existing conservative SolverError handling (lookahead bailouts)
        must also cover budget refusals."""
        from repro.solver.core import SolverError

        assert issubclass(BudgetExhausted, SolverError)

    def test_generous_budget_never_trips(self):
        budget = DeadlineBudget(3600)
        assert not budget.expired()
        budget.charge()
        assert not budget.exhausted
        assert budget.remaining() > 0


class TestDegradedExecution:
    def test_exhausted_budget_completes_conservatively(self):
        program = update_modified_program()
        clean = symbolic_execute(program, procedure_name="update")
        solver = ConstraintSolver()
        solver.deadline = DeadlineBudget(0)
        degraded = symbolic_execute(program, procedure_name="update", solver=solver)
        assert degraded.statistics.completeness == "degraded"
        assert degraded.statistics.degraded_decisions > 0
        assert degraded.statistics.deadline_exhausted == 1
        # Conservative, not wrong: every real path is still present.
        assert _pcs(clean.summary) <= _pcs(degraded.summary)

    def test_clean_run_reports_complete(self):
        program = update_modified_program()
        result = symbolic_execute(program, procedure_name="update")
        assert result.statistics.completeness == "complete"
        assert result.statistics.degraded_decisions == 0
        assert result.statistics.deadline_exhausted == 0

    def test_generous_budget_is_exactly_the_clean_run(self):
        program = update_modified_program()
        clean = symbolic_execute(program, procedure_name="update")
        budgeted = symbolic_execute(
            program, procedure_name="update", deadline=DeadlineBudget(3600)
        )
        assert budgeted.statistics.completeness == "complete"
        assert _pcs(budgeted.summary) == _pcs(clean.summary)

    def test_degraded_runs_store_no_summaries(self):
        """Degraded exploration is wall-clock-dependent; caching it would
        make later replays nondeterministic.  Nothing may enter the cache."""
        program = update_modified_program()
        cache = SummaryCache()
        result = symbolic_execute(
            program,
            procedure_name="update",
            summary_cache=cache,
            deadline=DeadlineBudget(0),
        )
        assert result.statistics.completeness == "degraded"
        assert len(cache) == 0

    def test_completeness_surfaces_in_as_dict(self):
        program = update_modified_program()
        result = symbolic_execute(
            program, procedure_name="update", deadline=DeadlineBudget(0)
        )
        stats = result.statistics.as_dict()
        assert stats["degraded_decisions"] > 0
        assert stats["deadline_exhausted"] == 1


class TestDegradedDiSE:
    def test_dise_with_zero_budget_completes_and_flags(self):
        artifact = asw_artifact()
        base = artifact.base_program()
        modified = artifact.version_program("v1")
        clean = DiSE(base, modified, procedure_name=artifact.procedure_name).run()
        degraded = DiSE(
            base,
            modified,
            procedure_name=artifact.procedure_name,
            deadline=DeadlineBudget(0),
        ).run()
        metrics = degraded.metrics()
        assert metrics["deadline_exhausted"] == 1
        assert metrics["degraded_decisions"] > 0
        # Over-approximation in both phases, wrong answer in neither.
        assert _pcs(clean.execution.summary) <= _pcs(degraded.execution.summary)

    def test_dise_clean_metrics_report_complete(self):
        artifact = asw_artifact()
        base = artifact.base_program()
        modified = artifact.version_program("v1")
        metrics = DiSE(
            base, modified, procedure_name=artifact.procedure_name
        ).run().metrics()
        assert metrics["deadline_exhausted"] == 0
        assert metrics["degraded_decisions"] == 0
