"""Chaos differential gate: parallel ≡ serial under injected faults.

The fault-tolerance claim worth gating on is not "faults are survived" but
"faults are survived *without changing the answer*": with workers crashing,
solvers wedging and shards timing out, the parallel runtime must still emit
the identical distinct path-condition set a clean serial run produces, on
every version of every artifact history (ASW/WBS/OAE + the interprocedural
ASW-CALLS/FCS -- 56 version pairs).

The schedule comes from ``REPRO_FAULTS`` when set (the CI chaos job pins
``seed:6,crash:0.3,timeout:0.2``) and defaults to the same spec here, so a
plain local ``pytest tests/chaos`` exercises the gate identically.

The serial oracle runs *inside* the installed plan under
:func:`faults.suspended`, which proves suspension really silences the
schedule -- a fault leaking into the oracle would break the comparison
loudly.
"""

import pytest

from repro import faults
from repro.artifacts import all_artifacts, interproc_artifacts
from repro.core.dise import DiSE
from repro.parallel.shard import ShardConfig

DEFAULT_SPEC = "seed:6,crash:0.3,timeout:0.2"

#: Small shards, fast retries: the point is fault coverage, not throughput.
CHAOS_CONFIG = ShardConfig(
    cold_split_depth=1,
    min_shards=1,
    task_timeout_seconds=10.0,
    retry_backoff_seconds=0.01,
)

_ARTIFACTS = {a.name: a for a in list(all_artifacts()) + list(interproc_artifacts())}


def _pcs(summary):
    return sorted(str(c) for c in summary.distinct_path_conditions())


def _version_pairs(artifact):
    from repro.lang.parser import parse_program

    history = artifact.history()
    parsed = {}

    def program(source):
        if source not in parsed:
            parsed[source] = parse_program(source)
        return parsed[source]

    return [
        (prev_name, name, program(prev_source), program(source))
        for (prev_name, _, _, prev_source), (name, _, _, source) in zip(
            history, history[1:]
        )
    ]


@pytest.mark.parametrize("artifact_name", sorted(_ARTIFACTS))
def test_faulted_parallel_dise_identical_distinct_pcs(artifact_name):
    artifact = _ARTIFACTS[artifact_name]
    plan = faults.plan_from_env(default=DEFAULT_SPEC)
    with faults.injected(plan):
        for prev_name, name, base, modified in _version_pairs(artifact):
            with faults.suspended():
                serial = DiSE(
                    base, modified, procedure_name=artifact.procedure_name
                ).run()
            chaotic = DiSE(
                base,
                modified,
                procedure_name=artifact.procedure_name,
                workers=2,
                parallel_config=CHAOS_CONFIG,
            ).run()
            assert _pcs(chaotic.execution.summary) == _pcs(serial.execution.summary), (
                f"{artifact_name} {prev_name}->{name}: "
                f"parallel DiSE under injected faults diverged from clean serial"
            )
