"""Shard-level fault containment: retry, quarantine, salvage, real SIGKILL."""

import pytest

from repro import faults
from repro.artifacts.simple import update_modified_program
from repro.parallel.shard import ShardConfig, shutdown_pools
from repro.symexec.engine import symbolic_execute


def _record_keys(summary):
    return [
        (str(r.path_condition), tuple(map(str, r.final_environment)), r.is_error)
        for r in summary.records
    ]


def _run_parallel(program, config):
    return symbolic_execute(
        program, procedure_name="update", workers=2, parallel_config=config
    )


@pytest.fixture
def program():
    return update_modified_program()


@pytest.fixture
def serial_records(program):
    return _record_keys(symbolic_execute(program, procedure_name="update").summary)


class TestCrashContainment:
    def test_certain_crash_quarantines_inline_with_identical_output(
        self, program, serial_records
    ):
        """crash rate 1.0: every pool attempt of every shard dies.  All
        shards exhaust their retries, all are quarantined, the inline pass
        (fault-free in the parent) salvages every one -- output identical."""
        plan = faults.parse_spec("seed:1,crash:1.0")
        config = ShardConfig(
            cold_split_depth=1, min_shards=1, max_task_retries=1, retry_backoff_seconds=0.01
        )
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="parallel prewarm degraded"):
                result = _run_parallel(program, config)
        report = result.parallel
        assert report is not None and report.shards > 0
        assert report.retried_shards == report.shards
        assert report.quarantined_shards == report.shards
        assert report.failed_shards == 0, "inline quarantine must salvage every shard"
        assert report.failure_reasons
        assert any("WorkerCrashFault" in reason for reason in report.failure_reasons)
        assert report.salvaged_entries == report.merged_entries > 0
        assert _record_keys(result.summary) == serial_records

    def test_certain_crash_without_inline_still_identical_output(
        self, program, serial_records
    ):
        """quarantine_inline=False: every shard fails permanently and its
        subtree falls back to native exploration.  Pure speed loss -- the
        answer is still byte-identical to serial."""
        plan = faults.parse_spec("seed:1,crash:1.0")
        config = ShardConfig(
            cold_split_depth=1,
            min_shards=1,
            max_task_retries=0,
            retry_backoff_seconds=0.01,
            quarantine_inline=False,
        )
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="failed permanently"):
                result = _run_parallel(program, config)
        report = result.parallel
        assert report is not None and report.shards > 0
        assert report.failed_shards == report.shards
        assert report.merged_entries == 0
        assert _record_keys(result.summary) == serial_records

    def test_partial_crash_salvages_survivors(self, program, serial_records):
        """crash rate 0.5 with no retries and no inline rescue: the
        surviving shards' entries must merge (partial salvage), and the
        failed shards' subtrees must not distort the output."""
        plan = faults.parse_spec("seed:2,crash:0.5")
        config = ShardConfig(
            cold_split_depth=1,
            min_shards=1,
            max_task_retries=0,
            retry_backoff_seconds=0.01,
            quarantine_inline=False,
        )
        with faults.injected(plan):
            result = _run_parallel(program, config)
        report = result.parallel
        assert report is not None and report.shards > 0
        if report.failed_shards:
            # A failure occurred and the survivors still landed in the cache.
            assert report.failed_shards < report.shards
            assert report.salvaged_entries == report.merged_entries > 0
        assert _record_keys(result.summary) == serial_records


class TestSolverWedgeContainment:
    def test_injected_solver_timeout_fails_the_shard_not_the_answer(
        self, program, serial_records
    ):
        """A wedged worker solver must *fail* the shard (retried, then
        quarantined) -- never ship conservatively-divergent summaries."""
        plan = faults.parse_spec("seed:3,timeout:1.0")
        config = ShardConfig(
            cold_split_depth=1, min_shards=1, max_task_retries=1, retry_backoff_seconds=0.01
        )
        with faults.injected(plan):
            with pytest.warns(RuntimeWarning, match="parallel prewarm degraded"):
                result = _run_parallel(program, config)
        report = result.parallel
        assert report is not None and report.shards > 0
        assert any("SolverTimeoutFault" in reason for reason in report.failure_reasons)
        assert report.failed_shards == 0
        assert _record_keys(result.summary) == serial_records


class TestRealWorkerKill:
    def test_sigkilled_worker_mid_task_salvages_siblings(
        self, program, serial_records
    ):
        """The hardest failure mode, for real: workers SIGKILL themselves
        mid-task (no exception, no cleanup -- the OS just takes them).  The
        per-task deadline expires, the attempt re-rolls, and whatever the
        pool cannot finish the quarantine pass rescues inline.  A single
        kill must never discard sibling shard results."""
        plan = faults.parse_spec("seed:6,kill:0.97")
        config = ShardConfig(
            cold_split_depth=1,
            min_shards=1,
            task_timeout_seconds=1.0,
            pool_timeout_seconds=6.0,
            max_task_retries=1,
            retry_backoff_seconds=0.01,
        )
        try:
            with faults.injected(plan):
                with pytest.warns(RuntimeWarning, match="parallel prewarm degraded"):
                    result = _run_parallel(program, config)
            report = result.parallel
            assert report is not None and report.shards > 0
            assert report.failure_reasons, "a 97% kill rate must record casualties"
            assert report.failed_shards == 0, "quarantine must salvage killed shards"
            assert report.merged_entries > 0
            assert _record_keys(result.summary) == serial_records
        finally:
            # The kill schedule leaves the cached pool with a wedged task;
            # dispatch discards it already, but be belt-and-braces about
            # never leaking a poisoned pool into later tests.
            shutdown_pools()

    def test_clean_pool_after_kill_storm(self, program, serial_records):
        """After the kill storm the next parallel run forks a fresh pool
        and completes cleanly -- no sticky fault state, no poisoned pool."""
        result = _run_parallel(
            program, ShardConfig(cold_split_depth=1, min_shards=1)
        )
        report = result.parallel
        assert report is not None and report.shards > 0
        assert report.failed_shards == 0
        assert report.failure_reasons == []
        assert _record_keys(result.summary) == serial_records
