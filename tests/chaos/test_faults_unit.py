"""Unit coverage for the deterministic fault-injection registry."""

import pytest

from repro import faults
from repro.faults import (
    FAULT_SITES,
    FaultPlan,
    SolverTimeoutFault,
    WorkerCrashFault,
    parse_spec,
    plan_from_env,
)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        plan = parse_spec("seed:6,crash:0.3,timeout:0.2,hang_seconds:1.5")
        assert plan.seed == 6
        assert plan.rates == {"worker-crash": 0.3, "solver-timeout": 0.2}
        assert plan.hang_seconds == 1.5

    def test_canonical_names_accepted(self):
        plan = parse_spec("torn-store-write:0.5,corrupt-frame:0.25")
        assert plan.rates == {"torn-store-write": 0.5, "corrupt-frame": 0.25}

    def test_empty_items_tolerated(self):
        plan = parse_spec("seed:1,,crash:0.5,")
        assert plan.seed == 1
        assert plan.rates == {"worker-crash": 0.5}

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="Unknown fault site"):
            parse_spec("seed:1,frobnicate:0.5")

    def test_malformed_item_rejected(self):
        with pytest.raises(ValueError, match="Malformed fault spec"):
            parse_spec("seed")

    def test_plan_constructor_rejects_unknown_site(self):
        with pytest.raises(ValueError, match="Unknown fault site"):
            FaultPlan(rates={"nonsense": 1.0})

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        assert plan_from_env(default="seed:3,kill:0.1").seed == 3
        monkeypatch.setenv("REPRO_FAULTS", "seed:9,hang:0.4")
        plan = plan_from_env(default="seed:3,kill:0.1")
        assert plan.seed == 9
        assert plan.rates == {"worker-hang": 0.4}


class TestDeterminism:
    def test_rolls_are_pure_in_seed_scope_site_ident(self):
        a = FaultPlan(seed=6)
        b = FaultPlan(seed=6)
        for site in FAULT_SITES:
            assert a.roll(site, "task0|a0") == b.roll(site, "task0|a0")
        assert FaultPlan(seed=7).roll("worker-crash", "task0|a0") != a.roll(
            "worker-crash", "task0|a0"
        )

    def test_scope_changes_the_schedule(self):
        plan = FaultPlan(seed=6)
        plan.scope = "task0|a0"
        first = plan.roll("worker-crash", "x")
        plan.scope = "task0|a1"
        assert plan.roll("worker-crash", "x") != first

    def test_retried_attempts_reroll(self):
        """A shard whose attempt 0 crashed must not deterministically crash
        on every retry: the attempt number is folded into the ident."""
        plan = FaultPlan(seed=0, rates={"worker-crash": 0.5})
        plan.in_worker = True
        outcomes = {
            plan.fires("worker-crash", f"task3|a{attempt}") for attempt in range(8)
        }
        assert outcomes == {True, False}

    def test_rate_bounds(self):
        always = FaultPlan(seed=1, rates={"worker-crash": 1.0})
        always.in_worker = True
        never = FaultPlan(seed=1, rates={"worker-crash": 0.0})
        never.in_worker = True
        for ident in ("a", "b", "c", "d"):
            assert always.fires("worker-crash", ident)
            assert not never.fires("worker-crash", ident)


class TestGating:
    def test_worker_only_sites_need_in_worker(self):
        plan = FaultPlan(seed=1, rates={site: 1.0 for site in FAULT_SITES})
        assert not plan.fires("worker-crash", "x")
        assert not plan.fires("worker-hang", "x")
        assert not plan.fires("worker-kill", "x")
        assert not plan.fires("solver-timeout", "x")
        # Data-corruption sites fire anywhere.
        assert plan.fires("torn-store-write", "x")
        assert plan.fires("corrupt-frame", "x")
        plan.in_worker = True
        assert plan.fires("worker-crash", "x")

    def test_injected_installs_and_restores(self):
        assert faults.active_plan() is None
        plan = FaultPlan(seed=2)
        with faults.injected(plan):
            assert faults.active_plan() is plan
            inner = FaultPlan(seed=3)
            with faults.injected(inner):
                assert faults.active_plan() is inner
            assert faults.active_plan() is plan
        assert faults.active_plan() is None

    def test_suspended_silences_the_active_plan(self):
        plan = FaultPlan(seed=1, rates={"corrupt-frame": 1.0})
        with faults.injected(plan):
            assert faults.fires("corrupt-frame", "x")
            with faults.suspended():
                assert not faults.fires("corrupt-frame", "x")
                with faults.suspended():  # nests
                    assert not faults.fires("corrupt-frame", "x")
                assert not faults.fires("corrupt-frame", "x")
            assert faults.fires("corrupt-frame", "x")

    def test_suspended_without_a_plan_is_a_noop(self):
        with faults.suspended():
            assert faults.active_plan() is None


class TestWorkerHooks:
    def test_crash_fault_raises(self):
        plan = FaultPlan(seed=1, rates={"worker-crash": 1.0})
        plan.in_worker = True
        with pytest.raises(WorkerCrashFault):
            plan.maybe_worker_fault("task0|a0")

    def test_solver_timeout_arms_and_fires(self):
        plan = FaultPlan(seed=1, rates={"solver-timeout": 1.0})
        plan.in_worker = True
        plan.maybe_worker_fault("task0|a0")
        assert plan._solver_timeout_at is not None
        with pytest.raises(SolverTimeoutFault):
            for _ in range(plan._solver_timeout_at):
                plan.note_solver_check()

    def test_solver_timeout_is_not_a_solver_error(self):
        """The lookahead swallows SolverError conservatively; an injected
        wedge must instead fail the shard (see the faults module docstring)."""
        from repro.solver.core import SolverError

        assert not issubclass(SolverTimeoutFault, SolverError)

    def test_unarmed_plan_never_wedges_the_solver(self):
        plan = FaultPlan(seed=1, rates={"solver-timeout": 1.0})
        # Parent-side plan: maybe_worker_fault never ran, nothing armed.
        for _ in range(64):
            plan.note_solver_check()

    def test_payload_round_trip(self):
        plan = parse_spec("seed:6,crash:0.3,timeout:0.2,hang_seconds:1.5")
        clone = FaultPlan.from_payload(plan.worker_payload())
        assert clone.seed == plan.seed
        assert clone.rates == plan.rates
        assert clone.hang_seconds == plan.hang_seconds
        assert clone.roll("worker-crash", "t") == plan.roll("worker-crash", "t")
