"""Crash-safe store under chaos: torn writes at every offset, concurrent writers."""

import multiprocessing
import os

from repro import faults
from repro.artifacts.simple import update_base_program, update_modified_program
from repro.lang.parser import parse_program
from repro.parallel.store import PersistentSummaryStore
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache

TINY_SOURCE = """
global int r = 0;
proc tiny(int a, int b) {
    if (a > 0) { r = 1; } else { r = 2; }
    if (b > 0) { r = r + 10; } else { r = r + 20; }
}
"""


def _record_cache(program, procedure_name):
    cache = SummaryCache()
    symbolic_execute(program, procedure_name=procedure_name, summary_cache=cache)
    assert len(cache) > 0
    return cache


class TestTornWrites:
    def test_truncation_at_every_byte_offset_never_raises_never_adopts_corrupt(
        self, tmp_path
    ):
        """The exhaustive property behind crash safety: a store torn at ANY
        byte offset loads without raising, adopts only entries whose
        checksums verify, and counts every casualty."""
        cache = _record_cache(parse_program(TINY_SOURCE), "tiny")
        store = PersistentSummaryStore(str(tmp_path / "store.json"))
        dumped = store.dump(cache)
        assert dumped > 0
        original = store.checksums()
        assert original is not None and len(original) == dumped
        with open(store.path, "rb") as handle:
            data = handle.read()

        torn_path = str(tmp_path / "torn.json")
        torn = PersistentSummaryStore(torn_path)
        for offset in range(len(data) + 1):
            with open(torn_path, "wb") as handle:
                handle.write(data[:offset])
            fresh = SummaryCache()
            adopted = torn.load_into(fresh)  # must never raise
            assert 0 <= adopted <= dumped
            assert len(fresh) == adopted
            salvaged = torn.checksums()
            if salvaged is not None:
                # Whatever survived the tear is a subset of what was written
                # -- a corrupt line is skipped, never adopted as something new.
                assert salvaged <= original
            # A full-length copy must salvage everything.
            if offset == len(data):
                assert adopted == dumped
                assert torn.skipped_entries == 0

    def test_injected_torn_write_salvages_intact_prefix(self, tmp_path):
        """The torn-store-write fault site end to end: dump under a
        certain-tear schedule, then load what physically survived."""
        cache = _record_cache(update_modified_program(), "update")
        store = PersistentSummaryStore(str(tmp_path / "store.json"))
        with faults.injected(faults.parse_spec("seed:6,torn:1.0")):
            dumped = store.dump(cache)
        assert dumped > 0
        on_disk = os.path.getsize(store.path)
        fresh = SummaryCache()
        adopted = store.load_into(fresh)  # never raises, whatever the tear left
        assert 0 <= adopted <= dumped
        salvageable = store.checksums()
        if salvageable is None:
            assert adopted == 0
        else:
            assert adopted == len(salvageable)
        # A clean re-dump from the surviving cache heals the store.
        healed = store.dump(cache)
        assert healed == dumped
        assert os.path.getsize(store.path) > on_disk or adopted == dumped


def _dump_worker(path, which):
    program = update_base_program() if which == "base" else update_modified_program()
    cache = _record_cache(program, "update")
    PersistentSummaryStore(path).dump(cache)


class TestConcurrentWriters:
    def test_sequential_dumps_union_instead_of_clobbering(self, tmp_path):
        base_cache = _record_cache(update_base_program(), "update")
        modified_cache = _record_cache(update_modified_program(), "update")

        only_base = PersistentSummaryStore(str(tmp_path / "base.json"))
        only_base.dump(base_cache)
        only_modified = PersistentSummaryStore(str(tmp_path / "modified.json"))
        only_modified.dump(modified_cache)

        shared = PersistentSummaryStore(str(tmp_path / "shared.json"))
        shared.dump(base_cache)
        shared.dump(modified_cache)
        assert shared.checksums() == only_base.checksums() | only_modified.checksums()

    def test_two_concurrent_processes_lose_zero_entries(self, tmp_path):
        """Two live processes dumping to one path: the lock-merge-publish
        sequence must union their entries -- last-writer clobbering would
        silently lose one process's whole corpus."""
        shared_path = str(tmp_path / "shared.json")
        workers = [
            multiprocessing.Process(target=_dump_worker, args=(shared_path, which))
            for which in ("base", "modified")
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0

        only_base = PersistentSummaryStore(str(tmp_path / "base.json"))
        only_base.dump(_record_cache(update_base_program(), "update"))
        only_modified = PersistentSummaryStore(str(tmp_path / "modified.json"))
        only_modified.dump(_record_cache(update_modified_program(), "update"))

        final = PersistentSummaryStore(shared_path).checksums()
        expected = only_base.checksums() | only_modified.checksums()
        assert final is not None
        assert final >= expected, (
            f"concurrent dump lost {len(expected - final)} entries"
        )


class TestCostModelTornWrites:
    def test_truncation_at_every_byte_offset_never_adopts_corrupt_state(
        self, tmp_path
    ):
        """The format-4 extension of the exhaustive torn-write property:
        whatever byte the tear lands on, loading the cost model never
        raises and never adopts anything the intact store did not hold."""
        import pytest

        from repro.parallel.shard import SchedulerCostModel

        cache = _record_cache(parse_program(TINY_SOURCE), "tiny")
        model = SchedulerCostModel()
        model.observe_task("digest-a", paths=4, elapsed=0.2, features=(16, 4, 0, 5))
        model.observe_task("digest-b", paths=2, elapsed=0.05)
        model.observe_run("full:tiny", 0.4, shards=2)
        store = PersistentSummaryStore(str(tmp_path / "store.json"))
        dumped = store.dump(cache, cost_model=model)
        assert dumped > 0 and store.costmodel_state_count() == 1
        with open(store.path, "rb") as handle:
            data = handle.read()

        torn_path = str(tmp_path / "torn.json")
        torn = PersistentSummaryStore(torn_path)
        for offset in range(len(data) + 1):
            with open(torn_path, "wb") as handle:
                handle.write(data[:offset])
            fresh = SchedulerCostModel()
            adopted = torn.load_cost_model_into(fresh)  # must never raise
            assert adopted in (0, 2)
            if adopted:
                # A salvaged state is the written state, never a mangled one.
                assert fresh.estimate_seconds("digest-a") == pytest.approx(
                    model.estimate_seconds("digest-a")
                )
                assert fresh.estimate_seconds("digest-b") == pytest.approx(
                    model.estimate_seconds("digest-b")
                )
            # The summary entries load independently of the model's fate.
            salvage = SummaryCache()
            assert 0 <= torn.load_into(salvage) <= dumped
            if offset == len(data):
                assert adopted == 2
                assert torn.load_into(SummaryCache()) == dumped


class TestCostModelFaultHygiene:
    """Degraded or faulted rounds must never pollute the learned estimates."""

    def test_faulted_parallel_run_leaves_model_cold(self):
        from repro.parallel.shard import (
            reset_scheduler_cost_model,
            scheduler_cost_model,
        )

        reset_scheduler_cost_model()
        with faults.injected(faults.parse_spec("seed:6,crash:0.5,timeout:0.2")):
            symbolic_execute(
                parse_program(TINY_SOURCE),
                procedure_name="tiny",
                summary_cache=SummaryCache(),
                workers=2,
            )
        state = scheduler_cost_model().export_state()
        assert state["observed_tasks"] == 0
        assert state["observed_rounds"] == 0
        assert state["digest_seconds"] == {}
        assert state["run_seconds"] == {}
        assert state["feature_buckets"] == {}

    def test_faulted_history_run_never_publishes_model_state(self, tmp_path):
        from repro.artifacts import wbs_artifact
        from repro.evolution.history import VersionHistoryRunner
        from repro.parallel.shard import SchedulerCostModel

        store_path = str(tmp_path / "store.json")
        with faults.injected(faults.parse_spec("seed:6,crash:0.3,timeout:0.2")):
            report = VersionHistoryRunner(
                wbs_artifact(), store_path=store_path, workers=2
            ).run()
        assert report.cache.get("costmodel_published") is False
        store = PersistentSummaryStore(store_path)
        assert store.costmodel_state_count() == 0
        assert store.load_cost_model_into(SchedulerCostModel()) == 0

    def test_clean_history_run_publishes_and_faulted_rerun_keeps_it(self, tmp_path):
        from repro.artifacts import wbs_artifact
        from repro.evolution.history import VersionHistoryRunner
        from repro.parallel.shard import SchedulerCostModel

        store_path = str(tmp_path / "store.json")
        clean = VersionHistoryRunner(
            wbs_artifact(), store_path=store_path, workers=2
        ).run()
        assert clean.cache.get("costmodel_published") is True
        store = PersistentSummaryStore(store_path)
        baseline = SchedulerCostModel()
        store.load_cost_model_into(baseline)
        before = baseline.export_state()

        with faults.injected(faults.parse_spec("seed:6,crash:0.5")):
            VersionHistoryRunner(
                wbs_artifact(), store_path=store_path, workers=2
            ).run()
        after_model = SchedulerCostModel()
        store.load_cost_model_into(after_model)
        # The faulted rerun must carry the clean state forward untouched.
        assert after_model.export_state() == before
