"""Call frames across the process fence + cost-model shard scheduling."""

import pytest

from repro.cfg.builder import build_cfg
from repro.cfg.ir import NodeKind
from repro.lang.parser import parse_program
from repro.parallel.serialize import (
    decode_cache_entry,
    decode_state,
    encode_cache_entry,
    encode_state,
)
from repro.parallel.shard import (
    FrontierCollector,
    SchedulerCostModel,
    ShardConfig,
    prewarm_full,
)
from repro.solver.terms import mk_int, mk_symbol
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.state import CallFrame, SymbolicState
from repro.symexec.summary_cache import SummaryCache

CALLS_SOURCE = """
global int g = 0;

proc vote(int s1, int s2) {
    int v = 0;
    if (s1 > 0) { v = v + 1; }
    if (s2 > 0) { v = v + 1; }
    return v;
}

proc main(int a, int b, int c, int d) {
    int x = 0;
    int y = 0;
    x = vote(a, b);
    y = vote(c, d);
    g = x + y;
}
"""


def _distinct(summary):
    return tuple(sorted(str(pc) for pc in summary.distinct_path_conditions()))


class TestFrameCodec:
    def test_state_with_frames_roundtrips(self):
        program = parse_program(CALLS_SOURCE)
        cfg = build_cfg(program, "main")
        branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
        frame = CallFrame(
            callee="vote",
            saved=(("x", mk_int(3)), ("y", None)),
        )
        state = SymbolicState.make(
            node=branch,
            environment={"s1": mk_symbol("a", "int"), "g": mk_int(0)},
            trace=(branch.node_id,),
            frames=(frame,),
        )
        decoded = decode_state(encode_state(state), cfg)
        assert decoded.frames == state.frames
        assert decoded.environment == state.environment

    def test_cache_entry_with_frame_fingerprint_roundtrips(self):
        """Fingerprint entries with tuple names survive the codec."""
        program = parse_program(CALLS_SOURCE)
        executor = SymbolicExecutor(
            program, procedure_name="main", summary_cache=SummaryCache()
        )
        executor.run()
        entries = list(executor.summary_cache.iter_entries())
        assert entries
        framed = [
            (key, summary, pins)
            for key, summary, pins in entries
            if any(isinstance(name, tuple) for name, _ in key[2])
        ]
        assert framed, "expected at least one cache entry keyed inside a callee"
        for key, summary, pins in framed[:3]:
            decoded_key, _, _ = decode_cache_entry(
                encode_cache_entry(key, summary, pins)
            )
            assert decoded_key == key

    def test_parallel_interproc_matches_serial(self):
        program = parse_program(CALLS_SOURCE)
        serial = symbolic_execute(program, procedure_name="main")
        parallel = symbolic_execute(program, procedure_name="main", workers=2)
        assert _distinct(parallel.summary) == _distinct(serial.summary)
        assert parallel.parallel is not None

    def test_shipped_frames_resume_inside_callee(self):
        """Frontier frames inside a spliced callee cross the fence intact."""
        program = parse_program(CALLS_SOURCE)
        cache = SummaryCache()
        report = prewarm_full(
            program,
            procedure_name="main",
            cfg=build_cfg(program, "main"),
            summary_cache=cache,
            workers=2,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
        )
        assert report.shards > 0
        result = symbolic_execute(
            program, procedure_name="main", summary_cache=cache
        )
        cold = symbolic_execute(parse_program(CALLS_SOURCE), procedure_name="main")
        assert _distinct(result.summary) == _distinct(cold.summary)
        assert result.statistics.replayed_paths > 0


class TestCostModelScheduling:
    def _collect(self, cache, config, cost_model=None):
        program = parse_program(CALLS_SOURCE)
        collector = FrontierCollector(
            program,
            procedure_name="main",
            summary_cache=cache,
            config=config,
            strategy_payload=lambda state: {"kind": "everything"},
            cost_model=cost_model,
        )
        collector.run()
        return collector

    def test_warm_cache_keeps_cheap_subtrees_inline(self):
        cache = SummaryCache()
        # Warm pass records every subtree's path count as a size hint.
        symbolic_execute(
            parse_program(CALLS_SOURCE), procedure_name="main", summary_cache=cache
        )
        # A fresh cache with only the *hints* carried over simulates the
        # next version: digests known, keys (token/fingerprint) missing.
        hinted = SummaryCache()
        hinted._size_hints.update(cache._size_hints)

        config = ShardConfig(cold_split_depth=1, min_shards=1)
        # Zero fence overhead: every computable key ships.
        eager = self._collect(
            hinted, config, cost_model=SchedulerCostModel(fence_seconds=0.0)
        )
        # A huge measured fence: every size-hinted subtree is estimated
        # cheaper than shipping and stays inline.
        expensive = self._collect(
            hinted, config, cost_model=SchedulerCostModel(fence_seconds=1000.0)
        )
        assert eager.tasks, "baseline collector must defer something"
        assert expensive.cost_inline > 0
        assert len(expensive.tasks) < len(eager.tasks)

    def test_unknown_digests_fall_back_to_cold_split_depth(self):
        # With no size hints and no observations every digest is cold, so
        # the fence estimate is moot: the depth prior alone decides and the
        # fence-free model defers the identical task set.
        config = ShardConfig(cold_split_depth=1, min_shards=1)
        cold = self._collect(
            SummaryCache(), config, cost_model=SchedulerCostModel(fence_seconds=1000.0)
        )
        eager = self._collect(
            SummaryCache(), config, cost_model=SchedulerCostModel(fence_seconds=0.0)
        )
        assert cold.tasks, "cold collector must defer at the depth prior"
        assert len(cold.tasks) == len(eager.tasks)
        assert cold.cost_inline == 0

    def test_observed_costs_steer_shipping(self):
        model = SchedulerCostModel(fence_seconds=0.01)
        model.observe_task("deadbeef", paths=4, elapsed=1.0)
        model.observe_task("cafe", paths=4, elapsed=0.000001)
        config = ShardConfig()
        assert model.should_ship("deadbeef", depth=1, size_hint=None, config=config)
        assert not model.should_ship("cafe", depth=99, size_hint=None, config=config)
        # Unknown digest: depth prior.
        assert not model.should_ship("beef", depth=1, size_hint=None, config=config)
        assert model.should_ship("beef", depth=2, size_hint=None, config=config)

    def test_observe_round_tracks_fence_overhead(self):
        model = SchedulerCostModel(fence_seconds=0.003, alpha=1.0)
        model.observe_round(
            shards=2, pool_seconds=1.0, merge_seconds=0.2, worker_elapsed=0.0, workers=2
        )
        assert model.fence_seconds == pytest.approx(0.6)
        # Worker compute is subtracted (scaled by effective parallelism),
        # and the floor keeps noise from zeroing the fence.
        model.observe_round(
            shards=2, pool_seconds=0.1, merge_seconds=0.0, worker_elapsed=10.0, workers=1
        )
        assert model.fence_seconds == SchedulerCostModel.FENCE_FLOOR_SECONDS

    def test_size_hints_recorded_on_store_and_adopt(self):
        cache = SummaryCache()
        symbolic_execute(
            parse_program(CALLS_SOURCE), procedure_name="main", summary_cache=cache
        )
        hints = [cache.size_hint(key[1]) for key, _, _ in cache.iter_entries()]
        assert hints and all(h is not None and h >= 1 for h in hints)
