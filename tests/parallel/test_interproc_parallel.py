"""Call frames across the process fence + adaptive shard scheduling."""

from repro.cfg.builder import build_cfg
from repro.cfg.ir import NodeKind
from repro.lang.parser import parse_program
from repro.parallel.serialize import (
    decode_cache_entry,
    decode_state,
    encode_cache_entry,
    encode_state,
)
from repro.parallel.shard import FrontierCollector, ShardConfig, prewarm_full
from repro.solver.terms import mk_int, mk_symbol
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.state import CallFrame, SymbolicState
from repro.symexec.summary_cache import SummaryCache

CALLS_SOURCE = """
global int g = 0;

proc vote(int s1, int s2) {
    int v = 0;
    if (s1 > 0) { v = v + 1; }
    if (s2 > 0) { v = v + 1; }
    return v;
}

proc main(int a, int b, int c, int d) {
    int x = 0;
    int y = 0;
    x = vote(a, b);
    y = vote(c, d);
    g = x + y;
}
"""


def _distinct(summary):
    return tuple(sorted(str(pc) for pc in summary.distinct_path_conditions()))


class TestFrameCodec:
    def test_state_with_frames_roundtrips(self):
        program = parse_program(CALLS_SOURCE)
        cfg = build_cfg(program, "main")
        branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
        frame = CallFrame(
            callee="vote",
            saved=(("x", mk_int(3)), ("y", None)),
        )
        state = SymbolicState.make(
            node=branch,
            environment={"s1": mk_symbol("a", "int"), "g": mk_int(0)},
            trace=(branch.node_id,),
            frames=(frame,),
        )
        decoded = decode_state(encode_state(state), cfg)
        assert decoded.frames == state.frames
        assert decoded.environment == state.environment

    def test_cache_entry_with_frame_fingerprint_roundtrips(self):
        """Fingerprint entries with tuple names survive the codec."""
        program = parse_program(CALLS_SOURCE)
        executor = SymbolicExecutor(
            program, procedure_name="main", summary_cache=SummaryCache()
        )
        executor.run()
        entries = list(executor.summary_cache.iter_entries())
        assert entries
        framed = [
            (key, summary, pins)
            for key, summary, pins in entries
            if any(isinstance(name, tuple) for name, _ in key[2])
        ]
        assert framed, "expected at least one cache entry keyed inside a callee"
        for key, summary, pins in framed[:3]:
            decoded_key, _, _ = decode_cache_entry(
                encode_cache_entry(key, summary, pins)
            )
            assert decoded_key == key

    def test_parallel_interproc_matches_serial(self):
        program = parse_program(CALLS_SOURCE)
        serial = symbolic_execute(program, procedure_name="main")
        parallel = symbolic_execute(program, procedure_name="main", workers=2)
        assert _distinct(parallel.summary) == _distinct(serial.summary)
        assert parallel.parallel is not None

    def test_shipped_frames_resume_inside_callee(self):
        """Frontier frames inside a spliced callee cross the fence intact."""
        program = parse_program(CALLS_SOURCE)
        cache = SummaryCache()
        report = prewarm_full(
            program,
            procedure_name="main",
            cfg=build_cfg(program, "main"),
            summary_cache=cache,
            workers=2,
            config=ShardConfig(split_depth=1, min_shards=1, adaptive=False),
        )
        assert report.shards > 0
        result = symbolic_execute(
            program, procedure_name="main", summary_cache=cache
        )
        cold = symbolic_execute(parse_program(CALLS_SOURCE), procedure_name="main")
        assert _distinct(result.summary) == _distinct(cold.summary)
        assert result.statistics.replayed_paths > 0


class TestAdaptiveScheduling:
    def _collect(self, cache, config):
        program = parse_program(CALLS_SOURCE)
        collector = FrontierCollector(
            program,
            procedure_name="main",
            summary_cache=cache,
            config=config,
            strategy_payload=lambda state: {"kind": "everything"},
        )
        collector.run()
        return collector

    def test_warm_cache_keeps_cheap_subtrees_inline(self):
        cache = SummaryCache()
        # Warm pass records every subtree's path count as a size hint.
        symbolic_execute(
            parse_program(CALLS_SOURCE), procedure_name="main", summary_cache=cache
        )
        # A fresh cache with only the *hints* carried over simulates the
        # next version: digests known, keys (token/fingerprint) missing.
        hinted = SummaryCache()
        hinted._size_hints.update(cache._size_hints)

        eager = self._collect(
            hinted, ShardConfig(split_depth=1, min_shards=1, adaptive=False)
        )
        adaptive = self._collect(
            hinted,
            ShardConfig(
                split_depth=1, min_shards=1, adaptive=True, min_task_paths=1000
            ),
        )
        assert eager.tasks, "baseline collector must defer something"
        assert adaptive.adaptive_inline > 0
        assert len(adaptive.tasks) < len(eager.tasks)

    def test_unknown_digests_fall_back_to_split_depth(self):
        cold = self._collect(
            SummaryCache(), ShardConfig(split_depth=1, min_shards=1, adaptive=True)
        )
        eager = self._collect(
            SummaryCache(), ShardConfig(split_depth=1, min_shards=1, adaptive=False)
        )
        assert len(cold.tasks) == len(eager.tasks)
        assert cold.adaptive_inline == 0

    def test_size_hints_recorded_on_store_and_adopt(self):
        cache = SummaryCache()
        symbolic_execute(
            parse_program(CALLS_SOURCE), procedure_name="main", summary_cache=cache
        )
        hints = [cache.size_hint(key[1]) for key, _, _ in cache.iter_entries()]
        assert hints and all(h is not None and h >= 1 for h in hints)
