"""Persistent summary store: dump/load round trips, resilience, versioning."""

import json
import os

from repro.artifacts.simple import update_modified_program
from repro.parallel.store import STORE_FORMAT, PersistentSummaryStore
from repro.solver.terms import clear_intern_table
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _record_cache(program):
    cache = SummaryCache()
    result = symbolic_execute(program, procedure_name="update", summary_cache=cache)
    assert len(cache) > 0
    return cache, result


def test_dump_and_load_round_trip(tmp_path):
    program = update_modified_program()
    cache, cold = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)
    assert dumped > 0
    assert store.exists()
    assert store.entry_count() == dumped

    # Fresh lifetime: new intern table, new cache, same disk file.
    clear_intern_table()
    warm_cache = SummaryCache()
    loaded = store.load_into(warm_cache)
    assert loaded == dumped
    assert warm_cache.statistics.adopted == loaded

    warm = symbolic_execute(program, procedure_name="update", summary_cache=warm_cache)
    assert warm.statistics.summary_cache_hits > 0
    assert warm.statistics.replayed_paths > 0
    assert sorted(str(c) for c in warm.summary.distinct_path_conditions()) == sorted(
        str(c) for c in cold.summary.distinct_path_conditions()
    )


def test_load_is_idempotent_and_first_in_wins(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)

    target = SummaryCache()
    assert store.load_into(target) == dumped
    # Loading again adds nothing: every key is already present.
    assert store.load_into(target) == 0
    assert len(target) == dumped


def test_missing_file_loads_nothing(tmp_path):
    store = PersistentSummaryStore(str(tmp_path / "absent.json"))
    cache = SummaryCache()
    assert not store.exists()
    assert store.load_into(cache) == 0
    assert store.entry_count() is None


def test_corrupt_file_is_ignored(tmp_path):
    path = tmp_path / "corrupt.json"
    path.write_text("{ this is not json", encoding="utf-8")
    cache = SummaryCache()
    assert PersistentSummaryStore(str(path)).load_into(cache) == 0
    assert len(cache) == 0


def test_unknown_format_is_ignored(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache)

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    lines[0] = json.dumps({"format": STORE_FORMAT + 1})
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    fresh = SummaryCache()
    assert store.load_into(fresh) == 0
    assert store.skipped_entries == 0
    assert store.entry_count() is None


def test_malformed_entries_are_skipped_not_fatal(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    # Corrupt one entry line: content no longer matches its checksum.
    lines[1] = lines[1].replace('"entry"', '"entry_x"', 1)
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    fresh = SummaryCache()
    assert store.load_into(fresh) == dumped - 1
    assert store.skipped_entries == 1
    assert store.entry_count() == dumped - 1


def test_dump_creates_parent_directories(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    nested = tmp_path / "a" / "b" / "store.json"
    store = PersistentSummaryStore(str(nested))
    assert store.dump(cache) > 0
    assert os.path.exists(str(nested))


def test_format_2_store_still_loads(tmp_path):
    """Backward compatibility: a pre-call-summary (format 2) store loads.

    Format-2 entries are a strict subset of format-3 shapes, so rewriting
    the header is exactly what an old store looks like; every entry must
    load with nothing skipped.
    """
    program = update_modified_program()
    cache, _ = _record_cache(program)
    # Drop any generalised entries so the file content is genuinely what a
    # format-2 writer could have produced.
    legacy = SummaryCache()
    for key, summary, pins in cache.iter_entries():
        if key[0] != "call":
            legacy.adopt(key, summary, pins=pins)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(legacy)
    assert dumped > 0

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert json.loads(lines[0]) == {"format": STORE_FORMAT}
    lines[0] = json.dumps({"format": 2})
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    clear_intern_table()
    fresh = SummaryCache()
    assert store.load_into(fresh) == dumped
    assert store.skipped_entries == 0
    assert len(fresh) == dumped


def test_call_summaries_round_trip_through_store(tmp_path):
    """Format 3's reason to exist: "call" entries survive dump/load."""
    from repro.artifacts.interproc import fcs_artifact
    from repro.lang.parser import parse_program

    artifact = fcs_artifact()
    program = parse_program(artifact.base_source)
    cache = SummaryCache()
    result = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=cache
    )
    assert result.statistics.generalized_call_stores > 0
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache)

    clear_intern_table()
    program = parse_program(artifact.base_source)
    loaded_cache = SummaryCache()
    assert store.load_into(loaded_cache) > 0
    assert store.skipped_entries == 0
    assert loaded_cache.entries_per_callee() == cache.entries_per_callee()
    # Keep only the generalised entries: with the whole-suffix entry loaded
    # too, replay fires at BEGIN and the call sites are never reached.
    warm_cache = SummaryCache()
    for key, summary, pins in loaded_cache.iter_entries():
        if key[0] == "call":
            warm_cache.adopt(key, summary, pins=pins)
    warm = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=warm_cache
    )
    assert warm.statistics.generalized_call_stores == 0
    assert warm.statistics.generalized_call_hits > 0
