"""Persistent summary store: dump/load round trips, resilience, versioning."""

import json
import os

from repro.artifacts.simple import update_modified_program
from repro.parallel.store import STORE_FORMAT, PersistentSummaryStore
from repro.solver.terms import clear_intern_table
from repro.symexec.engine import symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _record_cache(program):
    cache = SummaryCache()
    result = symbolic_execute(program, procedure_name="update", summary_cache=cache)
    assert len(cache) > 0
    return cache, result


def test_dump_and_load_round_trip(tmp_path):
    program = update_modified_program()
    cache, cold = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)
    assert dumped > 0
    assert store.exists()
    assert store.entry_count() == dumped

    # Fresh lifetime: new intern table, new cache, same disk file.
    clear_intern_table()
    warm_cache = SummaryCache()
    loaded = store.load_into(warm_cache)
    assert loaded == dumped
    assert warm_cache.statistics.adopted == loaded

    warm = symbolic_execute(program, procedure_name="update", summary_cache=warm_cache)
    assert warm.statistics.summary_cache_hits > 0
    assert warm.statistics.replayed_paths > 0
    assert sorted(str(c) for c in warm.summary.distinct_path_conditions()) == sorted(
        str(c) for c in cold.summary.distinct_path_conditions()
    )


def test_load_is_idempotent_and_first_in_wins(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)

    target = SummaryCache()
    assert store.load_into(target) == dumped
    # Loading again adds nothing: every key is already present.
    assert store.load_into(target) == 0
    assert len(target) == dumped


def test_missing_file_loads_nothing(tmp_path):
    store = PersistentSummaryStore(str(tmp_path / "absent.json"))
    cache = SummaryCache()
    assert not store.exists()
    assert store.load_into(cache) == 0
    assert store.entry_count() is None


def test_corrupt_file_is_ignored(tmp_path):
    path = tmp_path / "corrupt.json"
    path.write_text("{ this is not json", encoding="utf-8")
    cache = SummaryCache()
    assert PersistentSummaryStore(str(path)).load_into(cache) == 0
    assert len(cache) == 0


def test_unknown_format_is_ignored(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache)

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    lines[0] = json.dumps({"format": STORE_FORMAT + 1})
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    fresh = SummaryCache()
    assert store.load_into(fresh) == 0
    assert store.skipped_entries == 0
    assert store.entry_count() is None


def test_malformed_entries_are_skipped_not_fatal(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    # Corrupt one entry line: content no longer matches its checksum.
    lines[1] = lines[1].replace('"entry"', '"entry_x"', 1)
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    fresh = SummaryCache()
    assert store.load_into(fresh) == dumped - 1
    assert store.skipped_entries == 1
    assert store.entry_count() == dumped - 1


def test_dump_creates_parent_directories(tmp_path):
    program = update_modified_program()
    cache, _ = _record_cache(program)
    nested = tmp_path / "a" / "b" / "store.json"
    store = PersistentSummaryStore(str(nested))
    assert store.dump(cache) > 0
    assert os.path.exists(str(nested))


def test_format_2_store_still_loads(tmp_path):
    """Backward compatibility: a pre-call-summary (format 2) store loads.

    Format-2 entries are a strict subset of format-3 shapes, so rewriting
    the header is exactly what an old store looks like; every entry must
    load with nothing skipped.
    """
    program = update_modified_program()
    cache, _ = _record_cache(program)
    # Drop any generalised entries so the file content is genuinely what a
    # format-2 writer could have produced.
    legacy = SummaryCache()
    for key, summary, pins in cache.iter_entries():
        if key[0] != "call":
            legacy.adopt(key, summary, pins=pins)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(legacy)
    assert dumped > 0

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert json.loads(lines[0]) == {"format": STORE_FORMAT}
    lines[0] = json.dumps({"format": 2})
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    clear_intern_table()
    fresh = SummaryCache()
    assert store.load_into(fresh) == dumped
    assert store.skipped_entries == 0
    assert len(fresh) == dumped


def test_call_summaries_round_trip_through_store(tmp_path):
    """Format 3's reason to exist: "call" entries survive dump/load."""
    from repro.artifacts.interproc import fcs_artifact
    from repro.lang.parser import parse_program

    artifact = fcs_artifact()
    program = parse_program(artifact.base_source)
    cache = SummaryCache()
    result = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=cache
    )
    assert result.statistics.generalized_call_stores > 0
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache)

    clear_intern_table()
    program = parse_program(artifact.base_source)
    loaded_cache = SummaryCache()
    assert store.load_into(loaded_cache) > 0
    assert store.skipped_entries == 0
    assert loaded_cache.entries_per_callee() == cache.entries_per_callee()
    # Keep only the generalised entries: with the whole-suffix entry loaded
    # too, replay fires at BEGIN and the call sites are never reached.
    warm_cache = SummaryCache()
    for key, summary, pins in loaded_cache.iter_entries():
        if key[0] == "call":
            warm_cache.adopt(key, summary, pins=pins)
    warm = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=warm_cache
    )
    assert warm.statistics.generalized_call_stores == 0
    assert warm.statistics.generalized_call_hits > 0


# -- format 4: persisted cost-model state --------------------------------------


def _taught_model():
    from repro.parallel.shard import SchedulerCostModel

    model = SchedulerCostModel()
    model.observe_task("digest-a", paths=4, elapsed=0.2, features=(16, 4, 0, 5))
    model.observe_task("digest-b", paths=2, elapsed=0.05)
    model.observe_run("full:update", 0.4, shards=2)
    model.observe_round(
        shards=2, pool_seconds=0.2, merge_seconds=0.0, worker_elapsed=0.0, workers=1
    )
    return model


def test_costmodel_entry_round_trips(tmp_path):
    import pytest

    from repro.parallel.shard import SchedulerCostModel

    program = update_modified_program()
    cache, _ = _record_cache(program)
    model = _taught_model()
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache, cost_model=model)
    assert store.costmodel_published
    assert store.costmodel_state_count() == 1
    # The costmodel line is bookkeeping, not a cache entry: dump's return
    # value, entry_count and load_into must all agree on cache entries only.
    assert store.entry_count() == dumped
    fresh_cache = SummaryCache()
    assert store.load_into(fresh_cache) == dumped
    assert store.skipped_entries == 0

    fresh = SchedulerCostModel()
    assert store.load_cost_model_into(fresh) == 2
    assert store.costmodel_adopted == 2
    for digest in ("digest-a", "digest-b"):
        assert fresh.estimate_seconds(digest) == pytest.approx(
            model.estimate_seconds(digest)
        )
    assert fresh.run_estimate("full:update") == pytest.approx(0.4)
    # Fence seeded from the persisted histogram median (one 0.1s/task round).
    assert fresh.fence_seconds == pytest.approx(0.1)


def test_dump_without_model_carries_costmodel_lines(tmp_path):
    from repro.parallel.shard import SchedulerCostModel

    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache, cost_model=_taught_model())
    # A later writer with nothing to publish must not strip the state.
    store.dump(cache)
    assert not store.costmodel_published
    assert store.costmodel_state_count() == 1
    assert store.load_cost_model_into(SchedulerCostModel()) == 2


def test_dump_with_model_replaces_and_merges_states(tmp_path):
    import pytest

    from repro.parallel.shard import SchedulerCostModel

    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    store.dump(cache, cost_model=_taught_model())

    second = SchedulerCostModel()
    second.observe_task("digest-a", paths=4, elapsed=9.0)
    second.observe_task("digest-c", paths=1, elapsed=0.01)
    store.dump(cache, cost_model=second)
    # Replaced, not accumulated: one merged line, live model's keys winning
    # over the disk state's, disk-only keys surviving.
    assert store.costmodel_state_count() == 1
    merged = SchedulerCostModel()
    assert store.load_cost_model_into(merged) == 3
    assert merged.estimate_seconds("digest-a") == pytest.approx(9.0)
    assert merged.estimate_seconds("digest-b") is not None
    assert merged.estimate_seconds("digest-c") == pytest.approx(0.01)


def test_load_cost_model_from_missing_or_corrupt_store(tmp_path):
    from repro.parallel.shard import SchedulerCostModel

    absent = PersistentSummaryStore(str(tmp_path / "absent.json"))
    assert absent.load_cost_model_into(SchedulerCostModel()) == 0
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{ not json", encoding="utf-8")
    assert (
        PersistentSummaryStore(str(corrupt)).load_cost_model_into(SchedulerCostModel())
        == 0
    )


def test_format_3_store_loads_and_republishes_as_format_4(tmp_path):
    """Backward compatibility: a format-3 store (no costmodel lines) loads
    cleanly, and the next model-carrying dump upgrades it in place."""
    from repro.parallel.shard import SchedulerCostModel

    program = update_modified_program()
    cache, _ = _record_cache(program)
    store = PersistentSummaryStore(str(tmp_path / "store.json"))
    dumped = store.dump(cache)

    with open(store.path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    assert json.loads(lines[0]) == {"format": STORE_FORMAT}
    lines[0] = json.dumps({"format": 3})
    with open(store.path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")

    clear_intern_table()
    fresh = SummaryCache()
    assert store.load_into(fresh) == dumped
    assert store.skipped_entries == 0
    assert store.load_cost_model_into(SchedulerCostModel()) == 0

    assert store.dump(cache, cost_model=_taught_model()) == dumped
    with open(store.path, "r", encoding="utf-8") as handle:
        first_line = handle.readline()
    assert json.loads(first_line) == {"format": STORE_FORMAT}
    assert store.costmodel_state_count() == 1
    reloaded = SummaryCache()
    assert store.load_into(reloaded) == dumped


# -- hypothesis: arbitrary learned states survive the store --------------------

from hypothesis import given, settings, strategies as st

_DIGESTS = st.text(alphabet="abcdef0123456789", min_size=1, max_size=12)
_SECONDS = st.floats(
    min_value=1e-6, max_value=100.0, allow_nan=False, allow_infinity=False
)
_OBSERVATIONS = st.lists(
    st.tuples(
        _DIGESTS,
        st.integers(min_value=0, max_value=50),
        _SECONDS,
        st.one_of(
            st.none(),
            st.tuples(
                st.integers(min_value=1, max_value=4096),
                st.integers(min_value=0, max_value=1024),
                st.integers(min_value=0, max_value=64),
                st.integers(min_value=0, max_value=64),
            ),
        ),
    ),
    max_size=20,
)


def _model_from(observations):
    from repro.parallel.shard import SchedulerCostModel

    model = SchedulerCostModel()
    for digest, paths, elapsed, features in observations:
        model.observe_task(digest, paths=paths, elapsed=elapsed, features=features)
    return model


@given(observations=_OBSERVATIONS)
@settings(max_examples=100, deadline=None)
def test_costmodel_state_json_round_trip_is_lossless(observations):
    """encode -> decode -> adopt-into-cold reproduces every estimate, and a
    second adoption is a no-op (the idempotence the store merge relies on)."""
    from repro.parallel.shard import SchedulerCostModel

    model = _model_from(observations)
    state = json.loads(json.dumps(model.export_state()))
    fresh = SchedulerCostModel()
    fresh.adopt_state(state)
    assert fresh.export_state()["digest_seconds"] == state["digest_seconds"]
    assert fresh.export_state()["digest_paths"] == state["digest_paths"]
    assert fresh.export_state()["feature_buckets"] == state["feature_buckets"]
    once = fresh.export_state()
    assert fresh.adopt_state(state) == 0
    assert fresh.export_state() == once


@given(observations=_OBSERVATIONS)
@settings(max_examples=25, deadline=None)
def test_costmodel_state_survives_store_dump_load(observations):
    """Any learned state written as a format-4 costmodel entry loads back
    with every digest estimate intact."""
    import tempfile

    from repro.parallel.shard import SchedulerCostModel

    model = _model_from(observations)
    with tempfile.TemporaryDirectory() as scratch:
        store = PersistentSummaryStore(os.path.join(scratch, "store.json"))
        store.dump(SummaryCache(), cost_model=model)
        assert store.costmodel_state_count() == 1
        loaded = SchedulerCostModel()
        adopted = store.load_cost_model_into(loaded)
    exported = model.export_state()
    assert adopted == len(exported["digest_seconds"])
    assert loaded.export_state()["digest_seconds"] == exported["digest_seconds"]
    assert loaded.export_state()["run_seconds"] == exported["run_seconds"]
