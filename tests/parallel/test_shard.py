"""Sharded frontier execution: collector behaviour and parallel ≡ serial."""

import pytest

from repro.artifacts import asw_artifact, wbs_artifact
from repro.artifacts.simple import update_base_program, update_modified_program
from repro.core.dise import DiSE
from repro.parallel.shard import (
    FrontierCollector,
    ShardConfig,
    prewarm_full,
    run_shard,
)
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.strategy import ExploreEverything
from repro.symexec.summary_cache import SummaryCache


def _pcs(summary):
    return sorted(str(c) for c in summary.distinct_path_conditions())


def _record_keys(summary):
    return [
        (str(r.path_condition), tuple(map(str, r.final_environment)), r.is_error)
        for r in summary.records
    ]


class TestFrontierCollector:
    def test_collects_tasks_and_skips_their_subtrees(self):
        program = update_modified_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
        )
        result = collector.run()
        assert collector.tasks, "expected deferred frontier tasks"
        serial = symbolic_execute(program, procedure_name="update")
        # Deferral means the collector completed fewer paths than a full run.
        assert len(result.summary) < len(serial.summary)
        cfg_node_ids = {node.node_id for node in collector.cfg.nodes}
        for task in collector.tasks:
            assert task.key[0] == "suffix"
            assert task.payload["root"] in cfg_node_ids
            assert task.payload["strategy"] == {"kind": "everything"}

    def test_aborted_recordings_never_store_partial_summaries(self):
        program = update_modified_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
        )
        collector.run()
        assert collector.tasks
        # Recordings truncated by a deferral were aborted, so whatever the
        # collector *did* store must be complete: a run over that cache has
        # to reproduce a cold serial run exactly (deferred subtrees simply
        # miss and are explored natively).
        serial = symbolic_execute(program, procedure_name="update")
        warm = symbolic_execute(program, procedure_name="update", summary_cache=cache)
        assert _record_keys(warm.summary) == _record_keys(serial.summary)

    def test_no_tasks_when_nothing_clears_the_fence(self):
        from repro.parallel.shard import SchedulerCostModel

        # A deep cold prior keeps unknown digests inline, and an enormous
        # measured fence keeps every size-hinted digest (the collector's
        # own sibling recordings create hints mid-pass) inline too.
        program = update_base_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=50, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
            cost_model=SchedulerCostModel(fence_seconds=1e9),
        )
        result = collector.run()
        assert collector.tasks == []
        # Nothing deferred -> the collector *is* a full serial run and its
        # recordings are complete and stored.
        assert _pcs(result.summary) == _pcs(
            symbolic_execute(program, procedure_name="update").summary
        )
        assert len(cache) > 0

    def test_max_shards_cap_is_respected(self):
        program = update_modified_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=1, max_shards=1, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
        )
        collector.run()
        assert len(collector.tasks) == 1


class TestWorkerAssumptions:
    def test_pretty_parse_round_trip_preserves_cfg_node_ids(self):
        """Workers rebuild the CFG from pretty-printed source; every shipped
        node id is only meaningful if that reparse assigns identical ids."""
        from repro.cfg.builder import build_cfg
        from repro.lang.parser import parse_program
        from repro.lang.pretty import pretty_program
        from repro.artifacts import all_artifacts

        for artifact in all_artifacts():
            for _, _, _, source in artifact.history():
                original = parse_program(source)
                reparsed = parse_program(pretty_program(original))
                cfg_a = build_cfg(original.procedure(artifact.procedure_name))
                cfg_b = build_cfg(reparsed.procedure(artifact.procedure_name))
                nodes_a = sorted(
                    (n.node_id, n.structural_key()) for n in cfg_a.nodes
                )
                nodes_b = sorted(
                    (n.node_id, n.structural_key()) for n in cfg_b.nodes
                )
                assert nodes_a == nodes_b


class TestWorker:
    def test_run_shard_round_trips_subtree(self):
        from repro.lang.pretty import pretty_program

        program = update_modified_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
        )
        collector.run()
        assert collector.tasks
        task = collector.tasks[0]
        payload = dict(task.payload)
        payload["source"] = pretty_program(program)
        payload["procedure"] = "update"
        payload["solver"] = {
            "bound": collector.solver.bound,
            "max_branch_steps": collector.solver.max_branch_steps,
        }
        result = run_shard(payload)
        assert result["paths"] > 0
        assert result["entries"], "worker must export its summary cache"

    def test_worker_entries_make_serial_run_replay(self):
        program = update_modified_program()
        cache = SummaryCache()
        cfg = SymbolicExecutor(program, procedure_name="update").cfg
        report = prewarm_full(
            program,
            procedure_name="update",
            cfg=cfg,
            summary_cache=cache,
            workers=2,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
        )
        assert report.shards > 0
        assert report.merged_entries > 0
        warm = symbolic_execute(program, procedure_name="update", summary_cache=cache)
        serial = symbolic_execute(program, procedure_name="update")
        assert warm.statistics.replayed_paths > 0
        assert _record_keys(warm.summary) == _record_keys(serial.summary)


class TestPoolFailureFallback:
    def test_worker_failure_degrades_to_serial_not_crash(self):
        """A broken pool must salvage the phase inline, never raise.

        The planted pool cannot even accept a task, so the whole phase
        breaks at submission: every task lands in quarantine and is
        re-executed inline, the failures are recorded in the report (not
        silently swallowed), and the output is still identical to serial.
        """
        import repro.parallel.shard as shard_module

        class _BrokenAsyncResult:
            def get(self, timeout=None):
                raise RuntimeError("worker exploded")

        class _BrokenPool:
            def map_async(self, *args, **kwargs):
                return _BrokenAsyncResult()

            def terminate(self):
                pass

            def join(self):
                pass

        previous = shard_module._POOLS.pop(2, None)
        shard_module._POOLS[2] = _BrokenPool()
        try:
            program = update_modified_program()
            serial = symbolic_execute(program, procedure_name="update")
            with pytest.warns(RuntimeWarning, match="parallel prewarm degraded"):
                result = symbolic_execute(
                    program,
                    procedure_name="update",
                    workers=2,
                    parallel_config=ShardConfig(cold_split_depth=1, min_shards=1),
                )
            report = result.parallel
            assert report is not None and report.shards > 0
            # Submission failures are recorded, never discarded silently.
            assert report.failure_reasons
            assert any("AttributeError" in reason for reason in report.failure_reasons)
            # Every task was quarantined and salvaged inline...
            assert report.quarantined_shards == report.shards
            assert report.failed_shards == 0
            assert report.merged_entries > 0
            assert report.salvaged_entries == report.merged_entries
            # ...the broken pool was discarded, and the output is intact.
            assert 2 not in shard_module._POOLS
            assert _record_keys(result.summary) == _record_keys(serial.summary)
        finally:
            shard_module._POOLS.pop(2, None)
            if previous is not None:
                shard_module._POOLS[2] = previous


class TestParallelEqualsSerial:
    def test_full_execution_identical_records(self):
        program = update_modified_program()
        serial = symbolic_execute(program, procedure_name="update")
        parallel = symbolic_execute(
            program,
            procedure_name="update",
            workers=2,
            parallel_config=ShardConfig(cold_split_depth=1, min_shards=1),
        )
        assert parallel.parallel is not None and parallel.parallel.shards > 0
        assert _record_keys(parallel.summary) == _record_keys(serial.summary)

    @pytest.mark.parametrize("version", ["v1", "v2", "v5"])
    def test_dise_identical_distinct_pcs_asw(self, version):
        artifact = asw_artifact()
        base = artifact.base_program()
        modified = artifact.version_program(version)
        serial = DiSE(base, modified, procedure_name=artifact.procedure_name).run()
        parallel = DiSE(
            base, modified, procedure_name=artifact.procedure_name, workers=2
        ).run()
        assert _pcs(parallel.execution.summary) == _pcs(serial.execution.summary)

    def test_dise_identical_with_shared_history_cache(self):
        artifact = wbs_artifact()
        base = artifact.base_program()
        cache_serial = SummaryCache()
        cache_parallel = SummaryCache()
        for version in artifact.version_names()[:3]:
            modified = artifact.version_program(version)
            serial = DiSE(
                base,
                modified,
                procedure_name=artifact.procedure_name,
                summary_cache=cache_serial,
            ).run()
            parallel = DiSE(
                base,
                modified,
                procedure_name=artifact.procedure_name,
                summary_cache=cache_parallel,
                workers=2,
            ).run()
            assert _pcs(parallel.execution.summary) == _pcs(serial.execution.summary)

    def test_record_trace_falls_back_to_serial(self):
        artifact = asw_artifact()
        base = artifact.base_program()
        modified = artifact.version_program("v1")
        result = DiSE(
            base,
            modified,
            procedure_name=artifact.procedure_name,
            workers=2,
            record_trace=True,
        ).run()
        assert result.parallel is None
        assert result.strategy.trace_rows

    def test_workers_one_is_plain_serial(self):
        program = update_base_program()
        result = symbolic_execute(program, procedure_name="update", workers=1)
        assert result.parallel is None

    def test_workers_inherit_nondefault_solver_bound(self):
        """Constraints beyond the default ±2^16 box are only feasible under
        the caller's wider bound; workers must decide them identically."""
        from repro.lang.parser import parse_program
        from repro.solver.core import ConstraintSolver

        program = parse_program(
            """
            global int r = 0;
            proc big(int a, int b, int c) {
                if (a > 0) { r = 1; } else { r = 2; }
                if (b > 100000) { r = r + 3; } else { r = r + 4; }
                if (c > 500000) { r = r + 5; } else { r = r + 6; }
            }
            """
        )
        bound = 1 << 20
        serial = symbolic_execute(
            program, procedure_name="big", solver=ConstraintSolver(bound=bound)
        )
        # The wide bound makes both large-constant branches feasible; a
        # worker on the default bound would prune them.
        assert any("(c > 500000)" in str(c) for c in serial.path_conditions)
        parallel = symbolic_execute(
            program,
            procedure_name="big",
            solver=ConstraintSolver(bound=bound),
            workers=2,
            parallel_config=ShardConfig(cold_split_depth=1, min_shards=1),
        )
        assert parallel.parallel is not None and parallel.parallel.shards > 0
        assert parallel.statistics.replayed_paths > 0
        assert _record_keys(parallel.summary) == _record_keys(serial.summary)


class TestFailureTriage:
    """Worker faults degrade; scheduler bugs raise (never hide in salvage)."""

    def test_is_scheduler_bug_classification(self):
        from repro import faults
        from repro.parallel.serialize import SerializationError
        from repro.parallel.shard import _is_scheduler_bug

        assert _is_scheduler_bug(KeyError("solver"))
        assert _is_scheduler_bug(TypeError("bad payload"))
        assert _is_scheduler_bug(AttributeError("missing"))
        assert _is_scheduler_bug(IndexError("oops"))
        assert _is_scheduler_bug(ValueError("unknown strategy kind"))
        # Injected faults and fence corruption are worker faults.
        assert not _is_scheduler_bug(faults.WorkerCrashFault("injected"))
        assert not _is_scheduler_bug(SerializationError("mangled envelope"))
        assert not _is_scheduler_bug(RuntimeError("pool lost a process"))

    def test_corrupt_payload_reraises_and_records(self):
        """A payload the scheduler built wrong (missing its solver spec)
        raises KeyError inside the worker; the dispatcher must record it in
        failure_reasons AND re-raise instead of quarantining the shard."""
        from repro.lang.pretty import pretty_program
        from repro.parallel.shard import ParallelReport, _dispatch_tasks

        program = update_modified_program()
        cache = SummaryCache()
        collector = FrontierCollector(
            program,
            procedure_name="update",
            summary_cache=cache,
            config=ShardConfig(cold_split_depth=1, min_shards=1),
            strategy_payload=lambda state: {"kind": "everything"},
            strategy=ExploreEverything(),
        )
        collector.run()
        assert collector.tasks
        payload = dict(collector.tasks[0].payload)
        payload["source"] = pretty_program(program)
        payload["procedure"] = "update"
        # The scheduler bug: no solver spec shipped.
        report = ParallelReport(workers=2)
        with pytest.raises(KeyError):
            _dispatch_tasks([payload], 2, ShardConfig(), report)
        assert report.failure_reasons
        assert any("KeyError" in reason for reason in report.failure_reasons)


class TestDeterministicDispatch:
    def test_equal_estimates_order_by_digest_then_capture(self):
        from repro.parallel.shard import (
            FrontierTask,
            SchedulerCostModel,
            _dispatch_order,
        )

        tasks = [
            FrontierTask(key=("suffix", digest, (), (), None), payload={})
            for digest in ["bbb", "aaa", "ccc", "aaa"]
        ]
        ordered = _dispatch_order(tasks, SchedulerCostModel(), SummaryCache())
        # All estimates unknown (= equally unbounded): digest ascending,
        # duplicate digests in capture order.
        assert [t.key[1] for t in ordered] == ["aaa", "aaa", "bbb", "ccc"]
        assert ordered[0] is tasks[1] and ordered[1] is tasks[3]

    def test_known_estimates_lead_with_largest(self):
        from repro.parallel.shard import (
            FrontierTask,
            SchedulerCostModel,
            _dispatch_order,
        )

        model = SchedulerCostModel()
        model.observe_task("cheap", paths=1, elapsed=0.001)
        model.observe_task("dear", paths=1, elapsed=5.0)
        tasks = [
            FrontierTask(key=("suffix", "cheap", (), (), None), payload={}),
            FrontierTask(key=("suffix", "dear", (), (), None), payload={}),
            FrontierTask(key=("suffix", "unknown", (), (), None), payload={}),
        ]
        ordered = _dispatch_order(tasks, model, SummaryCache())
        # Cold digests count as unbounded and lead; then largest estimate.
        assert [t.key[1] for t in ordered] == ["unknown", "dear", "cheap"]

    def test_parallel_report_counters_reproducible(self):
        from repro.parallel.shard import reset_scheduler_cost_model

        program = update_modified_program()
        reports = []
        for _ in range(2):
            reset_scheduler_cost_model()
            result = symbolic_execute(
                program,
                procedure_name="update",
                workers=2,
                parallel_config=ShardConfig(cold_split_depth=1, min_shards=1),
            )
            reports.append(result.parallel.as_dict())
        timing = ("collect_seconds", "pool_seconds", "merge_seconds", "worker_elapsed_total")
        for key in timing:
            for report in reports:
                report.pop(key)
        assert reports[0] == reports[1]


class TestCostModelState:
    """export_state / adopt_state: the persistence half of the scheduler."""

    def _taught(self):
        from repro.parallel.shard import SchedulerCostModel

        model = SchedulerCostModel()
        model.observe_task("d-steady", paths=10, elapsed=0.5, features=(40, 10, 2, 6))
        model.observe_task("d-steady", paths=10, elapsed=0.7, features=(40, 10, 2, 6))
        model.observe_task("d-small", paths=2, elapsed=0.004)
        model.observe_run("full:p", 1.2, shards=3)
        # worker_elapsed=0 makes per_task exactly (pool+merge)/shards = 0.1,
        # so the persisted fence histogram's median is a known value.
        for _ in range(3):
            model.observe_round(
                shards=2, pool_seconds=0.2, merge_seconds=0.0,
                worker_elapsed=0.0, workers=1,
            )
        return model

    def test_export_is_pure_json_and_adopt_round_trips(self):
        import json as _json

        from repro.parallel.shard import SchedulerCostModel

        model = self._taught()
        state = _json.loads(_json.dumps(model.export_state()))
        fresh = SchedulerCostModel()
        adopted = fresh.adopt_state(state)
        assert adopted == 2
        for digest in ("d-steady", "d-small"):
            assert fresh.estimate_seconds(digest) == pytest.approx(
                model.estimate_seconds(digest)
            )
        assert fresh.spread_seconds("d-steady") == pytest.approx(
            model.spread_seconds("d-steady")
        )
        assert fresh.run_estimate("full:p") == pytest.approx(1.2)
        assert fresh.seconds_per_path == pytest.approx(model.seconds_per_path)
        assert fresh.observed_tasks == model.observed_tasks
        assert fresh.observed_rounds == model.observed_rounds

    def test_adopt_is_idempotent(self):
        from repro.parallel.shard import SchedulerCostModel

        state = self._taught().export_state()
        fresh = SchedulerCostModel()
        assert fresh.adopt_state(state) > 0
        once = fresh.export_state()
        assert fresh.adopt_state(state) == 0
        assert fresh.export_state() == once

    def test_fence_seeds_from_persisted_histogram_median(self):
        from repro.parallel.shard import SchedulerCostModel

        fresh = SchedulerCostModel()
        fresh.adopt_state(self._taught().export_state())
        # Every taught round measured exactly 0.1s/task, so the persisted
        # histogram is degenerate and the median -- hence the seeded fence
        # -- is exact, whatever the teacher's own EWMA had converged to.
        assert fresh.fence_seconds == pytest.approx(0.1)

    def test_local_observations_beat_adopted_state(self):
        from repro.parallel.shard import SchedulerCostModel

        state = self._taught().export_state()
        local = SchedulerCostModel()
        local.observe_task("d-steady", paths=1, elapsed=0.001)
        local.observe_round(
            shards=1, pool_seconds=0.5, merge_seconds=0.0,
            worker_elapsed=0.0, workers=1,
        )
        local_fence = local.fence_seconds
        assert local.adopt_state(state) == 1  # only d-small is new
        assert local.estimate_seconds("d-steady") == pytest.approx(0.001)
        assert local.fence_seconds == pytest.approx(local_fence)

    def test_unknown_version_and_garbage_are_ignored(self):
        from repro.parallel.shard import SchedulerCostModel

        fresh = SchedulerCostModel()
        cold = fresh.export_state()
        assert fresh.adopt_state(None) == 0
        assert fresh.adopt_state("junk") == 0
        assert fresh.adopt_state({"version": 99, "digest_seconds": {"d": 1.0}}) == 0
        assert (
            fresh.adopt_state(
                {
                    "version": SchedulerCostModel.STATE_VERSION,
                    "digest_seconds": {"good": 0.25, "bad": "not-a-number"},
                    "digest_paths": {"good": "nope"},
                    "feature_buckets": {"b": "scrambled"},
                    "fence_histogram": "torn",
                }
            )
            == 1
        )
        assert fresh.estimate_seconds("good") == pytest.approx(0.25)
        assert fresh.fence_seconds == cold["fence_seconds"]


class TestFeatureEstimates:
    def test_unseen_digest_estimated_from_structurally_similar_region(self):
        from repro.parallel.shard import SchedulerCostModel

        model = SchedulerCostModel()
        model.observe_task("seen", paths=0, elapsed=0.4, features=(40, 10, 2, 6))
        # Same log2 size / branch density / call count / depth bucket:
        assert model.estimate_seconds(
            "never-seen", None, (41, 10, 2, 7)
        ) == pytest.approx(0.4)
        # Ten times the nodes is a different bucket -- no estimate.
        assert model.estimate_seconds("never-seen", None, (400, 10, 2, 6)) is None
        # And without features the digest is simply cold.
        assert model.estimate_seconds("never-seen") is None

    def test_degenerate_features_never_bucket(self):
        from repro.parallel.shard import SchedulerCostModel

        model = SchedulerCostModel()
        assert model.feature_bucket(None) is None
        assert model.feature_bucket(()) is None
        assert model.feature_bucket((0, 0, 0, 0)) is None
        assert model.feature_bucket((1, 2)) is None
        assert model.feature_bucket(("x", 1, 1, 1)) is None

    def test_bucket_mean_accumulates(self):
        from repro.parallel.shard import SchedulerCostModel

        model = SchedulerCostModel()
        features = (16, 4, 0, 5)
        model.observe_task("a", paths=0, elapsed=0.2, features=features)
        model.observe_task("b", paths=0, elapsed=0.4, features=features)
        assert model.feature_estimate(features) == pytest.approx(0.3)


class TestVarianceAwareShipping:
    def test_jittery_estimate_straddling_fence_stays_inline(self):
        from repro.parallel.shard import SchedulerCostModel

        config = ShardConfig()
        steady = SchedulerCostModel()
        for _ in range(3):
            steady.observe_task("d", paths=0, elapsed=0.05)
        assert steady.should_ship("d", depth=9, size_hint=None, config=config)

        jittery = SchedulerCostModel()
        jittery.observe_task("d", paths=0, elapsed=0.001)
        jittery.observe_task("d", paths=0, elapsed=0.02)
        # Mean estimate (~8.6ms) clears the fence (4.5ms), but the spread
        # (~19ms) straddles it: the conservative call is to inline.
        assert jittery.estimate_seconds("d") > jittery.fence_seconds * config.cost_margin
        assert not jittery.should_ship("d", depth=9, size_hint=None, config=config)


class TestRunGateHysteresis:
    """The run-level gate is sticky: inline-proven procedures stay inline."""

    def test_gated_procedure_ignores_threshold_drift(self):
        from repro.parallel.shard import SchedulerCostModel

        config = ShardConfig()
        model = SchedulerCostModel()
        # 8ms run vs a 0.003 * 1.5 * 6 = 27ms round threshold: gates off.
        model.observe_run("full:p", 0.008, shards=6)
        assert not model.should_speculate("full:p", config)
        # Timer drift: the fence EWMA decays and gated (inline) runs nudge
        # the run EWMA up.  The bare threshold (0.0006 * 1.5 * 6 = 5.4ms)
        # is now far below the 16ms run cost -- without hysteresis this
        # re-arms a speculation the gate just proved useless.
        model.fence_seconds = 0.0006
        model.observe_run("full:p", 0.02, shards=0)
        assert not model.should_speculate("full:p", config)

    def test_gate_rearms_when_the_workload_grows(self):
        from repro.parallel.shard import SchedulerCostModel

        config = ShardConfig()
        model = SchedulerCostModel()
        model.observe_run("full:p", 0.008, shards=6)
        assert not model.should_speculate("full:p", config)
        # A genuinely grown workload clears threshold * REARM_MARGIN
        # (27ms * 4): speculation re-opens, and the procedure can gate
        # again from scratch later.
        model.observe_run("full:p", 0.5, shards=0)
        model.observe_run("full:p", 0.5, shards=0)
        assert model.should_speculate("full:p", config)
        for _ in range(8):
            model.observe_run("full:p", 0.001, shards=0)
        assert not model.should_speculate("full:p", config)

    def test_gated_set_persists_across_export_adopt(self):
        from repro.parallel.shard import SchedulerCostModel

        config = ShardConfig()
        model = SchedulerCostModel()
        model.observe_run("full:p", 0.008, shards=6)
        assert not model.should_speculate("full:p", config)
        state = model.export_state()
        assert state["run_gated"] == ["full:p"]

        fresh = SchedulerCostModel()
        fresh.adopt_state(state)
        # The fresh process inherits both the run EWMAs and the inline
        # verdict: it never pays the flap's losing round to re-learn it.
        assert not fresh.should_speculate("full:p", config)


class TestWarmStartMisestimates:
    def test_adopted_model_cuts_first_wave_misestimates(self):
        from repro.parallel.shard import reset_scheduler_cost_model, scheduler_cost_model

        artifact = asw_artifact()
        program = artifact.base_program()

        reset_scheduler_cost_model()
        cold = symbolic_execute(
            program,
            procedure_name=artifact.procedure_name,
            summary_cache=SummaryCache(),
            workers=2,
        )
        assert cold.parallel is not None
        # Every first-wave dispatch of a cold model is blind (the depth
        # prior decided, not an estimate): all of them count.  Later waves
        # ship with warmer estimates and are out of scope for the counter.
        assert 0 < cold.parallel.first_wave_misestimates <= cold.parallel.shards

        state = scheduler_cost_model().export_state()
        warm_model = reset_scheduler_cost_model()
        assert warm_model.adopt_state(state) > 0
        warm = symbolic_execute(
            program,
            procedure_name=artifact.procedure_name,
            summary_cache=SummaryCache(),
            workers=2,
        )
        assert warm.parallel is not None
        assert (
            warm.parallel.first_wave_misestimates
            < cold.parallel.first_wave_misestimates
        )
        assert _pcs(warm.summary) == _pcs(cold.summary)
