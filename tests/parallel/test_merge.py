"""Deterministic merging: shard-order independence, dict-union caches."""

import itertools

from repro.artifacts.simple import update_base_program, update_modified_program

# Aliased so pytest does not try to collect the production classes.
from repro.evolution.testgen import TestCase as GeneratedCase
from repro.evolution.testgen import TestSuite as GeneratedSuite
from repro.evolution.testgen import generate_tests
from repro.parallel.merge import (
    merge_caches,
    merge_encoded_entries,
    merge_method_summaries,
    merge_statistics,
    merge_test_suites,
)
from repro.parallel.serialize import encode_cache_entries
from repro.symexec.engine import ExecutionStatistics, symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _shard_summaries():
    """Two disjoint 'shard' summaries from two different programs."""
    a = symbolic_execute(update_base_program(), procedure_name="update").summary
    b = symbolic_execute(update_modified_program(), procedure_name="update").summary
    return a, b


def test_merge_method_summaries_is_shard_order_deterministic():
    a, b = _shard_summaries()
    merged = merge_method_summaries("update", [a, b])
    assert len(merged) == len(a) + len(b)
    # Same shard order -> identical record sequence, every time.
    again = merge_method_summaries("update", [a, b])
    assert [str(r.path_condition) for r in merged] == [
        str(r.path_condition) for r in again
    ]
    # The distinct set is independent of shard order even though the
    # sequence is not (distinctness is content-keyed).
    flipped = merge_method_summaries("update", [b, a])
    assert sorted(str(c) for c in merged.distinct_path_conditions()) == sorted(
        str(c) for c in flipped.distinct_path_conditions()
    )


def test_merge_test_suites_dedups_and_keeps_shard_order():
    a, b = _shard_summaries()
    suite_a = generate_tests(a, update_base_program().procedure("update"))
    suite_b = generate_tests(b, update_modified_program().procedure("update"))
    merged = merge_test_suites("update", [suite_a, suite_b])
    assert len(merged) == len(set(suite_a.cases) | set(suite_b.cases))
    duplicate = GeneratedSuite("update", cases=list(suite_a.cases))
    assert len(merge_test_suites("update", [suite_a, duplicate])) == len(suite_a)
    assert all(isinstance(case, GeneratedCase) for case in merged)


def test_merge_statistics_sums_counters_and_maxes_wall_clock():
    a = ExecutionStatistics(states_explored=10, solver_queries=4, elapsed_seconds=0.5)
    b = ExecutionStatistics(states_explored=7, solver_queries=1, elapsed_seconds=2.0)
    merged = merge_statistics([a, b])
    assert merged.states_explored == 17
    assert merged.solver_queries == 5
    assert merged.elapsed_seconds == 2.0


def test_merge_caches_is_dict_union_first_in_wins():
    base_cache = SummaryCache()
    symbolic_execute(update_base_program(), procedure_name="update", summary_cache=base_cache)
    mod_cache = SummaryCache()
    symbolic_execute(update_modified_program(), procedure_name="update", summary_cache=mod_cache)

    keys_base = {key for key, _, _ in base_cache.iter_entries()}
    keys_mod = {key for key, _, _ in mod_cache.iter_entries()}

    target = SummaryCache()
    adopted = merge_caches(target, base_cache, mod_cache)
    assert {key for key, _, _ in target.iter_entries()} == keys_base | keys_mod
    assert adopted == len(keys_base | keys_mod)

    # Merging again in any source order adds nothing and changes nothing.
    for ordering in itertools.permutations([base_cache, mod_cache]):
        assert merge_caches(target, *ordering) == 0


def test_merge_encoded_entries_round_trips_and_skips_garbage():
    cache = SummaryCache()
    symbolic_execute(update_modified_program(), procedure_name="update", summary_cache=cache)
    encoded = encode_cache_entries(cache.iter_entries())
    assert encoded

    target = SummaryCache()
    adopted = merge_encoded_entries(target, encoded + [{"kind": "suffix"}, "junk"])
    assert adopted == len(encoded)
    assert target.statistics.adopted == adopted

    # Replaying through the merged cache matches a cold run exactly.
    warm = symbolic_execute(
        update_modified_program(), procedure_name="update", summary_cache=target
    )
    cold = symbolic_execute(update_modified_program(), procedure_name="update")
    assert warm.statistics.replayed_paths > 0
    assert [str(r.path_condition) for r in warm.summary.records] == [
        str(r.path_condition) for r in cold.summary.records
    ]
