"""Round-trip property tests for the structural (process-portable) codec."""

import json
import os
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.artifacts.simple import update_modified_program
from repro.parallel.serialize import (
    decode_cache_entry,
    decode_method_summary,
    decode_state,
    decode_term,
    decode_value,
    encode_cache_entries,
    encode_cache_entry,
    encode_method_summary,
    encode_state,
    encode_term,
    encode_value,
)
from repro.solver.terms import (
    clear_intern_table,
    intern_term,
    mk_binary,
    mk_bool,
    mk_int,
    mk_neg,
    mk_not,
    mk_symbol,
)
from repro.symexec.engine import SymbolicExecutor, symbolic_execute
from repro.symexec.summary_cache import SummaryCache


# -- term generator ------------------------------------------------------------

_LEAVES = st.one_of(
    st.integers(min_value=-50, max_value=50).map(mk_int),
    st.booleans().map(mk_bool),
    st.sampled_from(["x", "y", "z"]).map(mk_symbol),
    st.sampled_from(["p", "q"]).map(lambda name: mk_symbol(name, "bool")),
)


def _extend(children):
    int_ops = st.sampled_from(["+", "-", "*"])
    cmp_ops = st.sampled_from(["==", "!=", "<", "<=", ">", ">="])
    return st.one_of(
        st.tuples(int_ops, children, children).map(lambda t: mk_binary(t[0], t[1], t[2])),
        st.tuples(cmp_ops, children, children).map(lambda t: mk_binary(t[0], t[1], t[2])),
        children.map(mk_neg),
        children.map(mk_not),
    )


TERMS = st.recursive(_LEAVES, _extend, max_leaves=12)


@given(TERMS)
@settings(max_examples=200, deadline=None)
def test_term_round_trip_is_canonical(term):
    """decode(encode(t)) is structurally equal AND re-interned to canonical."""
    encoded = encode_term(term)
    # The wire format must be pure JSON data.
    decoded = decode_term(json.loads(json.dumps(encoded)))
    assert decoded == term
    # Decoding re-interns: the result *is* the canonical instance.
    assert decoded is intern_term(term)


@given(TERMS, TERMS)
@settings(max_examples=50, deadline=None)
def test_distinct_terms_encode_distinctly(left, right):
    if left != right:
        assert encode_term(left) != encode_term(right)
    else:
        assert encode_term(left) == encode_term(right)


def test_value_codec_round_trips_strategy_tokens():
    token = (
        frozenset({1, 5, 9}),
        frozenset(),
        frozenset({2}),
        frozenset({0, 3}),
        True,
        False,
        (True, False),
    )
    assert decode_value(json.loads(json.dumps(encode_value(token)))) == token


def test_value_codec_round_trips_nested_containers():
    value = {"a": [1, (2, 3)], "b": {frozenset({4}), 5}, "c": None, "d": mk_int(7)}
    round_tripped = decode_value(json.loads(json.dumps(encode_value(value))))
    assert round_tripped == value
    assert round_tripped["d"] is mk_int(7)


def test_state_round_trip(update_modified_cfg):
    program = update_modified_program()
    executor = SymbolicExecutor(program, procedure_name="update", cfg=update_modified_cfg)
    result = executor.run()
    assert result.summary.records, "expected completed paths"
    # Rebuild a state from a completed record's data and round-trip it.
    state = executor.initial_state()
    encoded = json.loads(json.dumps(encode_state(state)))
    decoded = decode_state(encoded, update_modified_cfg)
    assert decoded == state
    assert decoded.node is state.node


def _entries_for(program, procedure_name):
    cache = SummaryCache()
    symbolic_execute(program, procedure_name=procedure_name, summary_cache=cache)
    entries = encode_cache_entries(cache.iter_entries())
    assert entries, "expected at least one serializable cache entry"
    return entries


def test_cache_entry_round_trip_rebuilds_equal_keys():
    program = update_modified_program()
    for data in _entries_for(program, "update"):
        key1, summary1, pins1 = decode_cache_entry(data)
        # Encoding the decoded entry and decoding again is a fixed point.
        re_encoded = encode_cache_entry(key1, summary1, pins1)
        key2, summary2, _ = decode_cache_entry(json.loads(json.dumps(re_encoded)))
        assert key1 == key2
        assert summary1 == summary2


def test_summary_replay_bit_identical_after_cross_process_round_trip(tmp_path):
    """The acceptance property: a summary that crossed a *real* process
    fence replays exactly what the in-process original replays."""
    program = update_modified_program()
    entries = _entries_for(program, "update")

    # Ship the entries through a separate Python process that decodes them
    # (re-interning in its own intern table) and re-encodes them.
    script = (
        "import json, sys\n"
        "from repro.parallel.serialize import decode_cache_entry, encode_cache_entry\n"
        "entries = json.load(sys.stdin)\n"
        "out = [encode_cache_entry(*decode_cache_entry(e)) for e in entries]\n"
        "json.dump(out, sys.stdout)\n"
    )
    src = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", script],
        input=json.dumps(entries),
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    shipped = json.loads(proc.stdout)
    assert len(shipped) == len(entries)

    def run_with(encoded_entries):
        # A fresh intern table simulates a fresh process lifetime: every id
        # the entries referred to is gone and must be rebuilt by decode.
        clear_intern_table()
        cache = SummaryCache()
        for data in encoded_entries:
            key, summary, pins = decode_cache_entry(data)
            cache.adopt(key, summary, pins=pins)
        result = symbolic_execute(program, procedure_name="update", summary_cache=cache)
        assert result.statistics.summary_cache_hits > 0, "warm cache must replay"
        return [
            (str(r.path_condition), tuple(map(str, r.final_environment)), r.trace, r.is_error)
            for r in result.summary.records
        ]

    in_process = run_with(entries)
    cross_process = run_with(shipped)
    native = [
        (str(r.path_condition), tuple(map(str, r.final_environment)), r.trace, r.is_error)
        for r in symbolic_execute(program, procedure_name="update").summary.records
    ]
    assert in_process == cross_process == native


def test_call_summary_entry_round_trip():
    """Generalised ("call"-kind) entries survive the codec structurally."""
    from repro.artifacts.interproc import asw_calls_artifact
    from repro.lang.parser import parse_program
    from repro.symexec.summary_cache import CallSummary

    artifact = asw_calls_artifact()
    program = parse_program(artifact.base_source)
    cache = SummaryCache()
    result = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=cache
    )
    assert result.statistics.generalized_call_stores > 0
    call_entries = [
        encode_cache_entry(key, summary, pins)
        for key, summary, pins in cache.iter_entries()
        if key[0] == "call"
    ]
    assert call_entries
    for data in call_entries:
        key1, summary1, pins1 = decode_cache_entry(data)
        assert isinstance(summary1, CallSummary)
        assert pins1 == ()
        re_encoded = encode_cache_entry(key1, summary1, pins1)
        key2, summary2, _ = decode_cache_entry(json.loads(json.dumps(re_encoded)))
        assert key1 == key2
        assert summary1 == summary2

    # A fresh intern table (fresh process lifetime): decoded entries must
    # replay at the call sites without re-recording anything.
    clear_intern_table()
    program = parse_program(artifact.base_source)
    warm_cache = SummaryCache()
    for data in call_entries:
        key, summary, pins = decode_cache_entry(data)
        assert warm_cache.adopt(key, summary, pins=pins)
    warm = symbolic_execute(
        program, procedure_name=artifact.procedure_name, summary_cache=warm_cache
    )
    assert warm.statistics.generalized_call_hits > 0
    assert warm.statistics.generalized_call_stores == 0
    cold = symbolic_execute(program, procedure_name=artifact.procedure_name)
    assert sorted(str(c) for c in warm.summary.distinct_path_conditions()) == sorted(
        str(c) for c in cold.summary.distinct_path_conditions()
    )
