"""Shared fixtures for the parallel test suite."""

import pytest

from repro.parallel.shard import reset_scheduler_cost_model


@pytest.fixture(autouse=True)
def _cold_cost_model():
    """Start every test with a cold scheduler cost model.

    The model is process-global by design (history sweeps want its
    estimates to carry across runs), but a test asserting shard counts or
    deferral decisions must not inherit estimates from whichever tests ran
    before it.
    """
    reset_scheduler_cost_model()
    yield
    reset_scheduler_cost_model()
