"""Tests for the memoized, persistent-context feasibility lookahead.

Covers the three failure/perf modes this PR attacked:

* the recursive walk's silent precision loss on deep CFGs (``RecursionError``
  used to be swallowed as "all targets reachable") -- the explicit-stack walk
  must answer exactly with zero bailouts on a CFG far deeper than the
  interpreter recursion limit;
* the per-query context rebuild -- one persistent context synced by longest
  common prefix, visible through ``prefix_syncs`` and the solver's
  ``prefix_reuses``;
* the re-walking of shared suffixes -- memo hits for repeated and
  sibling-equivalent probes, with memoized and unmemoized modes agreeing
  exactly.
"""

import sys

from repro.cfg.builder import build_cfg
from repro.cfg.ir import NodeKind
from repro.core.dise import run_dise
from repro.core.lookahead import FeasibleReachability
from repro.solver.core import ConstraintSolver
from repro.artifacts.simple import update_base_program, update_modified_program
from repro.lang.parser import parse_program
from repro.symexec.engine import SymbolicExecutor


def _deep_chain_program(depth: int):
    """``depth`` sequential concrete ifs, then a feasibly unreachable write."""
    lines = ["proc deep(int u) {", "    x = 0;", "    y = 0;"]
    for _ in range(depth):
        lines.append("    x = x + 1;")
        lines.append("    if (x < 100000) { y = y + 1; }")
    lines.append("    if (x == -1) { z = 1; }")
    lines.append("}")
    return parse_program("\n".join(lines))


class TestDeepChainRegression:
    def test_walk_is_exact_beyond_the_recursion_limit(self):
        depth = 1200
        program = _deep_chain_program(depth)
        cfg = build_cfg(program.procedures[0])
        # The walk's path is ~3x the recursion limit: the old recursive
        # visit blew the interpreter stack here and silently answered
        # "all targets reachable".
        assert len(cfg.nodes) > 3 * sys.getrecursionlimit()
        unreachable_write = next(
            node
            for node in cfg.nodes
            if node.kind is NodeKind.ASSIGN and node.target == "z"
        )
        state = SymbolicExecutor(program, cfg=cfg).initial_state()
        lookahead = FeasibleReachability(cfg, solver=ConstraintSolver(), budget=100_000)
        result = lookahead.reachable_targets(state, {unreachable_write.node_id})
        # x is concretely `depth` at the final branch, so `x == -1` can never
        # hold: the write is statically reachable but feasibly unreachable.
        assert result == set()
        stats = lookahead.statistics.as_dict()
        assert stats["budget_bailouts"] == 0
        assert stats["loop_bailouts"] == 0
        assert stats["eval_bailouts"] == 0
        assert stats["solver_bailouts"] == 0

    def test_budget_exhaustion_is_counted_and_conservative(self):
        program = _deep_chain_program(50)
        cfg = build_cfg(program.procedures[0])
        target = next(
            node
            for node in cfg.nodes
            if node.kind is NodeKind.ASSIGN and node.target == "z"
        )
        state = SymbolicExecutor(program, cfg=cfg).initial_state()
        lookahead = FeasibleReachability(cfg, solver=ConstraintSolver(), budget=10)
        result = lookahead.reachable_targets(state, {target.node_id})
        # Budget ran out: conservative answer, and the degradation is counted.
        assert result == {target.node_id}
        assert lookahead.statistics.budget_bailouts == 1


class TestWalkMemoization:
    def _setup(self, memoize=True):
        program = update_modified_program()
        cfg = build_cfg(program.procedure("update"))
        executor = SymbolicExecutor(program, procedure_name="update", cfg=cfg)
        lookahead = FeasibleReachability(cfg, solver=executor.solver, memoize=memoize)
        return cfg, executor, lookahead

    def test_repeated_query_hits_the_memo(self):
        cfg, executor, lookahead = self._setup()
        state = executor.initial_state()
        branch_targets = {n.node_id for n in cfg.nodes if n.kind is NodeKind.BRANCH}
        first = lookahead.reachable_targets(state, branch_targets)
        queries_after_first = lookahead.statistics.solver_queries
        second = lookahead.reachable_targets(state, branch_targets)
        assert second == first
        assert lookahead.statistics.walk_memo_hits >= 1
        # The memo hit answered without touching the solver at all.
        assert lookahead.statistics.solver_queries == queries_after_first

    def test_unmemoized_mode_never_hits(self):
        cfg, executor, lookahead = self._setup(memoize=False)
        state = executor.initial_state()
        branch_targets = {n.node_id for n in cfg.nodes if n.kind is NodeKind.BRANCH}
        first = lookahead.reachable_targets(state, branch_targets)
        second = lookahead.reachable_targets(state, branch_targets)
        assert second == first
        assert lookahead.statistics.walk_memo_hits == 0

    def test_modes_agree_on_directed_run_path_conditions(self):
        memoized = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=ConstraintSolver(), lookahead_memoize=True,
        )
        unmemoized = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=ConstraintSolver(), lookahead_memoize=False,
        )
        assert sorted(map(str, memoized.execution.summary.distinct_path_conditions())) == sorted(
            map(str, unmemoized.execution.summary.distinct_path_conditions())
        )
        assert memoized.execution.statistics.lookahead_walk_memo_hits > 0
        assert unmemoized.execution.statistics.lookahead_walk_memo_hits == 0

    def test_persistent_context_reuses_prefixes_across_queries(self):
        solver = ConstraintSolver()
        result = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=solver,
        )
        statistics = result.execution.statistics
        assert statistics.lookahead_calls > 0
        # Each walked query syncs the shared context exactly once, and
        # whole-query memo hits skip the sync entirely (interior hits inside
        # a walk are also counted in walk_memo_hits, so syncs can undershoot
        # calls by more than the sync-skipping root hits).
        assert 0 < statistics.lookahead_prefix_syncs <= statistics.lookahead_calls
        assert statistics.lookahead_walk_memo_hits > 0


class TestAssignmentPoisoning:
    def test_undefined_pass_through_write_does_not_bail_the_walk(self):
        # `sink = ghost` reads an undefined variable, but nothing ever
        # branches on sink: the walk must stay exact instead of bailing out.
        program = parse_program(
            """
            proc p(int a) {
                if (a > 0) { b = 1; } else { b = 2; }
                sink = ghost;
                if (a > 5) { c = 1; }
            }
            """
        )
        cfg = build_cfg(program.procedures[0])
        target = next(
            node
            for node in cfg.nodes
            if node.kind is NodeKind.ASSIGN and node.target == "c"
        )
        state = SymbolicExecutor(program, cfg=cfg).initial_state()
        lookahead = FeasibleReachability(cfg, solver=ConstraintSolver())
        result = lookahead.reachable_targets(state, {target.node_id})
        assert result == {target.node_id}
        assert lookahead.statistics.eval_bailouts == 0

    def test_condition_on_poisoned_variable_still_bails(self):
        program = parse_program(
            """
            proc p(int a) {
                poisoned = ghost;
                if (poisoned > 0) { c = 1; }
            }
            """
        )
        cfg = build_cfg(program.procedures[0])
        target = next(
            node
            for node in cfg.nodes
            if node.kind is NodeKind.ASSIGN and node.target == "c"
        )
        state = SymbolicExecutor(program, cfg=cfg).initial_state()
        lookahead = FeasibleReachability(cfg, solver=ConstraintSolver())
        result = lookahead.reachable_targets(state, {target.node_id})
        # Conservative: the condition's value is unknowable.
        assert result == {target.node_id}
        assert lookahead.statistics.eval_bailouts == 1
