"""Entry-point selection must be honoured end-to-end (regression: the DiSE
pipeline and the engine used to silently analyse ``procedures[0]``)."""

import pytest

from repro.cfg.builder import build_cfg
from repro.core.dise import DiSE, run_dise
from repro.lang.parser import parse_program
from repro.symexec.engine import symbolic_execute

TWO_ENTRY_SOURCE = """
global int g = 0;

proc first(int a) {
    if (a > 0) { g = 1; }
}

proc second(int b, int c) {
    if (b > c) { g = 2; } else { g = 3; }
    if (c > 0) { g = g + 1; }
}
"""


class TestEntryPointSelection:
    def test_symbolic_execute_non_first_entry(self):
        program = parse_program(TWO_ENTRY_SOURCE)
        result = symbolic_execute(program, procedure_name="second")
        assert result.summary.procedure_name == "second"
        assert len(result.summary) == 4  # two independent branches

    def test_symbolic_execute_unknown_entry_raises(self):
        with pytest.raises(KeyError):
            symbolic_execute(parse_program(TWO_ENTRY_SOURCE), procedure_name="missing")

    def test_build_cfg_unknown_entry_raises(self):
        with pytest.raises(KeyError):
            build_cfg(parse_program(TWO_ENTRY_SOURCE), "missing")

    def test_dise_non_first_entry(self):
        base = parse_program(TWO_ENTRY_SOURCE)
        modified = parse_program(TWO_ENTRY_SOURCE.replace("b > c", "b >= c"))
        result = run_dise(base, modified, procedure="second")
        assert result.procedure_name == "second"
        # The edit is inside `second`: the analysis must see it.
        assert result.changed_node_count > 0
        assert len(result.path_conditions) > 0

    def test_dise_edit_in_other_procedure_not_misattributed(self):
        """Analysing `first` while `second` changed must report no changes."""
        base = parse_program(TWO_ENTRY_SOURCE)
        modified = parse_program(TWO_ENTRY_SOURCE.replace("b > c", "b >= c"))
        result = run_dise(base, modified, procedure="first")
        assert result.procedure_name == "first"
        assert result.changed_node_count == 0
        assert result.affected_node_count == 0

    def test_dise_unknown_entry_raises(self):
        base = parse_program(TWO_ENTRY_SOURCE)
        with pytest.raises(KeyError):
            DiSE(base, base, procedure_name="missing")

    def test_dise_default_is_first_procedure(self):
        base = parse_program(TWO_ENTRY_SOURCE)
        modified = parse_program(TWO_ENTRY_SOURCE.replace("a > 0", "a >= 0"))
        result = run_dise(base, modified)
        assert result.procedure_name == "first"
        assert result.changed_node_count > 0
