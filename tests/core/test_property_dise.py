"""Property-based tests for DiSE on randomly generated programs and mutations.

The central invariants checked here (Theorem 3.10 and the conservativeness
discussion in §5 of the paper, adapted to this implementation):

1. every path condition DiSE reports is a genuine path condition of full
   symbolic execution of the modified program (DiSE paths are real paths);
2. the projection of DiSE's path-condition set onto the *affected branch
   nodes* covers every affected-branch constraint sequence that full symbolic
   execution exhibits -- i.e. no affected behaviour is missed;
3. an identical program pair yields no affected path conditions.
"""

from hypothesis import given, settings, strategies as st

from repro.cfg.builder import build_cfg
from repro.core.dise import DiSE, run_dise
from repro.lang.parser import parse_program
from repro.symexec.engine import symbolic_execute

VARIABLES = ["a", "b", "c"]
COMPARISONS = ["==", "!=", "<", "<=", ">", ">="]


@st.composite
def random_programs(draw):
    """Small loop-free programs over three integer parameters and one global."""
    statements = []
    depth_budget = draw(st.integers(min_value=2, max_value=5))
    for _ in range(depth_budget):
        kind = draw(st.sampled_from(["assign", "if", "if-else", "nested"]))
        var = draw(st.sampled_from(VARIABLES + ["g"]))
        src = draw(st.sampled_from(VARIABLES))
        constant = draw(st.integers(min_value=-3, max_value=3))
        op = draw(st.sampled_from(COMPARISONS))
        cond_var = draw(st.sampled_from(VARIABLES + ["g"]))
        if kind == "assign":
            statements.append(f"{var} = {src} + {constant};")
        elif kind == "if":
            statements.append(f"if ({cond_var} {op} {constant}) {{ {var} = {constant}; }}")
        elif kind == "if-else":
            statements.append(
                f"if ({cond_var} {op} {constant}) {{ {var} = {src}; }} "
                f"else {{ {var} = {constant}; }}"
            )
        else:
            inner_op = draw(st.sampled_from(COMPARISONS))
            statements.append(
                f"if ({cond_var} {op} {constant}) {{ "
                f"if ({src} {inner_op} {constant}) {{ {var} = 1; }} else {{ {var} = 2; }} }}"
            )
    body = "\n    ".join(statements)
    return f"global int g = 0;\n\nproc f(int a, int b, int c) {{\n    {body}\n}}\n"


@st.composite
def mutated_pairs(draw):
    """A random program plus a single-edit mutant of it."""
    source = draw(random_programs())
    mutation = draw(st.sampled_from(["operator", "constant", "add"]))
    modified = source
    if mutation == "operator":
        for old, new in (("<=", "<"), (">=", ">"), ("==", "<="), ("!=", "==")):
            if old in modified:
                modified = modified.replace(old, new, 1)
                break
    elif mutation == "constant":
        for digit, replacement in (("1;", "3;"), ("2;", "4;"), ("0;", "5;")):
            if digit in modified:
                modified = modified.replace(digit, replacement, 1)
                break
    else:
        modified = modified.replace("{\n    ", "{\n    g = g + 1;\n    ", 1)
    return source, modified


def affected_branch_projection(result, path_conditions, cfg):
    """Project each path's trace onto affected branch nodes, paired with the PC text."""
    affected_branches = set(result.affected.acn)
    projections = set()
    for record in path_conditions:
        projected = tuple(node_id for node_id in record.trace if node_id in affected_branches)
        projections.add(projected)
    return projections


def is_subsequence(short, long):
    """True when ``short`` appears within ``long`` preserving order."""
    position = 0
    for item in long:
        if position < len(short) and item == short[position]:
            position += 1
    return position == len(short)


class TestDiSEAgainstFullExecution:
    @given(mutated_pairs())
    @settings(max_examples=40, deadline=None)
    def test_dise_path_conditions_are_real_paths(self, pair):
        base_source, mod_source = pair
        base = parse_program(base_source)
        modified = parse_program(mod_source)
        dise_result = run_dise(base, modified, procedure="f")
        full_result = symbolic_execute(modified, "f")
        full_set = {str(pc) for pc in full_result.path_conditions}
        for condition in dise_result.path_conditions:
            assert str(condition) in full_set

    @given(mutated_pairs())
    @settings(max_examples=40, deadline=None)
    def test_dise_never_explores_more_states_than_full(self, pair):
        base_source, mod_source = pair
        base = parse_program(base_source)
        modified = parse_program(mod_source)
        dise_result = run_dise(base, modified, procedure="f")
        full_result = symbolic_execute(modified, "f")
        assert dise_result.states_explored <= full_result.statistics.states_explored

    @given(mutated_pairs())
    @settings(max_examples=30, deadline=None)
    def test_affected_sequences_covered_with_completion_extension(self, pair):
        """Theorem 3.10-style coverage, checked with complete_covered_paths on."""
        base_source, mod_source = pair
        base = parse_program(base_source)
        modified = parse_program(mod_source)
        dise = DiSE(
            base, modified, procedure_name="f", complete_covered_paths=True
        )
        dise_result = dise.run()
        if dise_result.affected.is_empty():
            return
        full_result = symbolic_execute(modified, "f")
        cfg = build_cfg(modified, "f")
        full_projections = affected_branch_projection(
            dise_result, full_result.summary.records, cfg
        )
        dise_projections = affected_branch_projection(
            dise_result, dise_result.execution.summary.records, cfg
        )
        # Paths that touch no affected branch are unaffected behaviours; DiSE is
        # not required to report them.  Every affected-branch-node sequence that
        # full symbolic execution exhibits must be covered by some DiSE path, in
        # the subsequence sense of Theorem 3.10 (DiSE explores one path
        # *containing* that sequence of affected nodes).
        interesting = {projection for projection in full_projections if projection}
        for projection in interesting:
            assert any(
                is_subsequence(projection, covered) for covered in dise_projections
            ), f"affected sequence {projection} not covered by any DiSE path"

    @given(random_programs())
    @settings(max_examples=30, deadline=None)
    def test_identical_versions_yield_no_affected_paths(self, source):
        program = parse_program(source)
        result = run_dise(program, parse_program(source), procedure="f")
        assert result.affected_node_count == 0
        assert len(result.path_conditions) == 0
