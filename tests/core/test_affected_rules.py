"""Rule-level tests for the affected-location analysis on small programs."""

from repro.cfg.builder import build_cfg
from repro.core.affected import AffectedLocationAnalysis, compute_affected_sets
from repro.lang.parser import parse_program


def affected_for(source, seed_labels, forward_writes=True, apply_rule4=True):
    cfg = build_cfg(parse_program(source))
    seeds_cond, seeds_write = [], []
    for node in cfg.nodes:
        if node.label in seed_labels:
            (seeds_cond if node.is_branch else seeds_write).append(node)
    analysis = AffectedLocationAnalysis(cfg, apply_rule4=apply_rule4, forward_writes=forward_writes)
    return cfg, analysis.compute(seeds_cond, seeds_write)


def labels(cfg, ids):
    return {cfg.node(i).label for i in ids}


class TestRule1And2ControlDependence:
    SOURCE = (
        "proc f(int a, int b) {"
        "  if (a > 0) {"
        "    b = 1;"
        "    if (b > 0) { b = 2; }"
        "  }"
        "}"
    )

    def test_changed_conditional_pulls_in_dependents(self):
        cfg, sets = affected_for(self.SOURCE, {"(a > 0)"})
        assert "(b > 0)" in labels(cfg, sets.acn)
        assert {"b = 1", "b = 2"} <= labels(cfg, sets.awn)

    def test_nested_write_found_via_transitive_control_dependence(self):
        cfg, sets = affected_for(self.SOURCE, {"(a > 0)"})
        # b = 2 is control dependent on (b > 0) which is control dependent on (a > 0)
        assert "b = 2" in labels(cfg, sets.awn)


class TestRule3DataFlowToConditionals:
    SOURCE = (
        "proc f(int a, int c) {"
        "  int b = 0;"
        "  if (a > 0) { b = 1; }"
        "  if (b > 0) { c = 1; }"
        "  if (c > 0) { c = 2; }"
        "}"
    )

    def test_write_seeds_conditional_that_reads_it(self):
        cfg, sets = affected_for(self.SOURCE, {"b = 1"})
        assert "(b > 0)" in labels(cfg, sets.acn)

    def test_affectedness_does_not_flow_backwards(self):
        cfg, sets = affected_for(self.SOURCE, {"c = 1"})
        assert "(a > 0)" not in labels(cfg, sets.acn)
        assert "(b > 0)" not in labels(cfg, sets.acn)

    def test_transitive_conditional_chain(self):
        cfg, sets = affected_for(self.SOURCE, {"b = 1"})
        # (b > 0) affected -> c = 1 affected (rule 2) -> (c > 0) affected (rule 3)
        assert "(c > 0)" in labels(cfg, sets.acn)


class TestRule4ReachingDefinitions:
    SOURCE = (
        "proc f(int a, int b) {"
        "  b = a;"
        "  if (a > 0) { b = 1; }"
        "  if (b > 0) { a = 2; }"
        "}"
    )

    def test_definitions_feeding_affected_conditional_are_added(self):
        cfg, sets = affected_for(self.SOURCE, {"(b > 0)"})
        assert {"b = a", "b = 1"} <= labels(cfg, sets.awn)

    def test_rule4_can_be_disabled(self):
        cfg, sets = affected_for(self.SOURCE, {"(b > 0)"}, apply_rule4=False)
        assert "b = a" not in labels(cfg, sets.awn)


class TestForwardWriteClosure:
    SOURCE = (
        "proc f(int a, int c) {"
        "  int b = a;"
        "  int d = b;"
        "  if (d > 0) { c = 1; }"
        "}"
    )

    def test_extension_rule_propagates_through_write_chains(self):
        cfg, sets = affected_for(self.SOURCE, {"b = a"})
        assert "d = b" in labels(cfg, sets.awn)
        assert "(d > 0)" in labels(cfg, sets.acn)

    def test_strict_paper_rules_stop_at_first_write(self):
        cfg, sets = affected_for(self.SOURCE, {"b = a"}, forward_writes=False)
        assert "d = b" not in labels(cfg, sets.awn)
        assert "(d > 0)" not in labels(cfg, sets.acn)


class TestFixedPointBehaviour:
    def test_loops_do_not_prevent_termination(self):
        source = (
            "proc f(int n) {"
            "  int i = 0;"
            "  while (i < n) { i = i + 1; }"
            "  if (i > 0) { n = 0; }"
            "}"
        )
        cfg, sets = affected_for(source, {"i = 0"})
        assert "(i < n)" in labels(cfg, sets.acn)
        assert "(i > 0)" in labels(cfg, sets.acn)

    def test_seeds_are_retained_in_final_sets(self, update_modified_cfg):
        sets = compute_affected_sets(update_modified_cfg, seed_conditionals=[update_modified_cfg.node(0)])
        assert 0 in sets.acn

    def test_result_is_independent_of_seed_order(self, update_modified_cfg):
        n0 = update_modified_cfg.node(0)
        n12 = update_modified_cfg.node(12)
        first = compute_affected_sets(update_modified_cfg, seed_conditionals=[n0, n12])
        second = compute_affected_sets(update_modified_cfg, seed_conditionals=[n12, n0])
        assert first.names() == second.names()

    def test_describe_and_contains(self, update_modified_cfg):
        sets = compute_affected_sets(update_modified_cfg, seed_conditionals=[update_modified_cfg.node(0)])
        assert sets.contains(update_modified_cfg.node(0))
        assert "ACN" in sets.describe()
