"""Tests for the removed-instruction handling (Fig. 5(a))."""

from repro.core.dise import DiSE, run_dise
from repro.core.removed import compute_removed_node_effects
from repro.diff.diff_map import build_diff_map
from repro.lang.parser import parse_procedure, parse_program


def effects_for(base_source, mod_source):
    base = parse_procedure(base_source)
    modified = parse_procedure(mod_source)
    return compute_removed_node_effects(build_diff_map(base, modified))


class TestRemovedNodeEffects:
    def test_no_removals_means_no_effects(self, update_base_source, update_modified_source):
        effects = effects_for(update_base_source, update_modified_source)
        assert effects.is_empty()

    def test_removed_write_marks_surviving_conditional(self):
        effects = effects_for(
            "proc f(int a, int b) { b = 1; b = a; if (b > 0) { a = 0; } }",
            "proc f(int a, int b) { b = 1; if (b > 0) { a = 0; } }",
        )
        assert [n.label for n in effects.mod_conditionals] == ["(b > 0)"]

    def test_removed_node_itself_is_dropped_by_update_sets(self):
        effects = effects_for(
            "proc f(int a, int b) { b = a; if (b > 0) { a = 0; } }",
            "proc f(int a, int b) { if (b > 0) { a = 0; } }",
        )
        # The removed write maps to nothing; only surviving nodes appear.
        labels = {n.label for n in effects.mod_conditionals + effects.mod_writes}
        assert "b = a" not in labels

    def test_removed_conditional_affects_its_dependents_in_base(self):
        effects = effects_for(
            "proc f(int a, int b) { if (a > 0) { b = 1; } if (b > 0) { b = 2; } }",
            "proc f(int a, int b) { b = 1; if (b > 0) { b = 2; } }",
        )
        base_acn, base_awn = effects.base_affected.names()
        assert len(base_acn) >= 1
        # the surviving second conditional is affected in the modified CFG
        assert "(b > 0)" in {n.label for n in effects.mod_conditionals}


class TestEndToEndWithRemovals:
    def test_dise_detects_effect_of_removed_statement(self):
        base = parse_program(
            "global int out = 0;"
            "proc f(int a, int b) { b = b + 1; if (b > 0) { out = 1; } else { out = 2; } }"
        )
        modified = parse_program(
            "global int out = 0;"
            "proc f(int a, int b) { if (b > 0) { out = 1; } else { out = 2; } }"
        )
        result = run_dise(base, modified, procedure="f")
        assert result.changed_node_count == 1
        assert result.affected_node_count >= 1
        assert len(result.path_conditions) == 2

    def test_pure_removal_version_of_asw_artifact(self):
        from repro.artifacts import asw_artifact

        artifact = asw_artifact()
        base = artifact.base_program()
        modified = artifact.version_program("v9")  # removes the reset blocking statement
        dise = DiSE(base, modified, procedure_name=artifact.procedure_name)
        static = dise.compute_affected()
        assert len(static.diff_map.removed_base_nodes()) == 1
        assert not static.affected.is_empty()
