"""The affected-location computation on the paper's running example.

These tests reproduce §3.2's worked example and the Fig. 5(b) fixed-point
trace: for the change ``PedalPos == 0`` -> ``PedalPos <= 0`` the final sets
must be ACN = {n0, n2, n10, n12} and AWN = {n1, n3, n4, n5, n11, n13, n14}.
"""

import pytest

from repro.core.affected import AffectedLocationAnalysis
from repro.core.dise import DiSE


@pytest.fixture
def update_static(update_base, update_modified):
    return DiSE(update_base, update_modified, procedure_name="update").compute_affected()


@pytest.fixture
def update_static_strict(update_base, update_modified):
    dise = DiSE(
        update_base, update_modified, procedure_name="update", forward_writes=False
    )
    return dise.compute_affected()


class TestFinalSets:
    def test_acn_matches_paper(self, update_static):
        acn, _ = update_static.affected.names()
        assert acn == ("n0", "n2", "n10", "n12")

    def test_awn_matches_paper(self, update_static):
        _, awn = update_static.affected.names()
        assert awn == ("n1", "n3", "n4", "n5", "n11", "n13", "n14")

    def test_strict_paper_rules_give_identical_sets_here(
        self, update_static, update_static_strict
    ):
        # the example has no write-to-write chains, so the extension rule is a no-op
        assert update_static.affected.names() == update_static_strict.affected.names()

    def test_affected_count_is_eleven(self, update_static):
        assert update_static.affected.count() == 11

    def test_bswitch_chain_is_unaffected(self, update_static):
        unaffected = {6, 7, 8, 9}
        affected_ids = update_static.affected.acn | update_static.affected.awn
        assert unaffected.isdisjoint(affected_ids)


class TestFigure5bTrace:
    """The rule-application trace must follow the paper's Fig. 5(b) table."""

    def test_initial_row(self, update_static_strict):
        trace = update_static_strict.affected.trace
        assert trace[0].acn == ("n0",)
        assert trace[0].awn == ()
        assert trace[0].rule == ""

    def test_first_rule_applications_match_paper(self, update_static_strict):
        """The first applications follow the paper's demonstration (Fig. 5(b))."""
        trace = update_static_strict.affected.trace
        applications = [(row.source, row.target, row.rule) for row in trace[1:]]
        assert applications[:2] == [
            ("n0", "n2", "Eq. (1)"),
            ("n0", "n1", "Eq. (2)"),
        ]

    def test_rule_applications_match_paper_up_to_order(self, update_static_strict):
        """Fig. 5(b) up to application order: exactly the paper's ten rule
        applications occur (the fixed point is order-insensitive, and the
        paper's table shows one valid interleaving)."""
        trace = update_static_strict.affected.trace
        applications = {(row.source, row.target, row.rule) for row in trace[1:]}
        assert applications == {
            ("n0", "n2", "Eq. (1)"),
            ("n0", "n1", "Eq. (2)"),
            ("n2", "n3", "Eq. (2)"),
            ("n2", "n4", "Eq. (2)"),
            ("n1", "n10", "Eq. (3)"),
            ("n10", "n11", "Eq. (2)"),
            ("n1", "n12", "Eq. (3)"),
            ("n12", "n13", "Eq. (2)"),
            ("n12", "n14", "Eq. (2)"),
            ("n5", "n10", "Eq. (4)"),
        }
        assert len(trace) == 11  # initial row + ten applications

    def test_rule4_application_is_last_and_matches_paper(self, update_static_strict):
        last = update_static_strict.affected.trace[-1]
        assert (last.source, last.target, last.rule) == ("n5", "n10", "Eq. (4)")

    def test_final_trace_row_matches_final_sets(self, update_static_strict):
        final = update_static_strict.affected.trace[-1]
        acn, awn = update_static_strict.affected.names()
        assert final.acn == acn
        assert final.awn == awn

    def test_trace_sets_grow_monotonically(self, update_static_strict):
        trace = update_static_strict.affected.trace
        for previous, current in zip(trace, trace[1:]):
            assert set(previous.acn) <= set(current.acn)
            assert set(previous.awn) <= set(current.awn)


class TestNoChange:
    def test_identical_versions_have_empty_affected_sets(self, update_base):
        dise = DiSE(update_base, update_base, procedure_name="update")
        static = dise.compute_affected()
        assert static.affected.is_empty()
        assert static.affected.count() == 0


class TestSeedingDirect:
    def test_manual_seed_reproduces_pipeline_result(self, update_static, update_modified_cfg):
        analysis = AffectedLocationAnalysis(update_modified_cfg)
        sets = analysis.compute(seed_conditionals=[update_modified_cfg.node(0)])
        assert sets.names() == update_static.affected.names()

    def test_empty_seed_yields_empty_sets(self, update_modified_cfg):
        analysis = AffectedLocationAnalysis(update_modified_cfg)
        sets = analysis.compute()
        assert sets.is_empty()
        assert sets.trace[0].acn == ()
