"""Regression tests pinning the executor/lookahead statistics split.

The feasibility lookahead shares the executor's solver, which used to fold
its traffic into ``ExecutionStatistics.solver_queries``.  The split gives
the lookahead its own bucket (ROADMAP "Context internals"): the executor
counters measure only the engine's own branch checks, and the two buckets
together account exactly for the solver's raw deltas.
"""

from repro.artifacts import update_base_program, update_modified_program
from repro.core.dise import run_dise
from repro.core.directed import DirectedExplorationStrategy
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import symbolic_execute
from repro.symexec.strategy import ExploreEverything


class TestLookaheadStatisticsSplit:
    def test_directed_run_splits_executor_and_lookahead_queries(self):
        solver = ConstraintSolver()
        before = (
            solver.statistics.queries,
            solver.statistics.cache_hits,
            solver.statistics.incremental_hits,
            solver.statistics.prefix_reuses,
        )
        result = run_dise(
            update_base_program(), update_modified_program(), procedure="update",
            solver=solver,
        )
        statistics = result.execution.statistics
        total_queries = solver.statistics.queries - before[0]
        total_cache_hits = solver.statistics.cache_hits - before[1]
        total_incremental = solver.statistics.incremental_hits - before[2]
        total_prefix_reuses = solver.statistics.prefix_reuses - before[3]

        # The lookahead did real work on the update example ...
        assert statistics.lookahead_calls > 0
        assert statistics.lookahead_solver_queries + statistics.lookahead_incremental_hits > 0
        # ... and the two buckets partition the solver's raw deltas exactly.
        assert statistics.solver_queries + statistics.lookahead_solver_queries == total_queries
        assert (
            statistics.solver_cache_hits + statistics.lookahead_cache_hits == total_cache_hits
        )
        assert (
            statistics.incremental_hits + statistics.lookahead_incremental_hits
            == total_incremental
        )
        # The lookahead's persistent context reuses prefixes on the shared
        # solver too; that traffic is carved out the same way.
        assert (
            statistics.prefix_reuses + statistics.lookahead_prefix_reuses
            == total_prefix_reuses
        )
        # Executor counters never go negative (the historical failure mode
        # of subtracting a shared counter twice).
        assert statistics.solver_queries >= 0
        assert statistics.solver_cache_hits >= 0
        assert statistics.incremental_hits >= 0
        assert statistics.prefix_reuses >= 0

    def test_private_lookahead_solver_is_reported_but_not_subtracted(self):
        """Regression: a strategy built without a shared solver gives its
        lookahead a private solver; subtracting that bucket from the
        executor's deltas produced negative counters."""
        from repro.cfg.builder import build_cfg
        from repro.core.dise import DiSE
        from repro.symexec.engine import SymbolicExecutor

        pipeline = DiSE(update_base_program(), update_modified_program(), "update")
        static = pipeline.compute_affected()
        strategy = DirectedExplorationStrategy(static.cfg_mod, static.affected)
        executor = SymbolicExecutor(
            update_modified_program(), procedure_name="update",
            cfg=static.cfg_mod, strategy=strategy,
        )
        assert not strategy.lookahead_shares_solver(executor.solver)
        result = executor.run()
        statistics = result.statistics
        assert statistics.solver_queries >= 0
        assert statistics.solver_cache_hits >= 0
        assert statistics.incremental_hits >= 0
        # The private bucket still reports the lookahead's own work.
        assert statistics.lookahead_calls > 0

    def test_full_execution_has_no_lookahead_traffic(self):
        solver = ConstraintSolver()
        before = solver.statistics.queries
        result = symbolic_execute(update_modified_program(), "update", solver=solver)
        statistics = result.statistics
        assert statistics.lookahead_calls == 0
        assert statistics.lookahead_solver_queries == 0
        assert statistics.solver_queries == solver.statistics.queries - before

    def test_strategy_exposes_lookahead_bucket(self, update_modified_cfg=None):
        from repro.cfg.builder import build_cfg
        from repro.core.affected import AffectedSets

        cfg = build_cfg(update_modified_program().procedure("update"))
        with_lookahead = DirectedExplorationStrategy(cfg, AffectedSets(cfg))
        assert with_lookahead.lookahead_statistics() is not None
        without = DirectedExplorationStrategy(cfg, AffectedSets(cfg), feasibility_lookahead=False)
        assert without.lookahead_statistics() is None
        assert ExploreEverything().lookahead_statistics() is None

    def test_lookahead_bucket_snapshot_and_dict(self):
        from repro.core.lookahead import LookaheadStatistics

        bucket = LookaheadStatistics(
            calls=2, solver_queries=3, solver_cache_hits=1, walk_memo_hits=4, prefix_syncs=5
        )
        assert bucket.snapshot() == (2, 3, 1, 0, 0, 4, 5)
        assert bucket.as_dict()["solver_queries"] == 3
        assert bucket.as_dict()["walk_memo_hits"] == 4
        assert bucket.as_dict()["budget_bailouts"] == 0
