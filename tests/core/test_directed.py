"""Unit tests for the directed exploration strategy (Fig. 6)."""

import pytest

from repro.cfg.builder import build_cfg
from repro.core.affected import compute_affected_sets
from repro.core.directed import DirectedExplorationStrategy
from repro.core.dise import DiSE
from repro.lang.parser import parse_program
from repro.symexec.engine import SymbolicExecutor
from repro.symexec.state import SymbolicState


@pytest.fixture
def update_setup(update_modified, update_modified_cfg):
    affected = compute_affected_sets(
        update_modified_cfg, seed_conditionals=[update_modified_cfg.node(0)]
    )
    strategy = DirectedExplorationStrategy(update_modified_cfg, affected)
    executor = SymbolicExecutor(
        update_modified, "update", cfg=update_modified_cfg, strategy=strategy
    )
    return update_modified_cfg, affected, strategy, executor


def state_at(cfg, executor, node_id):
    env = executor.initial_environment()
    return SymbolicState.make(cfg.node(node_id), env, trace=(node_id,))


class TestSetBookkeeping:
    def test_run_start_initialises_sets_from_affected(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        assert strategy.unex_cond == affected.acn
        assert strategy.unex_write == affected.awn
        assert strategy.ex_cond == set() and strategy.ex_write == set()

    def test_on_state_moves_node_to_explored(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        strategy.on_state(state_at(cfg, executor, 0))
        assert 0 in strategy.ex_cond and 0 not in strategy.unex_cond

    def test_on_state_ignores_unaffected_nodes(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        strategy.on_state(state_at(cfg, executor, 6))
        assert 6 not in strategy.ex_cond and 6 not in strategy.ex_write

    def test_reset_unexplored_restores_node(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        strategy.on_state(state_at(cfg, executor, 0))
        strategy._reset_unexplored(0)
        assert 0 in strategy.unex_cond and 0 not in strategy.ex_cond


class TestAffectedLocIsReachable:
    def test_reachable_when_unexplored_node_ahead(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        assert strategy.should_explore(state_at(cfg, executor, 1))

    def test_not_reachable_after_everything_explored_on_suffix(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        # mark everything explored, then ask about a late node
        for node_id in list(affected.acn | affected.awn):
            strategy.on_state(state_at(cfg, executor, node_id))
        assert not strategy.should_explore(state_at(cfg, executor, 8))
        assert strategy.prune_count == 1

    def test_reset_triggered_for_explored_nodes_reachable_from_unexplored(self, update_setup):
        cfg, affected, strategy, executor = update_setup
        strategy.on_run_start(executor.initial_state())
        # explore the whole first-path suffix (n10..n14), leaving n2/n3/n4 unexplored
        for node_id in (0, 1, 5, 10, 11, 12, 13, 14):
            strategy.on_state(state_at(cfg, executor, node_id))
        assert strategy.should_explore(state_at(cfg, executor, 2))
        # n10..n14 are reachable from the still-unexplored n3/n4, so they reset
        assert {10, 12} <= strategy.unex_cond
        assert {11, 13, 14} <= strategy.unex_write

    def test_disabling_pruning_always_explores(self, update_modified_cfg):
        affected = compute_affected_sets(update_modified_cfg)
        strategy = DirectedExplorationStrategy(
            update_modified_cfg, affected, enable_pruning=False
        )
        dummy_state = SymbolicState.make(update_modified_cfg.node(8), {}, trace=(8,))
        assert strategy.should_explore(dummy_state)


class TestCheckLoops:
    SOURCE = (
        "global int out = 0;"
        "proc f(int n, int flag) {"
        "  int i = 0;"
        "  while (i < n) {"
        "    if (flag > 0) { out = out + 1; } else { out = out + 2; }"
        "    i = i + 1;"
        "  }"
        "}"
    )

    def test_loop_entry_resets_loop_members(self):
        program = parse_program(self.SOURCE)
        cfg = build_cfg(program, "f")
        header = cfg.branch_nodes()[0]
        inner_branch = cfg.branch_nodes()[1]
        affected = compute_affected_sets(cfg, seed_conditionals=[inner_branch])
        strategy = DirectedExplorationStrategy(cfg, affected)
        strategy.on_run_start(SymbolicState.make(cfg.begin, {}, trace=(cfg.begin.node_id,)))
        strategy.on_state(SymbolicState.make(inner_branch, {}, trace=(inner_branch.node_id,)))
        assert inner_branch.node_id in strategy.ex_cond
        # arriving back at the loop entry moves loop members back to unexplored
        strategy._check_loops(header)
        assert inner_branch.node_id in strategy.unex_cond

    def test_dise_explores_loop_iterations_containing_affected_nodes(self):
        """With the affected branch inside a loop, CheckLoops keeps re-arming the
        affected sets, so directed execution explores loop iterations (up to the
        depth bound) instead of stopping after the first pass through the body."""
        program = parse_program(self.SOURCE)
        base = parse_program(self.SOURCE.replace("flag > 0", "flag >= 0"))
        result = DiSE(base, program, procedure_name="f", depth_bound=6).run()
        statistics = result.execution.statistics
        assert statistics.states_explored > 10
        assert statistics.depth_bound_hits > 0
        # the affected inner branch was explored at least once
        inner_branch_id = [n for n in result.diff_map.cfg_mod.branch_nodes()
                           if "flag" in n.label][0].node_id
        assert inner_branch_id in (result.strategy.ex_cond | result.strategy.unex_cond)


class TestAblationSwitches:
    def test_disable_reset_reduces_coverage(self, update_base, update_modified):
        default = DiSE(update_base, update_modified, procedure_name="update").run()
        no_reset = DiSE(
            update_base, update_modified, procedure_name="update", enable_reset=False
        ).run()
        assert len(no_reset.path_conditions) <= len(default.path_conditions)

    def test_disable_pruning_degenerates_to_full(self, update_base, update_modified):
        from repro.symexec.engine import symbolic_execute

        no_pruning = DiSE(
            update_base, update_modified, procedure_name="update", enable_pruning=False
        ).run()
        full = symbolic_execute(update_modified, "update")
        assert len(no_pruning.path_conditions) == len(full.path_conditions)
