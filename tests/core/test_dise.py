"""Tests for the end-to-end DiSE pipeline and the DiSE-vs-full comparison."""

import pytest

from repro.core.dise import DiSE, compare_dise_with_full, run_dise
from repro.lang.parser import parse_program
from repro.symexec.engine import symbolic_execute


class TestPipeline:
    def test_run_dise_returns_metrics(self, update_base, update_modified):
        result = run_dise(update_base, update_modified, procedure="update")
        metrics = result.metrics()
        assert metrics["changed_nodes"] == 1
        assert metrics["affected_nodes"] == 11
        assert metrics["path_conditions"] == 8
        assert metrics["time_seconds"] >= metrics["static_analysis_seconds"]

    def test_metrics_dict_is_flat_scalars(self, update_base, update_modified):
        result = run_dise(update_base, update_modified, procedure="update")
        for key, value in result.metrics().items():
            assert isinstance(value, (int, float)) and not isinstance(value, bool), key
        structured = result.structured_metrics()
        assert structured["entries_per_callee"] == result.entries_per_callee

    def test_default_procedure_is_first_in_modified_program(self, update_base, update_modified):
        result = run_dise(update_base, update_modified)
        assert result.procedure_name == "update"

    def test_accepts_bare_procedures(self):
        base = parse_program("proc f(int x) { if (x == 0) { x = 1; } }").procedures[0]
        modified = parse_program("proc f(int x) { if (x <= 0) { x = 1; } }").procedures[0]
        result = run_dise(base, modified)
        assert len(result.path_conditions) >= 1

    def test_unknown_procedure_raises(self, update_base, update_modified):
        with pytest.raises(KeyError):
            DiSE(update_base, update_modified, procedure_name="missing")

    def test_rejects_non_program_arguments(self):
        with pytest.raises(TypeError):
            DiSE("not a program", "also not a program")

    def test_depth_bound_is_forwarded(self):
        source = "proc f(int n) { int i = 0; while (i < n) { i = i + 1; } if (i > 0) { n = 0; } }"
        base = parse_program(source)
        modified = parse_program(source.replace("i > 0", "i >= 1"))
        result = run_dise(base, modified, procedure="f", depth_bound=4)
        assert result.execution.statistics.depth_bound_hits >= 0
        assert len(result.path_conditions) >= 1


class TestComparison:
    def test_comparison_row_fields(self, update_base, update_modified):
        row = compare_dise_with_full(
            update_base, update_modified, procedure="update", version_label="example"
        )
        assert row.version == "example"
        assert row.changed_nodes == 1
        assert row.dise_path_conditions == 8
        assert row.full_path_conditions == 24
        assert row.dise_states < row.full_states
        assert set(row.as_dict()) >= {"dise_states", "full_states", "version"}

    def test_dise_never_exceeds_full_path_count(self, update_base, update_modified):
        row = compare_dise_with_full(update_base, update_modified, procedure="update")
        assert row.dise_path_conditions <= row.full_path_conditions

    def test_unchanged_program_produces_no_affected_paths(self, update_base):
        result = run_dise(update_base, update_base, procedure="update")
        assert result.affected_node_count == 0
        assert len(result.path_conditions) == 0
        # the directed search prunes everything right at the first branch
        assert result.states_explored < symbolic_execute(
            update_base, "update"
        ).statistics.states_explored


class TestAgainstFullExecutionOnSmallPrograms:
    CASES = [
        # (base, modified)
        (
            "proc f(int x) { if (x == 0) { x = 1; } else { x = 2; } }",
            "proc f(int x) { if (x <= 0) { x = 1; } else { x = 2; } }",
        ),
        (
            "proc f(int a, int b) { if (a > 0) { a = 1; } if (b > 0) { b = 1; } }",
            "proc f(int a, int b) { if (a > 1) { a = 1; } if (b > 0) { b = 1; } }",
        ),
        (
            "global int g = 0;"
            "proc f(int a, int b) { if (a > 0) { g = 1; } if (b > 0) { g = 2; } }",
            "global int g = 0;"
            "proc f(int a, int b) { if (a > 0) { g = 1; } if (b > 0) { g = 3; } }",
        ),
    ]

    @pytest.mark.parametrize("base_source,mod_source", CASES)
    def test_dise_paths_are_full_paths(self, base_source, mod_source):
        base = parse_program(base_source)
        modified = parse_program(mod_source)
        dise_result = run_dise(base, modified)
        full_result = symbolic_execute(modified)
        full_set = {str(pc) for pc in full_result.path_conditions}
        assert {str(pc) for pc in dise_result.path_conditions} <= full_set

    @pytest.mark.parametrize("base_source,mod_source", CASES)
    def test_dise_covers_behaviours_that_actually_differ(self, base_source, mod_source):
        """With the completion extension, every genuinely changed behaviour is
        reported (the paper's literal pruning can drop paths whose affected
        region is followed only by unaffected branches -- see DESIGN.md)."""
        base = parse_program(base_source)
        modified = parse_program(mod_source)
        dise_result = DiSE(base, modified, complete_covered_paths=True).run()
        base_full = {str(pc) for pc in symbolic_execute(base).path_conditions}
        mod_full = symbolic_execute(modified).path_conditions
        new_conditions = [pc for pc in mod_full if str(pc) not in base_full]
        if not new_conditions:
            return
        assert dise_result.path_conditions, "changed behaviour but DiSE reported nothing"
