"""End-to-end reproduction of the paper's motivating example (§2.2, Table 1).

The paper reports 7 affected path conditions for DiSE versus 21 for full
symbolic execution on its Java variant of ``update``.  The MiniLang
re-creation (integer pressure codes instead of the paper's rational
constants) has 24 full paths and 8 affected ones -- the same one-third ratio,
because DiSE collapses the unaffected BSwitch sub-structure to a single
feasible instance per affected behaviour.
"""

import pytest

from repro.core.dise import DiSE, run_dise
from repro.symexec.engine import symbolic_execute


@pytest.fixture(scope="module")
def dise_result():
    from repro.artifacts.simple import update_base_program, update_modified_program

    return run_dise(
        update_base_program(), update_modified_program(), procedure="update", record_trace=True
    )


@pytest.fixture(scope="module")
def full_result():
    from repro.artifacts.simple import update_modified_program

    return symbolic_execute(update_modified_program(), "update")


class TestHeadlineNumbers:
    def test_full_symbolic_execution_path_count(self, full_result):
        assert len(full_result.path_conditions) == 24

    def test_dise_path_count(self, dise_result):
        assert len(dise_result.path_conditions) == 8

    def test_dise_explores_fewer_states(self, dise_result, full_result):
        assert dise_result.states_explored < full_result.statistics.states_explored

    def test_changed_and_affected_node_counts(self, dise_result):
        assert dise_result.changed_node_count == 1
        assert dise_result.affected_node_count == 11

    def test_dise_prunes_paths(self, dise_result):
        assert dise_result.execution.statistics.pruned_by_strategy > 0


class TestPathConditionContent:
    def test_dise_conditions_are_subset_of_full(self, dise_result, full_result):
        full_set = {str(pc) for pc in full_result.path_conditions}
        dise_set = {str(pc) for pc in dise_result.path_conditions}
        assert dise_set <= full_set

    def test_every_dise_condition_mentions_the_changed_variable(self, dise_result):
        for condition in dise_result.path_conditions:
            assert "PedalPos" in str(condition)

    def test_unaffected_bswitch_structure_is_collapsed(self, dise_result):
        # Each affected behaviour appears with exactly one BSwitch instance.
        bswitch_fragments = {
            tuple(c for c in str(pc).split(" && ") if "BSwitch" in c)
            for pc in dise_result.path_conditions
        }
        assert bswitch_fragments == {("(BSwitch == 0)",)}

    def test_affected_behaviours_cover_all_pedal_outcomes(self, dise_result):
        texts = [str(pc) for pc in dise_result.path_conditions]
        assert any("(PedalPos <= 0)" in t for t in texts)
        assert any("(PedalPos == 1)" in t for t in texts)
        assert any("(PedalPos != 1)" in t for t in texts)


class TestTable1Trace:
    def test_initial_unexplored_sets_are_the_affected_sets(self, dise_result):
        first = dise_result.strategy.trace_rows[0]
        assert first.unex_cond == ("n0", "n2", "n10", "n12")
        assert first.unex_write == ("n1", "n3", "n4", "n5", "n11", "n13", "n14")
        assert first.ex_cond == () and first.ex_write == ()

    def test_paper_prefix_of_trace(self, dise_result):
        """Rows 2-6 of Table 1: the first explored path and its set updates."""
        rows = dise_result.strategy.trace_rows
        assert rows[1].trace == ("n0",) and rows[1].ex_cond == ("n0",)
        assert rows[2].trace == ("n0", "n1") and rows[2].ex_write == ("n1",)
        assert rows[3].trace == ("n0", "n1", "n5")
        assert rows[4].trace == ("n0", "n1", "n5", "n6", "n7", "n10")
        assert rows[4].ex_cond == ("n0", "n10")
        assert rows[5].trace == ("n0", "n1", "n5", "n6", "n7", "n10", "n11")

    def test_bswitch_false_branch_is_pruned(self, dise_result):
        """Row 10 of Table 1: <n0, n1, n5, n6, n8> has no path to unexplored nodes."""
        pruned = [row for row in dise_result.strategy.trace_rows if row.pruned]
        assert ("n0", "n1", "n5", "n6", "n8") in {row.trace for row in pruned}

    def test_reset_when_second_pedal_branch_is_entered(self, dise_result):
        """Row 11 of Table 1: exploring n2 moves explored nodes back to unexplored."""
        rows = dise_result.strategy.trace_rows
        n2_rows = [row for row in rows if row.trace == ("n0", "n2")]
        assert n2_rows, "expected a trace row for the path <n0, n2>"
        row = n2_rows[0]
        assert row.ex_cond == ("n0", "n2")
        assert "n10" in row.unex_cond and "n12" in row.unex_cond
        assert "n5" in row.unex_write and "n11" in row.unex_write


class TestExtensionMode:
    def test_complete_covered_paths_reports_conservative_superset(self):
        from repro.artifacts.simple import update_base_program, update_modified_program

        default = run_dise(
            update_base_program(), update_modified_program(), procedure="update"
        )
        extended = DiSE(
            update_base_program(),
            update_modified_program(),
            procedure_name="update",
            complete_covered_paths=True,
        ).run()
        default_set = {str(pc) for pc in default.path_conditions}
        extended_set = {str(pc) for pc in extended.path_conditions}
        assert default_set <= extended_set
        assert len(extended_set) >= len(default_set)
