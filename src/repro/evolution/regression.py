"""Regression test selection and augmentation (paper §5.2, Table 3).

The paper's application is intentionally trivial: the tests generated for the
*original* version by full symbolic execution form the existing suite, and
the tests generated from DiSE's affected path conditions are string-compared
against it.  DiSE tests that already exist are *selected* (can be re-used);
the remaining DiSE tests must be *added* to augment the suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.evolution.testgen import TestSuite
from repro.lang.ast_nodes import Program
from repro.solver.core import ConstraintSolver


@dataclass
class RegressionReport:
    """The outcome of test selection and augmentation for one program version."""

    version: str
    changes: int
    selected: List[str] = field(default_factory=list)
    added: List[str] = field(default_factory=list)

    @property
    def selected_count(self) -> int:
        return len(self.selected)

    @property
    def added_count(self) -> int:
        return len(self.added)

    @property
    def total(self) -> int:
        """Total tests needed to exercise the affected behaviours."""
        return self.selected_count + self.added_count

    def as_dict(self) -> dict:
        return {
            "version": self.version,
            "changes": self.changes,
            "selected": self.selected_count,
            "added": self.added_count,
            "total": self.total,
        }


def select_and_augment(
    existing_suite: TestSuite,
    dise_suite: TestSuite,
    version: str = "",
    changes: int = 0,
) -> RegressionReport:
    """Classify DiSE-generated tests as re-usable (selected) or new (added)."""
    existing_calls = set(existing_suite.call_strings())
    report = RegressionReport(version=version, changes=changes)
    for call in dise_suite.call_strings():
        if call in existing_calls:
            report.selected.append(call)
        else:
            report.added.append(call)
    return report


def regression_analysis(
    base_program: Program,
    modified_program: Program,
    procedure: Optional[str] = None,
    version: str = "",
    changes: int = 0,
    depth_bound: Optional[int] = None,
) -> RegressionReport:
    """End-to-end Table 3 workflow for one version.

    1. full symbolic execution of the *base* version generates the existing suite;
    2. DiSE on (base, modified) generates the affected path conditions;
    3. the affected path conditions are solved into tests and compared against
       the existing suite.
    """
    from repro.core.dise import run_dise  # local import to avoid import cycle
    from repro.evolution.testgen import generate_tests
    from repro.symexec.engine import symbolic_execute

    base_procedure = (
        base_program.procedure(procedure) if procedure else base_program.procedures[0]
    )
    modified_procedure = (
        modified_program.procedure(base_procedure.name)
    )

    base_result = symbolic_execute(
        base_program,
        procedure_name=base_procedure.name,
        depth_bound=depth_bound,
        solver=ConstraintSolver(),
    )
    existing_suite = generate_tests(base_result.summary, base_procedure)

    dise_result = run_dise(
        base_program,
        modified_program,
        procedure=base_procedure.name,
        depth_bound=depth_bound,
        solver=ConstraintSolver(),
    )
    dise_suite = generate_tests(dise_result.path_conditions, modified_procedure)

    return select_and_augment(existing_suite, dise_suite, version=version, changes=changes)
