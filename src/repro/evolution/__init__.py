"""Software-evolution applications built on DiSE results (paper §5.2)."""

from repro.evolution.regression import (
    RegressionReport,
    regression_analysis,
    select_and_augment,
)
from repro.evolution.testgen import TestCase, TestSuite, generate_tests

__all__ = [
    "RegressionReport",
    "regression_analysis",
    "select_and_augment",
    "TestCase",
    "TestSuite",
    "generate_tests",
]
