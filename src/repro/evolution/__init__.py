"""Software-evolution applications built on DiSE results (paper §5.2)."""

from repro.evolution.history import (
    HistoryReport,
    VersionHistoryRunner,
    VersionRunReport,
    run_history,
)
from repro.evolution.regression import (
    RegressionReport,
    regression_analysis,
    select_and_augment,
)
from repro.evolution.testgen import TestCase, TestSuite, generate_tests

__all__ = [
    "HistoryReport",
    "VersionHistoryRunner",
    "VersionRunReport",
    "run_history",
    "RegressionReport",
    "regression_analysis",
    "select_and_augment",
    "TestCase",
    "TestSuite",
    "generate_tests",
]
