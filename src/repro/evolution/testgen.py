"""Test input generation from path conditions (paper §5.2).

SPF "outputs values that can be used for the method arguments (test inputs)
based on the generated path conditions ... The results are output in string
format."  We do the same: every satisfiable path condition is solved and the
model restricted to the procedure's parameters becomes one test case, printed
as a call string such as ``update(0, 1, 2)``.

Because only the method arguments are solved (a *partial* state, exactly as
in the paper), several path conditions can map to the same concrete test
case; the generated suite therefore de-duplicates call strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.lang.ast_nodes import Procedure
from repro.solver.core import ConstraintSolver
from repro.solver.terms import BOOL_SORT
from repro.symexec.state import PathCondition
from repro.symexec.summary import MethodSummary


@dataclass(frozen=True)
class TestCase:
    """One concrete invocation of the procedure under analysis."""

    procedure_name: str
    arguments: tuple

    def call_string(self) -> str:
        rendered = ", ".join(_render_value(value) for value in self.arguments)
        return f"{self.procedure_name}({rendered})"

    def __str__(self) -> str:
        return self.call_string()


@dataclass
class TestSuite:
    """A de-duplicated collection of test cases.

    ``cases`` preserves insertion order (the paper's tables list tests in
    generation order); duplicate detection goes through a hashed index so
    that building artifact-scale suites stays O(1) per insert instead of a
    linear scan per case.
    """

    procedure_name: str
    cases: List[TestCase] = field(default_factory=list)
    _index: Set[TestCase] = field(default_factory=set, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._index = set(self.cases)

    def add(self, case: TestCase) -> bool:
        """Add a case; returns False when an identical call already exists."""
        if case in self._index:
            return False
        self._index.add(case)
        self.cases.append(case)
        return True

    def call_strings(self) -> List[str]:
        return [case.call_string() for case in self.cases]

    def __len__(self) -> int:
        return len(self.cases)

    def __iter__(self):
        return iter(self.cases)

    def __contains__(self, case: TestCase) -> bool:
        return case in self._index


def _render_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def generate_tests(
    summary_or_conditions,
    procedure: Procedure,
    solver: Optional[ConstraintSolver] = None,
) -> TestSuite:
    """Solve each path condition and produce concrete test inputs.

    Args:
        summary_or_conditions: a :class:`MethodSummary` or a sequence of
            :class:`PathCondition` objects.
        procedure: the procedure whose parameters the tests must supply.
        solver: optional solver instance (one is created on demand).
    """
    solver = solver or ConstraintSolver()
    conditions = _as_conditions(summary_or_conditions)
    suite = TestSuite(procedure.name)
    for condition in conditions:
        model = solver.model(list(condition))
        if model is None:
            continue
        arguments = []
        for param in procedure.params:
            value = model.get(param.name, 0)
            if param.type_name == "bool":
                value = bool(value)
            arguments.append(value)
        suite.add(TestCase(procedure.name, tuple(arguments)))
    return suite


def _as_conditions(summary_or_conditions) -> Sequence[PathCondition]:
    if isinstance(summary_or_conditions, MethodSummary):
        return summary_or_conditions.path_conditions
    return list(summary_or_conditions)
