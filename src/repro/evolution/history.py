"""Batch driver for whole version histories (ROADMAP "Workloads").

The Table 2/3 benchmarks treat every program version as an isolated job:
re-parse the base program, re-diff, re-analyse and re-execute from scratch.
A :class:`VersionHistoryRunner` instead runs an *ordered* artifact history
the way DiSE is meant to be used during software evolution:

* every program text is parsed exactly once;
* each adjacent version pair is diffed exactly once (inside the one
  :class:`~repro.core.dise.DiSE` pipeline constructed for it);
* one :class:`~repro.solver.core.ConstraintSolver` is shared across the
  whole history, so constraint-cache and incremental-context state carries
  over;
* one :class:`~repro.symexec.summary_cache.SummaryCache` is shared, so
  version N+1 replays the subtree and segment summaries version N recorded
  instead of re-executing unchanged regions.

Per version the runner reports the directed (DiSE) run, optionally a full
symbolic execution of the version (the Table 2 comparison leg), and three
reuse ratios:

* ``path_reuse`` -- completed paths replayed from cache / all paths;
* ``hit_ratio`` -- cache hits / cache attempts;
* ``decision_reuse`` -- 1 minus the cached runs' solver decisions over a
  cold baseline's (only when ``measure_baseline`` is set; this is the
  metric that credits segment composition, which skips solver work without
  replaying whole paths).

``summary_reuse`` is the maximum of the available ratios and is what the
history benchmark gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.artifacts.mutants import Artifact
from repro.core.dise import DiSE, DiSEResult
from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program
from repro.solver.core import ConstraintSolver
from repro.symexec.engine import ExecutionResult, ExecutionStatistics, symbolic_execute
from repro.symexec.summary_cache import SummaryCache


def _decisions(statistics: ExecutionStatistics) -> int:
    """Branch-feasibility decisions taken by a run (executor + lookahead)."""
    return (
        statistics.solver_queries
        + statistics.incremental_hits
        + statistics.lookahead_solver_queries
        + statistics.lookahead_incremental_hits
    )


def _leg(statistics: ExecutionStatistics, seconds: float, paths: int, distinct: int) -> Dict:
    return {
        "seconds": round(seconds, 6),
        "states": statistics.states_explored,
        "paths": paths,
        "distinct_path_conditions": distinct,
        "decisions": _decisions(statistics),
        "replayed_paths": statistics.replayed_paths,
        "replayed_segments": statistics.replayed_segments,
        "cache_hits": statistics.summary_cache_hits,
        "cache_misses": statistics.summary_cache_misses,
        "cache_stores": statistics.summary_cache_stores,
        "strategy_token_misses": statistics.strategy_token_misses,
        "generalized_call_hits": statistics.generalized_call_hits,
        "generalized_call_stores": statistics.generalized_call_stores,
        "generalized_call_fallbacks": statistics.generalized_call_fallbacks,
        "instantiated_paths": statistics.instantiated_paths,
    }


@dataclass
class VersionRunReport:
    """Everything measured while processing one version of a history."""

    artifact: str
    version: str
    previous: str
    changes: int
    description: str
    changed_nodes: int = 0
    affected_nodes: int = 0
    invalidated: int = 0
    dise: Optional[Dict] = None
    full: Optional[Dict] = None
    baseline_dise: Optional[Dict] = None
    baseline_full: Optional[Dict] = None
    path_reuse: Optional[float] = None
    hit_ratio: Optional[float] = None
    decision_reuse: Optional[float] = None
    states_saved: Optional[float] = None
    full_path_reuse: Optional[float] = None
    full_states_saved: Optional[float] = None
    #: Distinct path-condition strings of each leg (kept out of as_dict();
    #: the differential tests compare them against cold oracle runs).
    dise_distinct_pcs: Tuple[str, ...] = ()
    full_distinct_pcs: Tuple[str, ...] = ()

    @property
    def summary_reuse(self) -> Optional[float]:
        """The strongest demonstrated reuse for this version.

        Maximum over the combined and per-leg ratios: replayed-path
        fraction, solver-decision savings and state-visit savings.  The
        per-leg view matters because the two legs have independent summary
        corpora -- a version whose directed run is its history's first
        broad directed exploration has nothing directed to reuse, while its
        full-exploration leg replays most of the previous version's work.
        All constituent ratios are reported alongside, so the maximum
        hides nothing.
        """
        ratios = [
            r
            for r in (
                self.path_reuse,
                self.decision_reuse,
                self.states_saved,
                self.full_path_reuse,
                self.full_states_saved,
            )
            if r is not None
        ]
        return max(ratios) if ratios else None

    def as_dict(self) -> Dict:
        return {
            "artifact": self.artifact,
            "version": self.version,
            "previous": self.previous,
            "changes": self.changes,
            "description": self.description,
            "changed_nodes": self.changed_nodes,
            "affected_nodes": self.affected_nodes,
            "invalidated": self.invalidated,
            "dise": self.dise,
            "full": self.full,
            "baseline_dise": self.baseline_dise,
            "baseline_full": self.baseline_full,
            "path_reuse": self.path_reuse,
            "hit_ratio": self.hit_ratio,
            "decision_reuse": self.decision_reuse,
            "states_saved": self.states_saved,
            "full_path_reuse": self.full_path_reuse,
            "full_states_saved": self.full_states_saved,
            "summary_reuse": self.summary_reuse,
        }


@dataclass
class HistoryReport:
    """The outcome of running one artifact's whole version history."""

    artifact: str
    procedure: str
    seed: Optional[Dict]
    versions: List[VersionRunReport] = field(default_factory=list)
    cache: Dict = field(default_factory=dict)
    #: Parallel-phase health, summed over every cached leg of the history
    #: (empty for serial runs): shards, failed_shards, retried_shards,
    #: quarantined_shards, salvaged_entries and failure_reasons.  A history
    #: that survived worker faults reports the casualties here instead of
    #: hiding them in per-leg noise.
    parallel: Dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def as_dict(self) -> Dict:
        return {
            "artifact": self.artifact,
            "procedure": self.procedure,
            "seed": self.seed,
            "versions": [report.as_dict() for report in self.versions],
            "cache": self.cache,
            "parallel": self.parallel,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
        }


#: ParallelReport counters summed across a history's cached legs.
_PARALLEL_COUNTERS = (
    "shards",
    "waves",
    "respeculated_shards",
    "cost_inline",
    "failed_shards",
    "retried_shards",
    "quarantined_shards",
    "salvaged_entries",
)


def _accumulate_parallel(totals: Dict, parallel_report) -> None:
    """Fold one leg's :class:`~repro.parallel.shard.ParallelReport` into ``totals``."""
    if parallel_report is None:
        return
    for name in _PARALLEL_COUNTERS:
        totals[name] = totals.get(name, 0) + getattr(parallel_report, name, 0)
    reasons = getattr(parallel_report, "failure_reasons", None)
    if reasons:
        totals.setdefault("failure_reasons", []).extend(reasons)


class VersionHistoryRunner:
    """Run DiSE over an ordered version history with shared caches.

    Args:
        artifact: the artifact whose history to run (base + versions).
        depth_bound: optional branch-decision bound passed to every run.
        include_full: also run full symbolic execution of every version
            through the shared cache (the Table 2 comparison leg; it is also
            what seeds cross-version reuse for versions whose directed runs
            explore nothing).
        measure_baseline: additionally run every version cold (fresh solver,
            no cache) to report timing/decision baselines and the
            ``decision_reuse`` ratio.  Doubles the work; meant for the
            benchmark harness, not for production batch runs.
        summary_cache: the shared cache (a fresh one is created when omitted).
        solver: the shared solver (a fresh one is created when omitted).
        workers: with ``workers > 1`` both legs of every version shard their
            exploration frontier across a process pool (see
            :mod:`repro.parallel.shard`); results are identical, the subtree
            work runs in parallel, and the workers' summaries land in the
            shared cache where later versions reuse them.
        store_path: when set, the shared summary cache is loaded from this
            :class:`~repro.parallel.store.PersistentSummaryStore` file
            before the history runs (warm resume across processes/CI jobs)
            and dumped back to it afterwards.  Intern ids never touch the
            disk -- entries are stored as term trees and re-interned on
            load.  The scheduler's cost model rides along: persisted
            ``costmodel`` state is adopted before the sweep (a fresh
            process schedules warm from the first version) and the model's
            observations are published back with the summaries --
            unless a fault-injection plan is active, in which case the
            store's scheduler state is left untouched (estimates from a
            chaos run must never pollute future scheduling).
        cost_model: the scheduler cost model the store round-trips;
            defaults to the process-global
            :func:`~repro.parallel.shard.scheduler_cost_model` (the one
            parallel runs consult).
    """

    def __init__(
        self,
        artifact: Artifact,
        depth_bound: Optional[int] = None,
        include_full: bool = True,
        measure_baseline: bool = False,
        summary_cache: Optional[SummaryCache] = None,
        solver: Optional[ConstraintSolver] = None,
        workers: int = 1,
        store_path: Optional[str] = None,
        cost_model=None,
    ):
        self.artifact = artifact
        self.depth_bound = depth_bound
        self.include_full = include_full
        self.measure_baseline = measure_baseline
        self.summary_cache = summary_cache if summary_cache is not None else SummaryCache()
        self.solver = solver or ConstraintSolver()
        self.workers = workers
        self.store_path = store_path
        self.cost_model = cost_model

    # -- pieces ---------------------------------------------------------------

    def _parse_history(self) -> List[Tuple[str, str, int, Program]]:
        """Parse every program text of the history exactly once."""
        return [
            (name, description, changes, parse_program(source))
            for name, description, changes, source in self.artifact.history()
        ]

    def _full_leg(self, program: Program, cached: bool) -> Tuple[Dict, ExecutionResult]:
        store_hits_before = self.summary_cache.statistics.store_hits
        with obs.timed("history.full_leg", "history", cached=cached) as timer:
            result = symbolic_execute(
                program,
                procedure_name=self.artifact.procedure_name,
                depth_bound=self.depth_bound,
                solver=self.solver if cached else ConstraintSolver(),
                summary_cache=self.summary_cache if cached else None,
                workers=self.workers if cached else 1,
            )
        seconds = timer.seconds
        obs.observe("history.full_leg_seconds", seconds)
        distinct = result.summary.distinct_path_conditions()
        leg = _leg(result.statistics, seconds, len(result.summary), len(distinct))
        if cached and self.store_path is not None:
            # Hits served by store-loaded entries during this warm-resume
            # leg (satisfying a cross-process resume, not in-run reuse).
            leg["store_hits"] = self.summary_cache.statistics.store_hits - store_hits_before
        return leg, result

    def _dise_leg(self, base: Program, modified: Program, cached: bool) -> Tuple[Dict, DiSEResult]:
        store_hits_before = self.summary_cache.statistics.store_hits
        with obs.timed("history.dise_leg", "history", cached=cached) as timer:
            result = DiSE(
                base,
                modified,
                procedure_name=self.artifact.procedure_name,
                depth_bound=self.depth_bound,
                solver=self.solver if cached else ConstraintSolver(),
                summary_cache=self.summary_cache if cached else None,
                workers=self.workers if cached else 1,
            ).run()
        seconds = timer.seconds
        obs.observe("history.dise_leg_seconds", seconds)
        distinct = result.execution.summary.distinct_path_conditions()
        leg = _leg(
            result.execution.statistics, seconds, len(result.execution.summary), len(distinct)
        )
        if cached and self.store_path is not None:
            leg["store_hits"] = self.summary_cache.statistics.store_hits - store_hits_before
        return leg, result

    # -- the batch run --------------------------------------------------------

    def run(self) -> HistoryReport:
        started = time.perf_counter()
        with obs.span(
            "history.run", "history", artifact=self.artifact.name, workers=self.workers
        ):
            report = self._run()
        report.elapsed_seconds = time.perf_counter() - started
        recorder = obs.active()
        if recorder is not None:
            recorder.metrics.register("summary_cache", self.summary_cache.statistics)
            recorder.metrics.register("solver", self.solver.statistics)
        return report

    def _run(self) -> HistoryReport:
        history = self._parse_history()
        report = HistoryReport(
            artifact=self.artifact.name, procedure=self.artifact.procedure_name, seed=None
        )

        store = None
        store_loaded = 0
        store_skipped = 0
        cost_model = None
        costmodel_adopted = 0
        parallel_totals: Dict = {}
        if self.store_path is not None:
            # Imported lazily: repro.parallel depends on repro.evolution's
            # sibling packages and keeping the base runner import-light.
            from repro import faults
            from repro.parallel.shard import scheduler_cost_model
            from repro.parallel.store import PersistentSummaryStore

            store = PersistentSummaryStore(self.store_path)
            store_loaded = store.load_into(self.summary_cache)
            store_skipped = store.skipped_entries
            cost_model = (
                self.cost_model if self.cost_model is not None else scheduler_cost_model()
            )
            costmodel_adopted = store.load_cost_model_into(cost_model)
            if faults.active_plan() is not None:
                # A chaos run neither learns (prewarm refuses to observe
                # under a plan) nor publishes: a crash between the adopt
                # above and the dump below must leave the stored scheduler
                # state exactly as a healthy run left it.
                cost_model = None

        if self.include_full:
            # Seed the cache with the base version's summaries: every later
            # version whose edit leaves a suffix or segment of the base
            # intact replays it from here.
            with obs.span("history.version", "history", version=history[0][0], seed=True):
                seed_leg, seed_result = self._full_leg(history[0][3], cached=True)
            report.seed = seed_leg
            _accumulate_parallel(parallel_totals, seed_result.parallel)

        for (prev_name, _, _, prev_prog), (name, description, changes, prog) in zip(
            history, history[1:]
        ):
            with obs.span("history.version", "history", version=name, previous=prev_name):
                row = self._run_version(
                    parallel_totals, prev_name, prev_prog, name, description, changes, prog
                )
            report.versions.append(row)

        report.cache = dict(self.summary_cache.statistics.as_dict(), entries=len(self.summary_cache))
        report.cache["entries_per_callee"] = self.summary_cache.entries_per_callee()
        report.parallel = parallel_totals
        if store is not None:
            report.cache["store_loaded"] = store_loaded
            report.cache["store_skipped"] = store_skipped
            report.cache["store_dumped"] = store.dump(self.summary_cache, cost_model=cost_model)
            report.cache["costmodel_adopted"] = costmodel_adopted
            report.cache["costmodel_published"] = store.costmodel_published
            report.cache["store_path"] = self.store_path
            # The handle's lifetime counters (loads/dumps/entries/seconds)
            # plus how many of this run's cache hits the loaded entries
            # served -- the warm-resume effectiveness measure.
            report.cache["store"] = store.telemetry()
            report.cache["store_hits"] = self.summary_cache.statistics.store_hits
        return report

    def _run_version(
        self,
        parallel_totals: Dict,
        prev_name: str,
        prev_prog: Program,
        name: str,
        description: str,
        changes: int,
        prog: Program,
    ) -> VersionRunReport:
        """Process one adjacent version pair and build its report row."""
        dise_leg, dise_result = self._dise_leg(prev_prog, prog, cached=True)
        _accumulate_parallel(parallel_totals, dise_result.parallel)
        row = VersionRunReport(
            artifact=self.artifact.name,
            version=name,
            previous=prev_name,
            changes=changes,
            description=description,
            changed_nodes=dise_result.changed_node_count,
            affected_nodes=dise_result.affected_node_count,
            invalidated=dise_result.summaries_invalidated,
            dise=dise_leg,
            dise_distinct_pcs=tuple(
                sorted(map(str, dise_result.execution.summary.distinct_path_conditions()))
            ),
        )
        legs = [dise_leg]
        if self.include_full:
            full_leg, full_result = self._full_leg(prog, cached=True)
            _accumulate_parallel(parallel_totals, full_result.parallel)
            row.full = full_leg
            row.full_distinct_pcs = tuple(
                sorted(map(str, full_result.summary.distinct_path_conditions()))
            )
            legs.append(full_leg)
        if self.measure_baseline:
            row.baseline_dise, _ = self._dise_leg(prev_prog, prog, cached=False)
            if self.include_full:
                row.baseline_full, _ = self._full_leg(prog, cached=False)

        paths = sum(leg["paths"] for leg in legs)
        replayed = sum(leg["replayed_paths"] for leg in legs)
        attempts = sum(leg["cache_hits"] + leg["cache_misses"] for leg in legs)
        hits = sum(leg["cache_hits"] for leg in legs)
        row.path_reuse = round(replayed / paths, 4) if paths else None
        row.hit_ratio = round(hits / attempts, 4) if attempts else None
        if row.full is not None and row.full["paths"]:
            row.full_path_reuse = round(
                row.full["replayed_paths"] / row.full["paths"], 4
            )
        if self.measure_baseline:
            cold = (row.baseline_dise or {}).get("decisions", 0) + (
                (row.baseline_full or {}).get("decisions", 0)
            )
            warm = sum(leg["decisions"] for leg in legs)
            if cold > 0:
                row.decision_reuse = round(1.0 - warm / cold, 4)
            cold_states = (row.baseline_dise or {}).get("states", 0) + (
                (row.baseline_full or {}).get("states", 0)
            )
            warm_states = sum(leg["states"] for leg in legs)
            if cold_states > 0:
                row.states_saved = round(1.0 - warm_states / cold_states, 4)
            if row.full is not None and row.baseline_full is not None:
                if row.baseline_full["states"] > 0:
                    row.full_states_saved = round(
                        1.0 - row.full["states"] / row.baseline_full["states"], 4
                    )
        return row


def run_history(
    artifact: Artifact,
    depth_bound: Optional[int] = None,
    include_full: bool = True,
    measure_baseline: bool = False,
) -> HistoryReport:
    """Convenience wrapper: run one artifact's history with fresh shared caches."""
    return VersionHistoryRunner(
        artifact,
        depth_bound=depth_bound,
        include_full=include_full,
        measure_baseline=measure_baseline,
    ).run()
