"""Deterministic fault injection for the analysis runtime.

The parallel runtime claims to degrade gracefully: a crashed worker costs
one subtree, a wedged solver costs one shard attempt, a torn store write
costs warm-start entries -- never correctness.  Those claims are only
worth anything if they are *exercised*, which is what this module is for:
a seeded, schedulable injection registry whose fault sites are wired into
the production code paths (``parallel/shard.py``, ``parallel/store.py``,
``parallel/serialize.py``, ``solver/core.py``) and driven by the chaos
differential tests under ``tests/chaos/``.

Design constraints, in order:

1. **Determinism.**  Every fault decision is a pure function of
   ``(seed, scope, site, ident)`` hashed through blake2b -- no RNG state,
   no wall clock.  Re-running a chaos test with the same seed replays the
   identical fault schedule; a shard retry changes its attempt number
   (folded into the scope), so retried attempts re-roll instead of
   deterministically re-failing forever.
2. **Zero cost when off.**  Production call sites guard on a single
   module-global; with no plan installed a fault hook is one ``None``
   comparison.
3. **Worker containment.**  The sites that model *worker* failures
   (crash, hang, kill, solver wedge) only ever fire inside a worker
   process (``FaultPlan.in_worker``); the parent's engine and solver are
   never sabotaged, because parent-side degradation is the deadline
   budget's job (:class:`repro.solver.core.DeadlineBudget`), not this
   module's.  The data-corruption sites (torn store write, corrupt
   serialized frame) fire anywhere -- they are output-preserving by the
   salvage-safety invariant (a dropped cache entry or store line degrades
   to native exploration, never to a wrong answer).

Fault sites:

``worker-crash``
    ``run_shard`` raises :class:`WorkerCrashFault` at task start.
``worker-hang``
    ``run_shard`` sleeps ``hang_seconds`` (tripping the caller's per-task
    deadline), then raises :class:`WorkerHangFault`.
``worker-kill``
    the worker SIGKILLs itself mid-task -- a *real* hard kill: the pool
    respawns the process and the caller's ``get(timeout)`` expires.
``solver-timeout``
    the shard's Nth :meth:`ConstraintSolver.check` raises
    :class:`SolverTimeoutFault`.  Deliberately **not** a ``SolverError``:
    the lookahead swallows ``SolverError`` conservatively, and a worker
    that silently explores "conservatively more" than the parent would
    record divergent summaries and poison the shared cache.  As a plain
    injected error it fails the shard, which is retried/quarantined --
    the sanctioned degradation path.
``torn-store-write``
    :meth:`PersistentSummaryStore.dump` truncates the written file at a
    roll-derived byte offset (simulating a torn OS-level write).
``corrupt-frame``
    :func:`encode_cache_entries` mangles one encoded entry (the decoder
    must skip it, counted, never adopt it).

Spec strings (``REPRO_FAULTS`` or explicit) look like
``seed:6,crash:0.3,timeout:0.2,hang:0.1,hang_seconds:1.5`` -- short
aliases map to the site names above.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from contextlib import contextmanager
from typing import Dict, Optional

from repro.obs import spans as _obs_spans

#: Canonical fault-site names.
FAULT_SITES = (
    "worker-crash",
    "worker-hang",
    "worker-kill",
    "solver-timeout",
    "torn-store-write",
    "corrupt-frame",
)

#: Sites that model a *worker* failure and therefore only fire when the
#: plan runs inside a worker process (``FaultPlan.in_worker``).
WORKER_ONLY_SITES = frozenset(
    {"worker-crash", "worker-hang", "worker-kill", "solver-timeout"}
)

#: Short spec keys accepted in ``REPRO_FAULTS`` strings.
SPEC_ALIASES = {
    "crash": "worker-crash",
    "hang": "worker-hang",
    "kill": "worker-kill",
    "timeout": "solver-timeout",
    "torn": "torn-store-write",
    "corrupt": "corrupt-frame",
}


class FaultError(RuntimeError):
    """Base class of every injected fault (never raised by real failures)."""


class WorkerCrashFault(FaultError):
    """Injected worker crash (models an uncaught exception in a worker)."""


class WorkerHangFault(FaultError):
    """Raised after an injected hang, in case the caller's deadline did not trip."""


class SolverTimeoutFault(FaultError):
    """Injected solver wedge.

    Not a :class:`~repro.solver.core.SolverError` on purpose: see the
    module docstring -- it must fail the shard, not be conservatively
    swallowed by the worker's lookahead.
    """


class FaultPlan:
    """One deterministic fault schedule.

    Args:
        seed: folded into every roll; same seed -> same schedule.
        rates: canonical site name -> firing probability in ``[0, 1]``.
        hang_seconds: how long an injected hang sleeps.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
        hang_seconds: float = 1.0,
    ):
        self.seed = int(seed)
        self.rates: Dict[str, float] = {}
        for site, rate in (rates or {}).items():
            canonical = SPEC_ALIASES.get(site, site)
            if canonical not in FAULT_SITES:
                raise ValueError(f"Unknown fault site {site!r}")
            self.rates[canonical] = float(rate)
        self.hang_seconds = float(hang_seconds)
        #: Set by ``run_shard`` when the plan is installed inside a worker
        #: process; gates the worker-only sites.
        self.in_worker = False
        #: Mixed into every roll; carries the task ident + attempt number
        #: so a retried shard re-rolls its schedule.
        self.scope = ""
        self._suspend = 0
        self._solver_timeout_at: Optional[int] = None
        self._solver_checks = 0

    # -- deterministic rolls ---------------------------------------------------

    def roll(self, site: str, ident: str) -> float:
        """A uniform value in ``[0, 1)``, pure in (seed, scope, site, ident)."""
        material = f"{self.seed}|{self.scope}|{site}|{ident}".encode("utf-8")
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "big") / float(1 << 64)

    def fires(self, site: str, ident: str) -> bool:
        """Whether ``site`` fires for ``ident`` under this plan, gated.

        Suspended plans never fire; worker-only sites require
        ``in_worker``.
        """
        if self._suspend:
            return False
        if site in WORKER_ONLY_SITES and not self.in_worker:
            return False
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        fired = self.roll(site, ident) < rate
        if fired:
            # Injected faults land in the telemetry stream inline with the
            # spans they disrupt (worker-side events ride the shard's
            # exported payload back to the parent trace).
            recorder = _obs_spans._ACTIVE
            if recorder is not None:
                recorder.event(f"fault.{site}", category="fault", ident=ident, seed=self.seed)
        return fired

    # -- worker-side hooks -----------------------------------------------------

    def maybe_worker_fault(self, ident: str) -> None:
        """Fire the per-task worker faults; called once at ``run_shard`` start.

        Also scopes every later roll of this install (e.g. the corrupt-frame
        rolls while encoding results) to ``ident``, so two tasks -- or two
        attempts of the same task -- draw independent schedules.
        """
        self.scope = ident
        if self.fires("worker-crash", ident):
            raise WorkerCrashFault(f"injected worker crash ({ident})")
        if self.fires("worker-kill", ident):
            os.kill(os.getpid(), signal.SIGKILL)
        if self.fires("worker-hang", ident):
            time.sleep(self.hang_seconds)
            raise WorkerHangFault(f"injected worker hang ({ident})")
        if self.fires("solver-timeout", ident):
            # Wedge the Nth solver query of this shard, N derived from an
            # independent roll so different shards wedge at different
            # depths.  The range is kept shallow (1..4) because shard
            # subtrees are small -- interval fast paths decide most
            # branches, so deep thresholds would never be reached.
            self._solver_timeout_at = 1 + int(self.roll("solver-timeout-at", ident) * 4)

    def note_solver_check(self) -> None:
        """Per-query hook wired into :meth:`ConstraintSolver.check`."""
        if self._solver_timeout_at is None or self._suspend:
            return
        self._solver_checks += 1
        if self._solver_checks >= self._solver_timeout_at:
            raise SolverTimeoutFault(
                f"injected solver timeout at query {self._solver_checks} ({self.scope})"
            )

    # -- shipping --------------------------------------------------------------

    def worker_payload(self) -> Dict:
        """JSON-compatible form shipped to workers inside task payloads."""
        return {
            "seed": self.seed,
            "rates": dict(self.rates),
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "FaultPlan":
        return cls(
            seed=payload.get("seed", 0),
            rates=payload.get("rates") or {},
            hang_seconds=payload.get("hang_seconds", 1.0),
        )


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``seed:6,crash:0.3,timeout:0.2`` style schedule string."""
    seed = 0
    hang_seconds = 1.0
    rates: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if ":" not in part:
            raise ValueError(f"Malformed fault spec item {part!r} (expected key:value)")
        key, _, value = part.partition(":")
        key = key.strip()
        value = value.strip()
        if key == "seed":
            seed = int(value)
        elif key == "hang_seconds":
            hang_seconds = float(value)
        else:
            canonical = SPEC_ALIASES.get(key, key)
            if canonical not in FAULT_SITES:
                raise ValueError(f"Unknown fault site {key!r} in spec {spec!r}")
            rates[canonical] = float(value)
    return FaultPlan(seed=seed, rates=rates, hang_seconds=hang_seconds)


def plan_from_env(default: Optional[str] = None) -> Optional[FaultPlan]:
    """Build a plan from ``REPRO_FAULTS`` (or ``default``); None when unset."""
    spec = os.environ.get("REPRO_FAULTS", default)
    if not spec:
        return None
    return parse_spec(spec)


# -- the installed plan (module-global; fast-path guarded) ---------------------

_ACTIVE: Optional[FaultPlan] = None


def install(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process's active fault schedule (None clears)."""
    global _ACTIVE
    _ACTIVE = plan


def clear() -> None:
    install(None)


def active_plan() -> Optional[FaultPlan]:
    return _ACTIVE


def fires(site: str, ident: str) -> bool:
    """Production-side hook: does ``site`` fire for ``ident`` right now?"""
    plan = _ACTIVE
    if plan is None:
        return False
    return plan.fires(site, ident)


def maybe_solver_timeout() -> None:
    """Hook called from :meth:`ConstraintSolver.check` (one query)."""
    plan = _ACTIVE
    if plan is not None:
        plan.note_solver_check()


@contextmanager
def injected(plan: FaultPlan):
    """Install ``plan`` for the duration of the block (restores the previous)."""
    previous = _ACTIVE
    install(plan)
    try:
        yield plan
    finally:
        install(previous)


@contextmanager
def suspended():
    """Temporarily silence the active plan (used for clean oracle runs).

    Chaos differential tests compute their serial oracle *inside* an
    installed plan; this guarantees the oracle run sees zero injected
    faults without uninstalling the schedule the faulted leg needs.
    """
    plan = _ACTIVE
    if plan is not None:
        plan._suspend += 1
    try:
        yield
    finally:
        if plan is not None:
            plan._suspend -= 1
