"""Feasibility-aware reachability lookahead for the directed search.

``AffectedLocIsReachable`` (paper Fig. 6) asks whether an unexplored affected
location can still be covered from the current state.  Pure CFG reachability
over-approximates that badly: a target can be statically reachable while
every CFG path to it is infeasible under the current path condition (in the
§2.2 example, ``AltPress = 0`` is guarded by ``PedalCmd == 2``, which the
``PedalPos != 1`` branch can never satisfy).  Exploring such states burns
solver time and reports path conditions for behaviours the affected sets do
not actually cover.

:class:`FeasibleReachability` therefore walks the CFG forward from the
candidate state, carrying the symbolic environment and pushing each branch
guard onto an incremental :class:`~repro.solver.context.SolverContext`; a
target counts as reachable only if some guard-consistent path reaches it.

Two layers of reuse keep the lookahead off the quadratic path it used to be
on:

* **one persistent context per instance** -- instead of rebuilding a context
  from the empty stack for every query (which re-propagated the whole
  path-condition prefix), the context is synced to the query state by
  longest-common-prefix ``pop_to``/``push``, exactly like the executor's own
  context; consecutive sibling probes share all but one constraint;
* **walk memoization** -- the walk's answer is a deterministic function of
  the suffix region's *content* (its :mod:`~repro.cfg.region_hash` digest),
  the symbolic values of the region's *decision variables* (the entry values
  that can flow into some branch condition -- pass-through data the region
  never branches on is deliberately excluded), the slice of the path
  condition that can influence those values, and the probed target set (in
  canonical region coordinates).  Results are cached under exactly that
  key, both for whole queries and -- crucially -- at every branch node the
  walk descends into, so sibling probes that rejoin at a previously walked
  node stop re-walking (and re-querying) the shared suffix.  Keying by
  content digest makes invalidation automatic: any IR change inside the
  region changes the digest and stale entries simply never match again.

The walk itself runs on an explicit stack (a deep CFG used to blow the
interpreter recursion limit, which was silently swallowed as "all targets
reachable"), and every way it can degrade -- loop back edges, budget
exhaustion, evaluation or solver failures -- is counted in
:class:`LookaheadStatistics` so degradation is visible.

The analysis is *conservative*: on loops, evaluation failures, non-linear
guards or budget exhaustion it falls back to static reachability (explore
rather than prune), which keeps the paper's coverage guarantee intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.builder import RETURN_VARIABLE
from repro.obs import spans as _obs_spans
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.cfg.region_hash import RegionHashIndex
from repro.solver.context import SolverContext
from repro.solver.core import BudgetExhausted, ConstraintSolver, SolverError
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BoolConst,
    EvaluationError,
    Term,
    intern_term,
    negate,
    term_key,
)
from repro.symexec.evaluator import UndefinedVariableError, evaluate_expression
from repro.symexec.state import SymbolicState
from repro.symexec.summary_cache import term_symbols

#: Upper bound on CFG-node expansions per query before giving up and
#: answering conservatively.
DEFAULT_BUDGET = 4096

#: Memo value recording that the walk could not stay exact for this key (the
#: query answered "all targets coverable"); deterministic per key, so it is
#: as cacheable as an exact answer.
_INEXACT = object()

#: Reserved (non-string) key under which a walk keeps its call-frame stack
#: inside the environment dict.  The evaluator only ever looks up string
#: variable names, so the entry is invisible to expression evaluation, and
#: it forks together with the environment at branch points.
_WALK_FRAMES = ("@walk-frames",)


@dataclass
class LookaheadStatistics:
    """The lookahead's own accounting bucket.

    The lookahead shares the executor's solver (so its caches and contexts
    accumulate), which used to fold its traffic into
    ``ExecutionStatistics.solver_queries``.  These counters carve that
    traffic out: the engine subtracts them so the executor-facing numbers
    measure only the executor's own branch checks.

    ``walk_memo_hits``/``walk_memo_misses`` account the memoized walks,
    ``prefix_syncs`` counts context alignments (each reusing the
    longest common prefix instead of rebuilding), and the ``*_bailouts``
    counters make every source of conservative degradation visible:
    a budget exhaustion, a loop back edge, an evaluation failure or a solver
    error each answer "all targets coverable" instead of a precise set.
    """

    calls: int = 0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    incremental_hits: int = 0
    #: Prefix frames the lookahead's context syncs and probes retained on
    #: the shared solver's ``prefix_reuses`` counter (metered so the engine
    #: can carve lookahead traffic out of the executor-facing number).
    solver_prefix_reuses: int = 0
    walk_memo_hits: int = 0
    walk_memo_misses: int = 0
    prefix_syncs: int = 0
    budget_bailouts: int = 0
    loop_bailouts: int = 0
    eval_bailouts: int = 0
    solver_bailouts: int = 0

    def snapshot(self) -> Tuple[int, int, int, int, int, int, int]:
        """The engine-facing counters as a tuple (for cheap start/end deltas)."""
        return (
            self.calls,
            self.solver_queries,
            self.solver_cache_hits,
            self.incremental_hits,
            self.solver_prefix_reuses,
            self.walk_memo_hits,
            self.prefix_syncs,
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "incremental_hits": self.incremental_hits,
            "solver_prefix_reuses": self.solver_prefix_reuses,
            "walk_memo_hits": self.walk_memo_hits,
            "walk_memo_misses": self.walk_memo_misses,
            "prefix_syncs": self.prefix_syncs,
            "budget_bailouts": self.budget_bailouts,
            "loop_bailouts": self.loop_bailouts,
            "eval_bailouts": self.eval_bailouts,
            "solver_bailouts": self.solver_bailouts,
        }


class FeasibleReachability:
    """Solver-backed lookahead deciding which targets a state can still cover.

    Args:
        cfg: the CFG being explored.
        solver: shared complete solver (fresh when omitted).
        budget: CFG-node expansions per query before answering conservatively.
        memoize: cache walk results keyed by (region digest, relevant
            path-condition slice, environment fingerprint, canonical target
            set) and keep one persistent prefix-synced context.  ``False``
            reproduces the pre-memoization query shape -- a fresh context
            rebuilt from the empty stack per query, the state's feasibility
            re-proven at the root, no walk reuse -- and exists purely as the
            measurable baseline for the differential tests and
            ``benchmarks/bench_lookahead.py``.
        region_index: optional pre-built region hash index for ``cfg``
            (shared with the summary-cache machinery when available).
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        solver: Optional[ConstraintSolver] = None,
        budget: int = DEFAULT_BUDGET,
        memoize: bool = True,
        region_index: Optional[RegionHashIndex] = None,
    ):
        self.cfg = cfg
        self.solver = solver or ConstraintSolver()
        self.budget = budget
        self.memoize = memoize
        self.region_index = region_index or RegionHashIndex(cfg)
        self.statistics = LookaheadStatistics()
        #: One persistent context, synced per query by longest common prefix.
        self.context = SolverContext(self.solver)
        #: Memo key -> (frozenset of canonical region indices -- the
        #: coverable targets -- or ``_INEXACT``, pinned key terms).
        #: Interning is weak and the key embeds intern ids, so each entry
        #: pins the terms its key refers to: a later structurally equal
        #: probe then re-interns onto them and rebuilds the same key.
        self._memo: Dict[tuple, Tuple[object, Tuple[Term, ...]]] = {}

    def reachable_targets(
        self,
        state: SymbolicState,
        target_ids: Iterable[int],
        assume_feasible: bool = False,
    ) -> Set[int]:
        """The subset of ``target_ids`` coverable on a feasible path from ``state``.

        ``target_ids`` should already be filtered to statically reachable
        nodes; whatever cannot be decided exactly (loops, budget, evaluation
        errors) is returned as reachable, never silently dropped.

        ``assume_feasible`` skips the query-state satisfiability pre-check.
        The directed strategy sets it: the engine only ever hands
        ``should_explore`` states whose path condition passed a feasibility
        check when the constraint was appended, so re-proving it here was one
        redundant solver query per lookahead call.
        """
        targets = set(target_ids)
        if not targets:
            return set()
        # Self-time attribution: lookahead time nets out the solver queries
        # it issues (they begin their own category); one None check when
        # telemetry is off.
        recorder = _obs_spans._ACTIVE
        if recorder is not None:
            recorder.begin_category("lookahead")
        solver_stats = self.solver.statistics
        before = (
            solver_stats.queries,
            solver_stats.cache_hits,
            solver_stats.incremental_hits,
            solver_stats.prefix_reuses,
        )
        self.statistics.calls += 1
        try:
            return self._reachable_targets(state, targets, assume_feasible)
        except BudgetExhausted:
            # Deadline-budget degradation: a query the budget refused is
            # answered conservatively -- every probed target counts as
            # reachable, so nothing is ever pruned on an unproven verdict.
            # (Most budget refusals inside the walk are already converted to
            # the same answer by its SolverError bailout; this catches the
            # remaining paths, e.g. the feasibility pre-check.)
            self.statistics.solver_bailouts += 1
            return set(targets)
        finally:
            self.statistics.solver_queries += solver_stats.queries - before[0]
            self.statistics.solver_cache_hits += solver_stats.cache_hits - before[1]
            self.statistics.incremental_hits += solver_stats.incremental_hits - before[2]
            self.statistics.solver_prefix_reuses += solver_stats.prefix_reuses - before[3]
            if recorder is not None:
                recorder.end_category()

    def _reachable_targets(
        self, state: SymbolicState, targets: Set[int], assume_feasible: bool
    ) -> Set[int]:
        if not self.memoize:
            return self._reachable_targets_rebuild(state, targets)
        synced = False
        if not assume_feasible:
            # The memo's keys and hit values presuppose a feasible prefix
            # (the relevant-slice argument collapses otherwise), so an
            # un-vouched state must be checked *before* the memo is
            # consulted -- an infeasible state whose unsatisfiability lives
            # in decision-irrelevant constraints would otherwise match a
            # feasible sibling's entry.
            self.statistics.prefix_syncs += 1
            self.context.sync_to(state.path_condition.constraints)
            synced = True
            if len(self.context) and not self.context.is_satisfiable():
                # The state itself is infeasible; nothing ahead can be
                # covered.  (Not memoized: infeasible states never recur.)
                return set()
        memo_key, memo_pins = self._walk_key(
            state.node, state.env_map(), state.path_condition.constraints, targets
        )
        cached = self._memo.get(memo_key)
        if cached is not None:
            self.statistics.walk_memo_hits += 1
            value = cached[0]
            if value is _INEXACT:
                return set(targets)
            signature = self.region_index.signature(state.node)
            return {signature.nodes[position].node_id for position in value}
        self.statistics.walk_memo_misses += 1

        if not synced:
            self.statistics.prefix_syncs += 1
            self.context.sync_to(state.path_condition.constraints)

        found: Set[int] = set()
        walk = _Walk(self, self.context, targets, found, self.statistics)
        base_depth = len(self.context)
        try:
            exact = walk.run(state.node, state.env_dict())
        finally:
            # Guards pushed by an interrupted walk (bailout or early success)
            # are unwound here, leaving the context at the state's prefix.
            self.context.pop_to(base_depth)

        signature = self.region_index.signature(state.node)
        self._memo[memo_key] = (
            frozenset(signature.index[node_id] for node_id in found) if exact else _INEXACT,
            memo_pins,
        )
        if not exact:
            # Conservative completion: the caller guarantees every target is
            # statically reachable, so whatever the walk could not decide
            # exactly counts as coverable.
            return set(targets)
        return found

    def _reachable_targets_rebuild(self, state: SymbolicState, targets: Set[int]) -> Set[int]:
        """The pre-memoization query shape, kept as the measurable baseline.

        A fresh context is rebuilt from the empty stack (re-propagating the
        entire path-condition prefix), the state's feasibility is re-proven
        at the root, and nothing is reused between queries -- exactly what
        every query cost before this layer existed.  Observably equivalent
        to the memoized path; the differential tests pin that.
        """
        context = SolverContext(self.solver)
        for constraint in state.path_condition:
            context.push(constraint)
        if len(context) and not context.is_satisfiable():
            # The state itself is infeasible; nothing ahead can be covered.
            return set()
        found: Set[int] = set()
        walk = _Walk(self, context, targets, found, self.statistics)
        exact = walk.run(state.node, state.env_dict())
        return found if exact else set(targets)

    def _walk_key(
        self,
        node: CFGNode,
        env,
        constraints: Tuple[Term, ...],
        targets: Set[int],
    ) -> Tuple[tuple, Tuple[Term, ...]]:
        """The walk-from-``node``'s full functional input, in region-canonical coordinates.

        The answer of a walk (which of the still-missing targets it can
        cover) is determined by (a) the suffix region's content, (b) the
        symbolic values of the region's decision variables (every branch
        condition the walk will ever evaluate is built from them -- a value
        the region only copies around cannot steer the walk), (c) the
        satisfiability of the already-established constraints conjoined with
        guards over those values -- which, for a feasible prefix, depends
        only on the constraints *transitively sharing symbols* with them --
        and (d) the probed targets that fall inside the region (ones
        outside can never be found by the walk and are excluded from key
        and value alike).  Hashing (a) via the region digest makes the memo
        content-addressed: it survives node renumbering and goes stale
        automatically when the region's IR changes.

        Used both for whole queries (``constraints`` is the state's path
        condition) and for interior branch probes (``constraints`` is the
        context stack: path condition plus the guards pushed so far).

        Returns ``(key, pins)``: the pins are the canonical instances whose
        intern ids the key embeds, which the memo entry must keep alive
        (interning is weak) for the key to remain matchable.
        """
        signature = self.region_index.signature(node)
        index = signature.index
        canonical_targets = frozenset(
            index[target_id] for target_id in targets if target_id in index
        )
        fingerprint = []
        pins: List[Term] = []
        decision_symbols: Set[str] = set()
        for name in signature.decision_vars:
            term = env.get(name)
            if term is None:
                fingerprint.append((name, -1))
                continue
            interned = intern_term(term)
            pins.append(interned)
            fingerprint.append((name, term_key(interned)))
            decision_symbols |= term_symbols(interned)
        relevant = _relevant_constraints(constraints, decision_symbols)
        constraint_keys = []
        for constraint in relevant:
            interned = intern_term(constraint)
            pins.append(interned)
            constraint_keys.append(term_key(interned))
        key = (
            signature.digest,
            tuple(fingerprint),
            frozenset(constraint_keys),
            canonical_targets,
        )
        return key, tuple(pins)


def _relevant_constraints(
    constraints: Tuple[Term, ...], seed_symbols: Set[str]
) -> List[Term]:
    """The prefix constraints transitively connected to ``seed_symbols``.

    For a satisfiable prefix P partitioned into a slice sharing symbols
    (transitively) with the walk's guards and an independent remainder,
    ``sat(P and G) == sat(slice and G)``: the remainder is satisfiable on
    its own and mentions none of the slice's or the guards' symbols.  Only
    the slice therefore belongs in the memo key -- which is exactly what
    lets probes whose prefixes differ in irrelevant early branches share one
    walk.
    """
    if not seed_symbols:
        return []
    pending = [(constraint, term_symbols(constraint)) for constraint in constraints]
    symbols = set(seed_symbols)
    relevant: List[Term] = []
    changed = True
    while changed and pending:
        changed = False
        remaining = []
        for constraint, constraint_symbols in pending:
            if constraint_symbols & symbols:
                relevant.append(constraint)
                symbols |= constraint_symbols
                changed = True
            else:
                remaining.append((constraint, constraint_symbols))
        pending = remaining
    return relevant


class _Walk:
    """One lookahead traversal: explicit-stack DFS with guard pushes.

    The walk used to recurse per branch arm, so a CFG deeper than the
    interpreter stack raised ``RecursionError`` -- silently treated as "all
    targets reachable".  The explicit work stack makes depth a non-issue;
    the only remaining degradation sources are the step budget, loop back
    edges and evaluation/solver failures, each counted in the owner's
    statistics.
    """

    def __init__(
        self,
        owner: FeasibleReachability,
        context: SolverContext,
        targets: Set[int],
        found: Set[int],
        statistics: LookaheadStatistics,
    ):
        self.owner = owner
        self.context = context
        self.targets = targets
        self.found = found
        self.statistics = statistics
        self.steps = 0
        #: node id -> number of open visits on the current DFS path (the
        #: explicit-stack replacement for the per-branch ``on_path`` sets).
        self._on_path: Dict[int, int] = {}

    def _walk_call(self, node: CFGNode, env: Dict[str, Term]) -> Dict[str, Term]:
        """Mirror the engine's CALL scope switch inside the walk.

        Arguments are evaluated in the caller's view (failures poison the
        formal), the caller's bindings of the callee's scope names are saved
        on the walk's own frame stack, and the formals are rebound.  Caller
        locals outside the callee's scope stay in the dict -- a validated
        callee never reads them, so their walk values remain exact across
        the call.
        """
        values = []
        for arg in node.call_args:
            try:
                values.append(evaluate_expression(arg, env))
            except (UndefinedVariableError, EvaluationError, TypeError, ValueError):
                values.append(None)
        env = dict(env)
        saved = {name: env.get(name) for name in node.scope_names}
        env[_WALK_FRAMES] = env.get(_WALK_FRAMES, ()) + (saved,)
        for name in node.scope_names:
            env.pop(name, None)
        for param, value in zip(node.call_params, values):
            if value is not None:
                env[param] = value
        return env

    def _walk_call_return(self, node: CFGNode, env: Dict[str, Term]) -> Dict[str, Term]:
        """Mirror the engine's CALL_RETURN pop inside the walk.

        With a matching walk frame the caller's shadowed bindings are
        restored exactly; a walk that *started* inside the callee has no
        frame to pop, so the shadowed names are poisoned instead (the
        conservative direction -- an unknown value can never justify
        pruning).
        """
        env = dict(env)
        result = env.get(RETURN_VARIABLE)
        frames = env.get(_WALK_FRAMES, ())
        if frames:
            saved = frames[-1]
            env[_WALK_FRAMES] = frames[:-1]
            for name, value in saved.items():
                if value is None:
                    env.pop(name, None)
                else:
                    env[name] = value
        else:
            for name in node.scope_names:
                env.pop(name, None)
        if node.target is not None:
            if result is not None:
                env[node.target] = result
            else:
                env.pop(node.target, None)
        return env

    def run(self, node: CFGNode, env: Dict[str, Term]) -> bool:
        """Walk from ``node``; returns False when forced to bail out.

        On a bailout or early success the context may still hold pushed
        guards -- the owner restores it with ``pop_to``.
        """
        owner = self.owner
        cfg = owner.cfg
        work: List[tuple] = [("visit", node, env)]
        while work:
            item = work.pop()
            kind = item[0]
            if kind == "pop":
                self.context.pop()
                continue
            if kind == "leave":
                for node_id in item[1]:
                    self._on_path[node_id] -= 1
                continue
            if kind == "store":
                # Both arms of a memo-probed branch finished: the targets
                # found since the probe are exactly what a walk from that
                # branch (under the probed key) can cover.
                _, memo_key, memo_pins, store_node, found_at_entry = item
                signature = owner.region_index.signature(store_node)
                owner._memo[memo_key] = (
                    frozenset(
                        signature.index[node_id] for node_id in self.found - found_at_entry
                    ),
                    memo_pins,
                )
                continue
            if kind == "guard":
                _, guard, target, guard_env = item
                if self.found >= self.targets:
                    continue
                self.context.push(guard)
                try:
                    feasible = self.context.is_satisfiable()
                except SolverError:
                    self.statistics.solver_bailouts += 1
                    return False
                if not feasible:
                    self.context.pop()
                    continue
                work.append(("pop",))
                work.append(("visit", target, guard_env))
                continue

            # kind == "visit": follow straight-line flow inline, deferring
            # only branch arms (and their guard pushes) to the work stack.
            _, node, env = item
            entered: Optional[List[int]] = []
            while True:
                if self.found >= self.targets:
                    break
                self.steps += 1
                if self.steps > self.owner.budget:
                    self.statistics.budget_bailouts += 1
                    return False
                node_id = node.node_id
                if node_id in self.targets:
                    self.found.add(node_id)
                    if self.found >= self.targets:
                        break
                if node.kind in (NodeKind.END, NodeKind.ERROR):
                    break
                if self._on_path.get(node_id, 0) > 0:
                    # Back edge: deciding coverage across further loop
                    # iterations exactly would need bounded unrolling; stay
                    # conservative.
                    self.statistics.loop_bailouts += 1
                    return False
                self._on_path[node_id] = self._on_path.get(node_id, 0) + 1
                entered.append(node_id)
                if node.kind is NodeKind.BRANCH:
                    try:
                        condition = simplify(evaluate_expression(node.condition, env))
                    except (UndefinedVariableError, EvaluationError, TypeError, ValueError):
                        self.statistics.eval_bailouts += 1
                        return False
                    true_target = cfg.successor_on(node, TRUE_EDGE)
                    false_target = cfg.successor_on(node, FALSE_EDGE)
                    if isinstance(condition, BoolConst):
                        # Concrete branch: follow the only possible side.
                        node = true_target if condition.value else false_target
                        continue
                    # Interior memoization is keyed on the region's decision
                    # variables only; a walk that entered a call carries
                    # frame-saved bindings the key cannot see, so such
                    # branches are walked without probing or storing.
                    if owner.memoize and not env.get(_WALK_FRAMES):
                        remaining = self.targets - self.found
                        memo_key, memo_pins = owner._walk_key(
                            node, env, self.context.constraints(), remaining
                        )
                        cached = owner._memo.get(memo_key)
                        if cached is not None and cached[0] is not _INEXACT:
                            # A sibling probe already walked an identical
                            # subtree under an equivalent prefix slice:
                            # replay its finds and skip both arms.
                            self.statistics.walk_memo_hits += 1
                            signature = owner.region_index.signature(node)
                            self.found.update(
                                signature.nodes[position].node_id for position in cached[0]
                            )
                            break
                        # An _INEXACT entry (stored by a budget-limited root
                        # walk under the same key) is not replayed here: the
                        # budget is per-query, so this walk may well finish
                        # the subtree exactly -- and its store then upgrades
                        # the entry.
                        self.statistics.walk_memo_misses += 1
                        # The store marker sits below the leave marker and
                        # both arms, so it fires once the subtree completes;
                        # bailouts abandon the whole stack, so no partial
                        # subtree is ever recorded.
                        work.append(("store", memo_key, memo_pins, node, set(self.found)))
                    # The leave marker sits below both arms so the path marks
                    # stay in place until the second arm finishes.
                    work.append(("leave", entered))
                    work.append(("guard", negate(condition), false_target, env))
                    work.append(("guard", condition, true_target, env))
                    entered = None
                    break
                if node.kind is NodeKind.ASSIGN:
                    try:
                        value = evaluate_expression(node.expr, env)
                    except (UndefinedVariableError, EvaluationError, TypeError, ValueError):
                        # The write's value is unknowable, but that only
                        # matters if a later condition actually reads it:
                        # poison the variable and bail there instead of
                        # aborting walks over pass-through data-flow.
                        env = dict(env)
                        env.pop(node.target, None)
                        value = None
                    if value is not None:
                        env = dict(env)
                        env[node.target] = value
                elif node.kind is NodeKind.CALL:
                    env = self._walk_call(node, env)
                elif node.kind is NodeKind.CALL_RETURN:
                    env = self._walk_call_return(node, env)
                successors = cfg.successors(node)
                if not successors:
                    break
                if len(successors) > 1:
                    work.append(("leave", entered))
                    work.append(("visit", successors[0], env))
                    for successor in reversed(successors[1:]):
                        work.append(("visit", successor, env))
                    entered = None
                    break
                node = successors[0]
            if entered:
                # The straight-line run ended at a terminal (or with all
                # targets found): unwind its path marks immediately.
                for node_id in entered:
                    self._on_path[node_id] -= 1
            # Keep draining even when all targets are found: pending pop,
            # leave and store markers still need to fire (the guard handler
            # skips further descents, so the drain is O(stack)).
        return True
