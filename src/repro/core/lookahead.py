"""Feasibility-aware reachability lookahead for the directed search.

``AffectedLocIsReachable`` (paper Fig. 6) asks whether an unexplored affected
location can still be covered from the current state.  Pure CFG reachability
over-approximates that badly: a target can be statically reachable while
every CFG path to it is infeasible under the current path condition (in the
§2.2 example, ``AltPress = 0`` is guarded by ``PedalCmd == 2``, which the
``PedalPos != 1`` branch can never satisfy).  Exploring such states burns
solver time and reports path conditions for behaviours the affected sets do
not actually cover.

:class:`FeasibleReachability` therefore walks the CFG forward from the
candidate state, carrying the symbolic environment and pushing each branch
guard onto an incremental :class:`~repro.solver.context.SolverContext`; a
target counts as reachable only if some guard-consistent path reaches it.
The walk shares the state's path-condition prefix across all probed branches
-- exactly the prefix-reuse regime the incremental context is built for.

The analysis is *conservative*: on loops, evaluation failures, non-linear
guards or budget exhaustion it falls back to static reachability (explore
rather than prune), which keeps the paper's coverage guarantee intact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.solver.context import SolverContext
from repro.solver.core import ConstraintSolver, SolverError
from repro.solver.simplify import simplify
from repro.solver.terms import BoolConst, EvaluationError, Term, negate
from repro.symexec.evaluator import UndefinedVariableError, evaluate_expression
from repro.symexec.state import SymbolicState

#: Upper bound on CFG-node expansions per query before giving up and
#: answering conservatively.
DEFAULT_BUDGET = 4096


@dataclass
class LookaheadStatistics:
    """The lookahead's own accounting bucket.

    The lookahead shares the executor's solver (so its caches and contexts
    accumulate), which used to fold its traffic into
    ``ExecutionStatistics.solver_queries``.  These counters carve that
    traffic out: the engine subtracts them so the executor-facing numbers
    measure only the executor's own branch checks.
    """

    calls: int = 0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    incremental_hits: int = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        """The counters as a tuple (for cheap start/end deltas)."""
        return (self.calls, self.solver_queries, self.solver_cache_hits, self.incremental_hits)

    def as_dict(self) -> Dict[str, int]:
        return {
            "calls": self.calls,
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "incremental_hits": self.incremental_hits,
        }


class FeasibleReachability:
    """Solver-backed lookahead deciding which targets a state can still cover."""

    def __init__(
        self,
        cfg: ControlFlowGraph,
        solver: Optional[ConstraintSolver] = None,
        budget: int = DEFAULT_BUDGET,
    ):
        self.cfg = cfg
        self.solver = solver or ConstraintSolver()
        self.budget = budget
        self.statistics = LookaheadStatistics()

    def reachable_targets(self, state: SymbolicState, target_ids: Iterable[int]) -> Set[int]:
        """The subset of ``target_ids`` coverable on a feasible path from ``state``.

        ``target_ids`` should already be filtered to statically reachable
        nodes; whatever cannot be decided exactly (loops, budget, evaluation
        errors) is returned as reachable, never silently dropped.
        """
        targets = set(target_ids)
        if not targets:
            return set()
        solver_stats = self.solver.statistics
        before = (solver_stats.queries, solver_stats.cache_hits, solver_stats.incremental_hits)
        self.statistics.calls += 1
        try:
            return self._reachable_targets(state, targets)
        finally:
            self.statistics.solver_queries += solver_stats.queries - before[0]
            self.statistics.solver_cache_hits += solver_stats.cache_hits - before[1]
            self.statistics.incremental_hits += solver_stats.incremental_hits - before[2]

    def _reachable_targets(self, state: SymbolicState, targets: Set[int]) -> Set[int]:
        context = SolverContext(self.solver)
        for constraint in state.path_condition:
            context.push(constraint)
        if len(context) and not context.is_satisfiable():
            # The state itself is infeasible; nothing ahead can be covered.
            return set()
        found: Set[int] = set()
        walk = _Walk(self, context, targets, found)
        try:
            walk.visit(state.node, state.env_dict(), on_path=set())
        except (_Inexact, RecursionError):
            # Conservative completion: the caller guarantees every target is
            # statically reachable, so whatever the walk could not decide
            # exactly (loop, budget, evaluation failure, or a CFG deep enough
            # to exhaust the interpreter stack) counts as coverable.
            return set(targets)
        return found


class _Inexact(Exception):
    """Raised when the walk cannot stay exact (loop/budget/evaluation error)."""


class _Walk:
    """One lookahead traversal: DFS with guard pushes and env tracking."""

    def __init__(
        self,
        owner: FeasibleReachability,
        context: SolverContext,
        targets: Set[int],
        found: Set[int],
    ):
        self.owner = owner
        self.context = context
        self.targets = targets
        self.found = found
        self.steps = 0

    def visit(self, node: CFGNode, env: Dict[str, Term], on_path: Set[int]) -> None:
        cfg = self.owner.cfg
        while True:
            if self.found >= self.targets:
                return
            self.steps += 1
            if self.steps > self.owner.budget:
                raise _Inexact()
            if node.node_id in self.targets:
                self.found.add(node.node_id)
                if self.found >= self.targets:
                    return
            if node.kind in (NodeKind.END, NodeKind.ERROR):
                return
            if node.node_id in on_path:
                # Back edge: deciding coverage across further loop iterations
                # exactly would need bounded unrolling; stay conservative.
                raise _Inexact()
            on_path = on_path | {node.node_id}
            if node.kind is NodeKind.BRANCH:
                self._visit_branch(node, env, on_path)
                return
            if node.kind is NodeKind.ASSIGN:
                try:
                    value = evaluate_expression(node.expr, env)
                except (UndefinedVariableError, EvaluationError, TypeError, ValueError):
                    raise _Inexact()
                env = dict(env)
                env[node.target] = value
            successors = cfg.successors(node)
            if not successors:
                return
            if len(successors) > 1:
                for successor in successors[1:]:
                    self.visit(successor, env, on_path)
                    if self.found >= self.targets:
                        return
            node = successors[0]

    def _visit_branch(self, node: CFGNode, env: Dict[str, Term], on_path: Set[int]) -> None:
        cfg = self.owner.cfg
        try:
            condition = simplify(evaluate_expression(node.condition, env))
        except (UndefinedVariableError, EvaluationError, TypeError, ValueError):
            raise _Inexact()
        true_target = cfg.successor_on(node, TRUE_EDGE)
        false_target = cfg.successor_on(node, FALSE_EDGE)
        if isinstance(condition, BoolConst):
            target = true_target if condition.value else false_target
            self.visit(target, env, on_path)
            return
        for guard, target in ((condition, true_target), (negate(condition), false_target)):
            if self.found >= self.targets:
                return
            self.context.push(guard)
            try:
                try:
                    feasible = self.context.is_satisfiable()
                except SolverError:
                    raise _Inexact()
                if feasible:
                    self.visit(target, env, on_path)
            finally:
                self.context.pop()
