"""Directed symbolic execution (paper §3.3, Fig. 6).

The directed search is implemented as an
:class:`~repro.symexec.strategy.ExplorationStrategy` plugged into the shared
symbolic execution engine:

* ``on_state``  implements ``UpdateExploredSet``;
* ``should_explore`` implements ``AffectedLocIsReachable`` (including
  ``CheckLoops`` and ``ResetUnExploredSet``);
* the four global sets ``ExCond``/``ExWrite``/``UnExCond``/``UnExWrite``
  live on the strategy object and persist across backtracking, exactly as the
  paper's pseudocode keeps them global.

Every feasible path whose remaining suffix cannot reach an unexplored
affected node is pruned; Theorem 3.10 (each affected-node sequence on some
feasible path is covered by exactly one explored path) is checked against
full symbolic execution by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.cfg.dataflow import Reachability
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode, NodeKind
from repro.cfg.region_hash import RegionSignature
from repro.cfg.scc import SCCAnalysis
from repro.core.affected import AffectedSets
from repro.core.lookahead import FeasibleReachability, LookaheadStatistics
from repro.solver.core import ConstraintSolver
from repro.symexec.state import SymbolicState
from repro.symexec.strategy import ExplorationStrategy


@dataclass(frozen=True)
class DirectedTraceRow:
    """One row of the Table 1 style exploration trace."""

    trace: Tuple[str, ...]
    ex_write: Tuple[str, ...]
    ex_cond: Tuple[str, ...]
    unex_write: Tuple[str, ...]
    unex_cond: Tuple[str, ...]
    pruned: bool = False

    def __str__(self) -> str:
        path = "<" + ", ".join(self.trace) + (" (no path)>" if self.pruned else ">")
        return (
            f"{path:<55} Ex W={{{', '.join(self.ex_write)}}} "
            f"Ex C={{{', '.join(self.ex_cond)}}} "
            f"UnEx W={{{', '.join(self.unex_write)}}} "
            f"UnEx C={{{', '.join(self.unex_cond)}}}"
        )


class DirectedExplorationStrategy(ExplorationStrategy):
    """The DiSE search strategy over a modified-version CFG.

    Args:
        cfg: the CFG of the modified procedure.
        affected: the affected node sets computed by the static analysis.
        record_trace: keep a Table-1 style trace of set evolution (used by
            the trace benchmark; off by default because it is verbose).
        enable_reset: when False, ``ResetUnExploredSet`` calls are skipped
            (ablation only -- this breaks the coverage guarantee).
        enable_pruning: when False, ``should_explore`` always returns True
            (ablation only -- directed execution degenerates to full SE).
        solver: constraint solver backing the feasibility lookahead (shared
            with the executor when the DiSE pipeline constructs the strategy,
            so lookahead queries hit the same caches and incremental
            contexts); a private solver is created when omitted.
        feasibility_lookahead: when True (default), ``AffectedLocIsReachable``
            checks that some *feasible* path -- not merely a CFG path --
            reaches an unexplored affected node before exploring a successor.
            Static reachability alone explores branches whose every path to an
            affected node contradicts the current path condition, generating
            spurious affected path conditions (see
            :mod:`repro.core.lookahead`).
        lookahead_memoize: when False, the lookahead re-walks the CFG suffix
            on every query instead of replaying memoized walk results
            (measurement/ablation switch used by the differential tests and
            ``benchmarks/bench_lookahead.py``).
        complete_covered_paths: an extension beyond the paper's pseudocode.
            When True, a path that already covered affected nodes but whose
            every remaining branch choice was pruned is still driven to the
            exit along the first feasible choice, so every covered
            affected-node sequence yields a fully formed path condition.  The
            paper's algorithm (and the default here) abandons such paths,
            occasionally reporting fewer path conditions; turning this on may
            report a few extra (conservative) ones instead.
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        affected: AffectedSets,
        record_trace: bool = False,
        enable_reset: bool = True,
        enable_pruning: bool = True,
        solver: Optional[ConstraintSolver] = None,
        feasibility_lookahead: bool = True,
        lookahead_memoize: bool = True,
        complete_covered_paths: bool = False,
    ):
        self.cfg = cfg
        self.affected = affected
        self.record_trace = record_trace
        self.enable_reset = enable_reset
        self.enable_pruning = enable_pruning
        self.complete_covered_paths = complete_covered_paths

        self.reachability = Reachability(cfg)
        self.scc = SCCAnalysis(cfg)
        self.lookahead: Optional[FeasibleReachability] = (
            FeasibleReachability(cfg, solver=solver, memoize=lookahead_memoize)
            if feasibility_lookahead
            else None
        )

        # The four global sets of Fig. 6 (initialised in on_run_start).
        self.ex_cond: Set[int] = set()
        self.ex_write: Set[int] = set()
        self.unex_cond: Set[int] = set(affected.acn)
        self.unex_write: Set[int] = set(affected.awn)

        self.trace_rows: List[DirectedTraceRow] = []
        self.prune_count = 0

    # -- lifecycle -------------------------------------------------------------

    def on_run_start(self, initial_state: SymbolicState) -> None:
        self.ex_cond = set()
        self.ex_write = set()
        self.unex_cond = set(self.affected.acn)
        self.unex_write = set(self.affected.awn)
        self.trace_rows = []
        self.prune_count = 0
        if self.record_trace:
            self._record(initial_state.trace, pruned=False)

    # -- UpdateExploredSet (Fig. 6 lines 29-35) ---------------------------------

    def on_state(self, state: SymbolicState) -> None:
        node_id = state.node.node_id
        updated = False
        if node_id in self.unex_write:
            self.unex_write.discard(node_id)
            self.ex_write.add(node_id)
            updated = True
        if node_id in self.unex_cond:
            self.unex_cond.discard(node_id)
            self.ex_cond.add(node_id)
            updated = True
        if self.record_trace and updated:
            self._record(state.trace, pruned=False)

    # -- ResetUnExploredSet (Fig. 6 lines 36-42) --------------------------------

    def _reset_unexplored(self, node_id: int) -> None:
        if node_id in self.ex_write:
            self.ex_write.discard(node_id)
            self.unex_write.add(node_id)
        if node_id in self.ex_cond:
            self.ex_cond.discard(node_id)
            self.unex_cond.add(node_id)

    # -- CheckLoops (Fig. 6 lines 25-28) ----------------------------------------

    def _check_loops(self, node: CFGNode) -> None:
        if not self.scc.is_loop_entry(node):
            return
        for member_id in self.scc.scc_of(node):
            self._reset_unexplored(member_id)

    # -- AffectedLocIsReachable (Fig. 6 lines 12-24) -----------------------------

    def should_explore(self, successor: SymbolicState) -> bool:
        if not self.enable_pruning:
            return True
        node = successor.node
        if node.kind in (NodeKind.END, NodeKind.ERROR):
            # Terminal successors are never pruned: following them costs
            # nothing (they have no successors of their own) and it is what
            # lets a completed path report its fully formed path condition and
            # lets assertion violations introduced by a change be reported
            # (paper §5.1: assert de-sugars into a branch plus a throw).
            return True
        self._check_loops(node)
        unexplored = self.unex_write | self.unex_cond
        explored = self.ex_write | self.ex_cond
        statically_reachable = {
            unexplored_id
            for unexplored_id in unexplored
            if self.reachability.is_cfg_path(node, self.cfg.node(unexplored_id))
        }
        if self.lookahead is not None and statically_reachable:
            # Every state the engine hands to should_explore carries a path
            # condition that passed a feasibility check when its last
            # constraint was appended, so the lookahead can skip re-proving
            # it (assume_feasible).
            coverable = self.lookahead.reachable_targets(
                successor, statically_reachable, assume_feasible=True
            )
        else:
            coverable = statically_reachable
        is_reachable = bool(coverable)
        if self.enable_reset:
            for unexplored_id in sorted(coverable):
                target = self.cfg.node(unexplored_id)
                for explored_id in sorted(explored):
                    if not self.reachability.is_cfg_path(target, self.cfg.node(explored_id)):
                        continue
                    self._reset_unexplored(explored_id)
        if not is_reachable:
            self.prune_count += 1
            if self.record_trace:
                self._record(successor.trace, pruned=True)
        return is_reachable

    # -- summary-cache protocol --------------------------------------------------

    @property
    def supports_partial_replay(self) -> bool:
        """Segment composition reorders in-segment backtracking relative to
        below-boundary exploration, which the mutable Fig. 6 sets observe;
        only whole-suffix replay (whose ordering is preserved) is sound here.
        """
        return False

    @property
    def has_global_state(self) -> bool:
        """The Fig. 6 sets evolve with exploration order, so replay tokens
        captured by a collector that skipped subtrees come from drifted
        state; the shard scheduler must chain collection waves to keep
        shard keys exact.
        """
        return True

    def _canonical(self, ids: Set[int], region: RegionSignature) -> FrozenSet[int]:
        index = region.index
        return frozenset(index[i] for i in ids if i in index)

    def replay_token(self, state: SymbolicState, region: RegionSignature) -> Optional[Hashable]:
        """The in-region slice of the Fig. 6 sets, in canonical coordinates.

        Every decision this strategy takes while a subtree at ``state`` is
        explored depends only on (a) the region's structure, captured by the
        cache's region digest, and (b) the region slice of the four global
        sets: ``should_explore`` filters targets by reachability from an
        in-region node (so only in-region unexplored nodes matter), the
        reset rule touches nodes reachable *from* an in-region target (again
        in-region), and ``CheckLoops`` resets SCC members of in-region nodes
        (SCCs never straddle the region border because regions are closed
        under reachability).  With ``complete_covered_paths`` the
        force-completion rule additionally inspects whether the *prefix*
        trace covered an affected node, so that bit joins the token.
        Returns ``None`` while recording a Table-1 trace: replay skips the
        per-state callbacks the trace rows are built from.
        """
        if self.record_trace:
            return None
        token: Tuple[Hashable, ...] = (
            self._canonical(self.unex_cond, region),
            self._canonical(self.unex_write, region),
            self._canonical(self.ex_cond, region),
            self._canonical(self.ex_write, region),
            self.enable_reset,
            self.enable_pruning,
        )
        if self.complete_covered_paths:
            affected_ids = self.affected.acn | self.affected.awn
            token += (True, any(node_id in affected_ids for node_id in state.trace))
        return token

    def region_snapshot(self, region: RegionSignature) -> Hashable:
        return (
            self._canonical(self.unex_cond, region),
            self._canonical(self.unex_write, region),
            self._canonical(self.ex_cond, region),
            self._canonical(self.ex_write, region),
        )

    def restore_region(self, region: RegionSignature, snapshot: Hashable) -> None:
        """Apply a recorded subtree's net effect on the in-region sets."""
        node_ids = region.node_ids
        nodes = region.nodes
        for attribute, canonical in zip(
            ("unex_cond", "unex_write", "ex_cond", "ex_write"), snapshot
        ):
            current: Set[int] = getattr(self, attribute)
            rebuilt = {i for i in current if i not in node_ids}
            rebuilt.update(nodes[index].node_id for index in canonical)
            setattr(self, attribute, rebuilt)

    def lookahead_statistics(self) -> Optional[LookaheadStatistics]:
        return self.lookahead.statistics if self.lookahead is not None else None

    def lookahead_shares_solver(self, solver: ConstraintSolver) -> bool:
        return self.lookahead is not None and self.lookahead.solver is solver

    # -- completion fallback -------------------------------------------------------

    def should_force_completion(self, state: SymbolicState) -> bool:
        """Optionally let a path that covered affected nodes run to completion.

        Only active when ``complete_covered_paths`` is set (see the class
        docstring); the default mirrors the paper's pseudocode and abandons
        the path.  Paths that never touched an affected node are always left
        pruned, which is what produces the zero-path-condition rows of
        Table 2.
        """
        if not (self.enable_pruning and self.complete_covered_paths):
            return False
        affected_ids = self.affected.acn | self.affected.awn
        return any(node_id in affected_ids for node_id in state.trace)

    # -- trace -------------------------------------------------------------------

    def _record(self, trace: Tuple[int, ...], pruned: bool) -> None:
        names = tuple(
            self.cfg.node(node_id).name
            for node_id in trace
            if node_id >= 0  # skip synthetic begin/end in the printed sequence
        )
        self.trace_rows.append(
            DirectedTraceRow(
                trace=names,
                ex_write=self._names(self.ex_write),
                ex_cond=self._names(self.ex_cond),
                unex_write=self._names(self.unex_write),
                unex_cond=self._names(self.unex_cond),
                pruned=pruned,
            )
        )

    def _names(self, ids: Set[int]) -> Tuple[str, ...]:
        return tuple(self.cfg.node(i).name for i in sorted(ids))
