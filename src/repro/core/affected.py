"""Computation of affected program locations (paper §3.2, Figures 3-5).

Two sets of CFG nodes of the modified program are computed:

* ``ACN`` -- affected conditional (branch) nodes; these directly lead to the
  generation of affected path conditions;
* ``AWN`` -- affected write nodes; these indirectly lead to affected path
  conditions, either because they define a variable later read at an affected
  branch, or because their reachability is control dependent on an affected
  branch.

The sets are seeded with the changed/added nodes reported by the diff
analysis (plus the image of nodes affected by removals, see
:mod:`repro.core.removed`) and grown to a fixed point with the rules of
Fig. 3, after which the reaching-definitions rule of Fig. 4 is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Set, Tuple

from repro.cfg.control_dependence import ControlDependence
from repro.cfg.dataflow import DefUse, Reachability
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode


@dataclass(frozen=True)
class RuleApplication:
    """One row of the fixed-point trace (paper Fig. 5(b))."""

    acn: Tuple[str, ...]
    awn: Tuple[str, ...]
    source: str
    target: str
    rule: str

    def __str__(self) -> str:
        acn = "{" + ", ".join(self.acn) + "}"
        awn = "{" + ", ".join(self.awn) + "}"
        if not self.rule:
            return f"{acn:<40} {awn:<50} (initial)"
        return f"{acn:<40} {awn:<50} {self.source:>4} {self.target:>4}  {self.rule}"


@dataclass
class AffectedSets:
    """The affected conditional and write node sets for one CFG."""

    cfg: ControlFlowGraph
    acn: Set[int] = field(default_factory=set)
    awn: Set[int] = field(default_factory=set)
    trace: List[RuleApplication] = field(default_factory=list)

    # -- queries --------------------------------------------------------------

    def affected_conditional_nodes(self) -> List[CFGNode]:
        return [self.cfg.node(i) for i in sorted(self.acn)]

    def affected_write_nodes(self) -> List[CFGNode]:
        return [self.cfg.node(i) for i in sorted(self.awn)]

    def all_affected_nodes(self) -> List[CFGNode]:
        return [self.cfg.node(i) for i in sorted(self.acn | self.awn)]

    def count(self) -> int:
        """Total number of affected nodes (the "Affected" column of Table 2)."""
        return len(self.acn | self.awn)

    def is_empty(self) -> bool:
        return not (self.acn or self.awn)

    def contains(self, node: CFGNode) -> bool:
        return node.node_id in self.acn or node.node_id in self.awn

    def names(self) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Paper-style node names for (ACN, AWN)."""
        return (
            tuple(n.name for n in self.affected_conditional_nodes()),
            tuple(n.name for n in self.affected_write_nodes()),
        )

    def describe(self) -> str:
        acn_names, awn_names = self.names()
        return f"ACN = {{{', '.join(acn_names)}}}\nAWN = {{{', '.join(awn_names)}}}"


class AffectedLocationAnalysis:
    """The fixed-point analysis over a single CFG.

    Args:
        cfg: the CFG over which the affected sets are computed.
        apply_rule4: when False the reaching-definitions rule (Fig. 4) is
            skipped; exists only for the ablation benchmark.
        forward_writes: apply the forward data-flow closure rule in addition
            to the paper's published rules.  The published rules (1)-(3) only
            propagate from an affected *write* to a *conditional* that reads
            its variable; they do not propagate through chains of writes
            (``PedalCmd`` feeding ``BrakeCmd`` feeding a branch).  The paper's
            own example has no such chains, but realistic code (and our
            artifact re-creations) does, so by default this reproduction also
            applies::

                if ni in AWN and nj in Write and Def(ni) in Use(nj)
                   and IsCFGPath(ni, nj):  AWN := AWN ∪ {nj}

            Set ``forward_writes=False`` for the strict published rule set
            (used by the Figure 5(b) reproduction and the ablation benchmark).
    """

    def __init__(
        self,
        cfg: ControlFlowGraph,
        apply_rule4: bool = True,
        forward_writes: bool = True,
    ):
        self.cfg = cfg
        self.apply_rule4 = apply_rule4
        self.forward_writes = forward_writes
        self.control_dependence = ControlDependence(cfg)
        self.def_use = DefUse(cfg)
        self.reachability = Reachability(cfg)

    def compute(
        self,
        seed_conditionals: Iterable[CFGNode] = (),
        seed_writes: Iterable[CFGNode] = (),
        record_trace: bool = True,
    ) -> AffectedSets:
        """Run the fixed point starting from the given seed nodes."""
        sets = AffectedSets(self.cfg)
        sets.acn = {n.node_id for n in seed_conditionals}
        sets.awn = {n.node_id for n in seed_writes}
        if record_trace:
            self._trace(sets, None, None, "")

        changed = True
        while changed:
            changed = False
            changed |= self._apply_control_dependence_rules(sets, record_trace)
            changed |= self._apply_data_flow_rule(sets, record_trace)
            if self.forward_writes:
                changed |= self._apply_forward_write_rule(sets, record_trace)
        if self.apply_rule4:
            self._apply_reaching_definition_rule(sets, record_trace)
        return sets

    # -- Fig. 3 rules ---------------------------------------------------------

    def _apply_control_dependence_rules(self, sets: AffectedSets, record: bool) -> bool:
        """Rules (1) and (2): nodes control dependent on an affected conditional.

        Conditional dependents are added before write dependents of the same
        source, matching the order of the paper's Fig. 5(b) demonstration.
        """
        changed = False
        for source_id in sorted(sets.acn):
            source = self.cfg.node(source_id)
            dependents = [self.cfg.node(i) for i in sorted(self.control_dependence.dependents_of(source))]
            for target in [d for d in dependents if d.is_branch] + [d for d in dependents if d.is_write]:
                if target.is_branch and target.node_id not in sets.acn:
                    sets.acn.add(target.node_id)
                    changed = True
                    if record:
                        self._trace(sets, source, target, "Eq. (1)")
                elif target.is_write and target.node_id not in sets.awn:
                    sets.awn.add(target.node_id)
                    changed = True
                    if record:
                        self._trace(sets, source, target, "Eq. (2)")
        return changed

    def _apply_data_flow_rule(self, sets: AffectedSets, record: bool) -> bool:
        """Rule (3): conditionals that read a variable defined at an affected write."""
        changed = False
        for source_id in sorted(sets.awn):
            source = self.cfg.node(source_id)
            defined = self.def_use.definitions(source)
            if not defined:
                continue
            for target in self.cfg.branch_nodes():
                if target.node_id in sets.acn:
                    continue
                if not any(variable in self.def_use.uses(target) for variable in defined):
                    continue
                if not self.reachability.is_cfg_path(source, target):
                    continue
                sets.acn.add(target.node_id)
                changed = True
                if record:
                    self._trace(sets, source, target, "Eq. (3)")
        return changed

    def _apply_forward_write_rule(self, sets: AffectedSets, record: bool) -> bool:
        """Forward closure: writes that read a variable defined at an affected write.

        This is the documented extension rule (see the class docstring); it is
        what makes affectedness propagate through intermediate variables.
        """
        changed = False
        for source_id in sorted(sets.awn):
            source = self.cfg.node(source_id)
            defined = self.def_use.definitions(source)
            if not defined:
                continue
            for target in self.cfg.write_nodes():
                if target.node_id in sets.awn:
                    continue
                if not any(variable in self.def_use.uses(target) for variable in defined):
                    continue
                if not self.reachability.is_cfg_path(source, target):
                    continue
                sets.awn.add(target.node_id)
                changed = True
                if record:
                    self._trace(sets, source, target, "Eq. (F)")
        return changed

    # -- Fig. 4 rule ----------------------------------------------------------

    def _apply_reaching_definition_rule(self, sets: AffectedSets, record: bool) -> bool:
        """Rule (4): writes whose definitions flow into an affected node."""
        changed_any = False
        changed = True
        while changed:
            changed = False
            for source in self.cfg.write_nodes():
                if source.node_id in sets.awn:
                    continue
                defined = self.def_use.definitions(source)
                if not defined:
                    continue
                for target_id in sorted(sets.awn | sets.acn):
                    target = self.cfg.node(target_id)
                    if not any(variable in self.def_use.uses(target) for variable in defined):
                        continue
                    if not self.reachability.is_cfg_path(source, target):
                        continue
                    sets.awn.add(source.node_id)
                    changed = True
                    changed_any = True
                    if record:
                        self._trace(sets, source, target, "Eq. (4)")
                    break
        return changed_any

    # -- trace ----------------------------------------------------------------

    @staticmethod
    def _trace(
        sets: AffectedSets,
        source: Optional[CFGNode],
        target: Optional[CFGNode],
        rule: str,
    ) -> None:
        acn_names = tuple(n.name for n in sets.affected_conditional_nodes())
        awn_names = tuple(n.name for n in sets.affected_write_nodes())
        sets.trace.append(
            RuleApplication(
                acn=acn_names,
                awn=awn_names,
                source=source.name if source is not None else "",
                target=target.name if target is not None else "",
                rule=rule,
            )
        )


def compute_affected_sets(
    cfg: ControlFlowGraph,
    seed_conditionals: Iterable[CFGNode] = (),
    seed_writes: Iterable[CFGNode] = (),
    apply_rule4: bool = True,
) -> AffectedSets:
    """Convenience wrapper around :class:`AffectedLocationAnalysis`."""
    analysis = AffectedLocationAnalysis(cfg, apply_rule4=apply_rule4)
    return analysis.compute(seed_conditionals, seed_writes)
