"""DiSE: the paper's primary contribution.

* :mod:`repro.core.affected` -- affected-location computation (Fig. 3/4).
* :mod:`repro.core.removed` -- handling of removed instructions (Fig. 5(a)).
* :mod:`repro.core.directed` -- the directed search strategy (Fig. 6).
* :mod:`repro.core.dise` -- the end-to-end pipeline and DiSE-vs-full comparison.
"""

from repro.core.affected import (
    AffectedLocationAnalysis,
    AffectedSets,
    RuleApplication,
    compute_affected_sets,
)
from repro.core.directed import DirectedExplorationStrategy, DirectedTraceRow
from repro.core.dise import (
    ComparisonRow,
    DiSE,
    DiSEResult,
    DiSEResultStatic,
    compare_dise_with_full,
    run_dise,
)
from repro.core.removed import RemovedNodeEffects, compute_removed_node_effects

__all__ = [
    "AffectedLocationAnalysis",
    "AffectedSets",
    "RuleApplication",
    "compute_affected_sets",
    "DirectedExplorationStrategy",
    "DirectedTraceRow",
    "ComparisonRow",
    "DiSE",
    "DiSEResult",
    "DiSEResultStatic",
    "compare_dise_with_full",
    "run_dise",
    "RemovedNodeEffects",
    "compute_removed_node_effects",
]
