"""Handling of removed instructions (paper Fig. 5(a), ``removeNodes``).

Nodes removed from the base version do not exist in the modified CFG, but
they may still influence how the modified version behaves (a deleted write,
for instance, changes which definition reaches a later branch).  The paper
handles this by running the affected-location fixed point *on the base CFG*,
seeded with the removed nodes, and then translating the resulting affected
sets into modified-CFG nodes through ``diffMap``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Set, Tuple

from repro.cfg.ir import CFGNode
from repro.core.affected import AffectedLocationAnalysis, AffectedSets
from repro.diff.diff_map import DiffMap


@dataclass
class RemovedNodeEffects:
    """Modified-CFG nodes affected by instructions removed from the base version."""

    base_affected: AffectedSets
    mod_conditionals: List[CFGNode] = field(default_factory=list)
    mod_writes: List[CFGNode] = field(default_factory=list)

    def is_empty(self) -> bool:
        return not (self.mod_conditionals or self.mod_writes)


def compute_removed_node_effects(
    diff_map: DiffMap, apply_rule4: bool = True, forward_writes: bool = True
) -> RemovedNodeEffects:
    """``removeNodes(CFGbase, diffMap)`` from Fig. 5(a).

    Runs the affected-set fixed point on the base CFG, seeded with the
    removed conditional and write nodes, then uses ``diffMap`` to translate
    the resulting base nodes to their modified-version counterparts.  Removed
    nodes themselves map to nothing and drop out (``updateSets``).
    """
    removed = diff_map.removed_base_nodes()
    seed_conditionals = [n for n in removed if n.is_branch]
    seed_writes = [n for n in removed if n.is_write]

    analysis = AffectedLocationAnalysis(
        diff_map.cfg_base, apply_rule4=apply_rule4, forward_writes=forward_writes
    )
    base_affected = analysis.compute(seed_conditionals, seed_writes, record_trace=False)

    effects = RemovedNodeEffects(base_affected=base_affected)
    effects.mod_conditionals = _update_sets(base_affected.affected_conditional_nodes(), diff_map)
    effects.mod_writes = _update_sets(base_affected.affected_write_nodes(), diff_map)
    return effects


def _update_sets(base_nodes: Iterable[CFGNode], diff_map: DiffMap) -> List[CFGNode]:
    """``updateSets(AN, diffMap)``: map base nodes to modified nodes, dropping removals."""
    mapped: List[CFGNode] = []
    seen: Set[int] = set()
    for base_node in base_nodes:
        mod_node = diff_map.get(base_node)
        if mod_node is None:
            continue
        if mod_node.node_id in seen:
            continue
        seen.add(mod_node.node_id)
        mapped.append(mod_node)
    return mapped
