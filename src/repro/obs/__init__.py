"""Unified telemetry: hierarchical spans, metrics, cross-process traces.

The one observability entry point for the whole pipeline (ROADMAP
"fleet-scale" hit-rate telemetry and the cost model's feature feed).
Everything is stdlib-only and off by default; see ``README.md`` in this
package for the span model and how to open exported traces in Perfetto.

Typical use::

    from repro import obs

    with obs.recording(name="asw-sweep") as recorder:
        report = VersionHistoryRunner(artifact, workers=4).run()
    obs.export.write_chrome_trace(recorder, "asw.trace.json")

Inside the ``recording`` block every instrumented layer (DiSE phases,
history legs, parallel waves, shard workers, solver/lookahead/replay
self-time, fault injections) lands in the recorder; with no recording
active the instrumented hot paths cost one module-attribute read and a
``None`` check -- no allocation.

API surface:

* :func:`enable` / :func:`disable` / :func:`active` -- the global switch.
* :func:`recording` -- context manager: install a fresh recorder, open a
  root span, hand the recorder back.
* :func:`span` -- open a span when recording, else a shared no-op.
* :func:`timed` -- *always* measures (it replaces ad-hoc
  ``time.perf_counter()`` bookkeeping, so callers read ``.seconds`` even
  when telemetry is off) and additionally records a span when recording.
* :func:`event` / :func:`counter` / :func:`observe` -- no-ops when off.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.obs import export, metrics, spans
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.spans import ObsError, Span, TraceRecorder, active, install, worker_recorder

__all__ = [
    "ObsError",
    "Span",
    "TraceRecorder",
    "MetricsRegistry",
    "Histogram",
    "active",
    "install",
    "enable",
    "disable",
    "recording",
    "span",
    "timed",
    "event",
    "counter",
    "observe",
    "worker_recorder",
    "export",
    "metrics",
    "spans",
]


def enable(process: str = "main", detail: bool = False) -> TraceRecorder:
    """Install (and return) a fresh recorder as the active one."""
    recorder = TraceRecorder(process=process, detail=detail)
    install(recorder)
    return recorder


def disable() -> Optional[TraceRecorder]:
    """Turn telemetry off; returns the recorder that was active (if any)."""
    return install(None)


class recording:
    """``with obs.recording(name="run") as recorder:`` -- scoped telemetry.

    Installs a fresh recorder (restoring whatever was active before on
    exit, so recordings nest safely in tests), opens a root span and
    closes every span left open when the block exits.
    """

    def __init__(self, name: str = "run", detail: bool = False, process: str = "main", **attributes):
        self._name = name
        self._detail = detail
        self._process = process
        self._attributes = attributes
        self._previous: Optional[TraceRecorder] = None
        self.recorder: Optional[TraceRecorder] = None

    def __enter__(self) -> TraceRecorder:
        self.recorder = TraceRecorder(process=self._process, detail=self._detail)
        self._previous = install(self.recorder)
        self.recorder.start_span(self._name, "run", **self._attributes)
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> None:
        self.recorder.finish()
        install(self._previous)


class _NoopSpanContext:
    """Shared do-nothing context manager for disabled ``obs.span`` calls."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return None


_NOOP_SPAN = _NoopSpanContext()


def span(name: str, category: str = "run", **attributes):
    """A span context manager, or a shared no-op when telemetry is off."""
    recorder = spans._ACTIVE
    if recorder is None:
        return _NOOP_SPAN
    return recorder.span(name, category, **attributes)


class timed:
    """Measure a block on the monotonic clock; record a span when active.

    This is the migration target for the ad-hoc ``perf_counter()``
    bookkeeping: the caller still gets ``.seconds`` unconditionally, and
    when a recorder is installed the same interval appears in the trace
    (one clock, one number).  ``.span`` is the recorded span or None.
    """

    __slots__ = ("_name", "_category", "_attributes", "_start", "_recorder", "seconds", "span")

    def __init__(self, name: str, category: str = "run", **attributes):
        self._name = name
        self._category = category
        self._attributes = attributes
        self.seconds = 0.0
        self.span: Optional[Span] = None
        self._recorder: Optional[TraceRecorder] = None

    def __enter__(self) -> "timed":
        # Captured here so a recorder swapped out mid-block (worker
        # install/restore) cannot orphan the close.
        self._recorder = spans._ACTIVE
        if self._recorder is not None:
            self.span = self._recorder.start_span(self._name, self._category, **self._attributes)
            self._start = self.span.start
        else:
            self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.span is not None:
            self._recorder.end_span(self.span)
            self.seconds = self.span.seconds
        else:
            self.seconds = time.perf_counter() - self._start


def event(name: str, category: str = "event", **attributes) -> None:
    """Record an instant event (fault fired, shard failed); no-op when off."""
    recorder = spans._ACTIVE
    if recorder is not None:
        recorder.event(name, category, **attributes)


def counter(name: str, value: float = 1) -> None:
    """Increment a registry counter; no-op when off."""
    recorder = spans._ACTIVE
    if recorder is not None:
        recorder.metrics.inc(name, value)


def observe(name: str, value: float) -> None:
    """Observe a histogram value; no-op when off."""
    recorder = spans._ACTIVE
    if recorder is not None:
        recorder.metrics.observe(name, value)


def worker_context() -> Optional[Dict]:
    """The trace context a parent ships inside worker task payloads.

    None when telemetry is off (workers then record nothing); otherwise a
    small JSON dict telling the worker to build a
    :func:`worker_recorder` and ship its exported payload home in the
    shard result envelope.
    """
    recorder = spans._ACTIVE
    if recorder is None:
        return None
    return {"detail": bool(recorder.detail)}
