"""The metrics registry: counters, gauges, histograms, registered sources.

Three metric kinds, all process-local and merged additively across the
process fence:

* **counters** -- monotonically growing floats (``inc``).
* **gauges** -- last-written value (``gauge``).  The existing statistics
  objects (``SolverStatistics``, ``ExecutionStatistics``,
  ``SummaryCacheStatistics``, ``LookaheadStatistics``, ``ParallelReport``)
  register as *sources*: anything with an ``as_dict()`` method.  At
  collection time each source is snapshotted into gauges under its prefix,
  so the ~30 hand-threaded counters land in one registry without any of
  them changing shape.
* **histograms** -- fixed-bound bucket counts plus count/total/min/max
  (``observe``).  These are the cost-model feature feed: shard seconds,
  wave durations and per-version leg times distribute here instead of
  being averaged away.

Zero dependencies, pure JSON on export (:meth:`MetricsRegistry.collect`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Histogram", "MetricsRegistry", "DEFAULT_BOUNDS"]

#: Default histogram bucket upper bounds -- tuned for seconds-scale
#: observations (solve times, shard times, leg times).  A value larger
#: than every bound lands in the overflow bucket.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    30.0,
)


class Histogram:
    """Fixed-bound bucket histogram with count/total/min/max."""

    __slots__ = ("bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # One bucket per bound plus the overflow bucket.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        position = len(self.bounds)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                position = index
                break
        self.buckets[position] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """The q-quantile (``0 <= q <= 1``) estimated from the buckets.

        Exact when every observation was equal (``min == max``); otherwise
        interpolated within the bucket the quantile falls in.  The default
        bounds are log-spaced, so interpolation is geometric (log-linear)
        whenever the bucket's edges are positive -- a linear walk through,
        say, the (0.5, 1.0] bucket would systematically overestimate low
        quantiles of a long-tailed seconds distribution.  Bucket edges are
        clamped to the observed ``min``/``max``, which also bounds the
        otherwise open overflow bucket.  Returns None on an empty histogram.
        """
        if not self.count:
            return None
        if self.min == self.max:
            return self.min
        if q <= 0.0:
            return self.min
        if q >= 1.0:
            return self.max
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count and cumulative + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.min
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                lower = max(lower, self.min)
                upper = min(max(upper, lower), self.max)
                fraction = (target - cumulative) / bucket_count
                if lower > 0 and upper > lower:
                    value = lower * (upper / lower) ** fraction
                else:
                    value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def as_dict(self) -> Dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "total": round(self.total, 9),
            "min": self.min,
            "max": self.max,
        }

    def merge_dict(self, data: Dict) -> bool:
        """Fold an exported histogram dict in; False when malformed."""
        try:
            bounds = tuple(data["bounds"])
            buckets = list(data["buckets"])
            count = int(data["count"])
            total = float(data["total"])
        except (KeyError, TypeError, ValueError):
            return False
        if bounds != self.bounds or len(buckets) != len(self.buckets):
            return False
        for index, value in enumerate(buckets):
            self.buckets[index] += int(value)
        self.count += count
        self.total += total
        for extreme, pick in (("min", min), ("max", max)):
            value = data.get(extreme)
            if value is None:
                continue
            current = getattr(self, extreme)
            setattr(self, extreme, value if current is None else pick(current, value))
        return True


class MetricsRegistry:
    """Counters + gauges + histograms + snapshot-on-collect sources."""

    def __init__(self):
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._sources: List[Tuple[str, object]] = []

    # -- writes ---------------------------------------------------------------

    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        histogram.observe(value)

    def register(self, prefix: str, source: object) -> None:
        """Register a statistics source (anything with ``as_dict()``).

        Snapshotted at :meth:`collect` time under ``<prefix>.<key>``
        gauges; only scalar values are taken (nested dicts/lists -- e.g. a
        report's ``failure_reasons`` -- are skipped so the flat registry
        stays honestly typed).  Re-registering the same object under the
        same prefix is a no-op.
        """
        for existing_prefix, existing in self._sources:
            if existing is source and existing_prefix == prefix:
                return
        self._sources.append((prefix, source))

    # -- reads ----------------------------------------------------------------

    def snapshot_sources(self) -> None:
        """Pull every registered source's scalars into the gauges."""
        for prefix, source in self._sources:
            try:
                values = source.as_dict()
            except Exception:
                continue
            if not isinstance(values, dict):
                continue
            for key, value in values.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                self.gauges[f"{prefix}.{key}"] = value

    def collect(self) -> Dict:
        """A pure-JSON snapshot (sources folded into the gauges)."""
        self.snapshot_sources()
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.as_dict() for name, histogram in self.histograms.items()
            },
        }

    def merge_payload(self, payload: Dict) -> int:
        """Fold a worker's collected payload in additively.

        Counters and histograms add; gauges from workers are namespaced
        per metric name last-writer-wins (worker gauges describe worker-
        local statistics objects, so clobbering parent gauges would lie --
        they arrive prefixed by the worker's own registration prefixes,
        which workers set distinctly).  Returns the number of malformed
        entries dropped.
        """
        skipped = 0
        counters = payload.get("counters")
        if isinstance(counters, dict):
            for name, value in counters.items():
                try:
                    self.inc(str(name), float(value))
                except (TypeError, ValueError):
                    skipped += 1
        gauges = payload.get("gauges")
        if isinstance(gauges, dict):
            for name, value in gauges.items():
                try:
                    self.gauges[str(name)] = float(value)
                except (TypeError, ValueError):
                    skipped += 1
        histograms = payload.get("histograms")
        if isinstance(histograms, dict):
            for name, data in histograms.items():
                if not isinstance(data, dict):
                    skipped += 1
                    continue
                histogram = self.histograms.get(str(name))
                if histogram is None:
                    bounds = data.get("bounds")
                    histogram = self.histograms[str(name)] = Histogram(
                        tuple(bounds) if isinstance(bounds, list) else DEFAULT_BOUNDS
                    )
                if not histogram.merge_dict(data):
                    skipped += 1
        return skipped
