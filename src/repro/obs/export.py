"""Trace exporters: JSONL and Chrome trace-event (Perfetto) formats.

Both exporters are pure functions of a finished
:class:`~repro.obs.spans.TraceRecorder`; neither mutates it.  Timestamps
are rebased against the recorder's epoch so a trace always starts near 0.

* :func:`write_jsonl` -- one self-describing JSON object per line: a
  header, then every span, every instant event, and one final metrics
  record.  Greppable, diffable, stream-appendable.
* :func:`write_chrome_trace` -- the Chrome trace-event JSON object format
  (``{"traceEvents": [...]}``, microsecond timestamps).  Loadable directly
  in ``chrome://tracing`` or https://ui.perfetto.dev; each process label
  (``main``, ``worker-<pid>``) becomes its own process track, so a
  parallel run renders as side-by-side flame charts with worker shard
  spans nested under their wave's pool span.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.obs.spans import Span, TraceRecorder

__all__ = ["trace_rows", "write_jsonl", "chrome_trace_events", "write_chrome_trace"]

#: Format tag for the JSONL header line.
JSONL_FORMAT = 1


def _span_row(recorder: TraceRecorder, span: Span, index: Dict[int, int]) -> Dict:
    end = span.end if span.end is not None else span.start
    return {
        "type": "span",
        "name": span.name,
        "category": span.category,
        "ts": round(span.start - recorder.epoch, 9),
        "dur": round(end - span.start, 9),
        "process": span.process,
        "parent": index.get(id(span.parent), -1) if span.parent is not None else -1,
        "attributes": span.attributes,
    }


def trace_rows(recorder: TraceRecorder) -> List[Dict]:
    """The JSONL export as a list of dicts (header first, metrics last)."""
    index = {id(span): position for position, span in enumerate(recorder.spans)}
    rows: List[Dict] = [
        {
            "type": "header",
            "format": JSONL_FORMAT,
            "process": recorder.process,
            "processes": recorder.processes(),
            "spans": len(recorder.spans),
            "events": len(recorder.events),
            "adopt_skipped": recorder.adopt_skipped,
        }
    ]
    rows.extend(_span_row(recorder, span, index) for span in recorder.spans)
    for event in recorder.events:
        rows.append(
            {
                "type": "event",
                "name": event["name"],
                "category": event["category"],
                "ts": round(event["ts"], 9),
                "process": event["process"],
                "attributes": event["attributes"],
            }
        )
    rows.append(
        {
            "type": "metrics",
            "self_seconds": {k: round(v, 9) for k, v in recorder.self_seconds.items()},
            **recorder.metrics.collect(),
        }
    )
    return rows


def write_jsonl(recorder: TraceRecorder, path: str) -> int:
    """Write the JSONL export to ``path``; returns the number of lines."""
    rows = trace_rows(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def _micros(recorder: TraceRecorder, stamp: float) -> float:
    return round((stamp - recorder.epoch) * 1_000_000, 3)


def chrome_trace_events(recorder: TraceRecorder) -> List[Dict]:
    """The ``traceEvents`` list of the Chrome trace-event export.

    Process labels map to small integer pids (parent first); one metadata
    event per process names its track.  Spans become complete (``"X"``)
    events -- the viewers infer nesting from interval containment per
    track, which the recorder's stack discipline and the adopt-time
    clamping guarantee.  Instant events become ``"i"`` events.
    """
    pids = {label: number for number, label in enumerate(recorder.processes(), start=1)}
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        }
        for label, pid in pids.items()
    ]
    for span in recorder.spans:
        end = span.end if span.end is not None else span.start
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": _micros(recorder, span.start),
                "dur": round((end - span.start) * 1_000_000, 3),
                "pid": pids.get(span.process, 0),
                "tid": 0,
                "args": span.attributes,
            }
        )
    for event in recorder.events:
        events.append(
            {
                "name": event["name"],
                "cat": event["category"],
                "ph": "i",
                "s": "p",
                "ts": round(event["ts"] * 1_000_000, 3),
                "pid": pids.get(event["process"], 0),
                "tid": 0,
                "args": event["attributes"],
            }
        )
    return events


def write_chrome_trace(recorder: TraceRecorder, path: str, metadata: Optional[Dict] = None) -> int:
    """Write the Chrome trace-event export; returns the event count."""
    events = chrome_trace_events(recorder)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(metadata or {}, generator="repro.obs"),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return len(events)
