"""Hierarchical spans on one monotonic clock.

A :class:`TraceRecorder` is the per-run telemetry sink: a stack of open
:class:`Span` objects (strict nesting -- a child always closes before its
parent, enforced), a list of instant events (fault injections, shard
failures), a per-category *self-time* ledger and a
:class:`~repro.obs.metrics.MetricsRegistry`.  Everything is timestamped
with ``time.perf_counter()`` -- monotonic, so span intervals never go
backwards even across NTP steps.

Activation is a single module global (:data:`_ACTIVE`).  Hot call sites
(``ConstraintSolver.check``, the lookahead, summary replay) guard on it
directly: with no recorder installed the telemetry cost of a hot loop is
one module-attribute read and a ``None`` comparison -- no allocation, no
call into this module.

Self-time attribution
---------------------
``begin_category``/``end_category`` maintain a category stack separate
from the span stack.  When a category closes, its *self* time (elapsed
minus the time spent in nested categories) is added to
``self_seconds[category]``.  The five production categories are
``solver``, ``lookahead``, ``replay``, ``fence`` (parent-side pool
dispatch) and ``merge``; nesting does the right thing -- a solver query
issued by the lookahead counts as solver self time and is subtracted from
the lookahead's.

Cross-process propagation
-------------------------
A worker process builds its own recorder (timestamps relative to its own
epoch), exports it as a pure-JSON payload (:meth:`TraceRecorder.
export_payload`) and ships it home inside the shard result envelope.  The
parent rebases the payload into its own timeline with
:meth:`TraceRecorder.adopt_worker`: worker spans are anchored at the start
of the parent span that covered the pool round and clamped to its
interval, so children still close before parents and timestamps stay
monotonic after the merge.  Self-time and metrics merge additively --
summed across processes, per-category CPU attribution can legitimately
exceed the parent's wall clock.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "ObsError",
    "Span",
    "TraceRecorder",
    "active",
    "install",
    "clear",
]


class ObsError(RuntimeError):
    """A telemetry API misuse (closing a span that is not the open leaf)."""


class Span:
    """One timed interval: name, category, attributes, parent link.

    ``start``/``end`` are raw ``perf_counter`` readings in the owning
    recorder's clock domain; exporters rebase them against the recorder's
    ``epoch``.  ``end`` is ``None`` while the span is open.
    """

    __slots__ = ("name", "category", "start", "end", "attributes", "parent", "process")

    def __init__(
        self,
        name: str,
        category: str,
        start: float,
        parent: Optional["Span"] = None,
        process: str = "main",
        attributes: Optional[Dict] = None,
    ):
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.parent = parent
        self.process = process
        self.attributes: Dict = attributes if attributes is not None else {}

    @property
    def seconds(self) -> float:
        """Duration so far (0.0 while open at the very first instant)."""
        end = self.end if self.end is not None else self.start
        return end - self.start

    @property
    def closed(self) -> bool:
        return self.end is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.seconds:.6f}s" if self.closed else "open"
        return f"Span({self.name!r}, {self.category!r}, {state})"


class TraceRecorder:
    """The per-run telemetry sink (spans + events + self-time + metrics)."""

    def __init__(self, process: str = "main", detail: bool = False):
        #: Label for this recorder's process in exported traces (the parent
        #: uses ``"main"``; workers use ``"worker-<pid>"``).
        self.process = process
        #: When True, fine-grained spans (one per solver query) are
        #: recorded too.  Off by default: per-query span allocation is the
        #: one telemetry cost that could breach the benchmark overhead
        #: gate on solver-bound runs.
        self.detail = detail
        #: Clock origin: exported timestamps are relative to this.
        self.epoch = time.perf_counter()
        #: Every span ever started, in start order (open spans included).
        self.spans: List[Span] = []
        #: Instant events: dicts with ``name``/``category``/``ts``(relative)
        #: /``process``/``attributes``.
        self.events: List[Dict] = []
        self.metrics = MetricsRegistry()
        #: category -> accumulated self seconds (elapsed minus nested
        #: categories); summed across adopted worker payloads.
        self.self_seconds: Dict[str, float] = {}
        self._stack: List[Span] = []
        # Each frame: [category, start, nested_child_seconds].
        self._cat_stack: List[list] = []
        #: Malformed rows dropped by :meth:`adopt_worker` (telemetry must
        #: never fail a run; casualties are counted instead).
        self.adopt_skipped = 0

    # -- spans ----------------------------------------------------------------

    def start_span(self, name: str, category: str = "run", **attributes) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            category,
            time.perf_counter(),
            parent=parent,
            process=self.process,
            attributes=attributes,
        )
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span, **attributes) -> Span:
        """Close ``span``; raises :class:`ObsError` if it is not open.

        Open descendants of ``span`` (left behind by an exception that
        unwound past their ``end_span`` calls) are closed first, at the
        same instant -- children always close before parents, even on
        error paths.
        """
        if span not in self._stack:
            raise ObsError(f"closing span {span.name!r} which is not open")
        now = time.perf_counter()
        while self._stack:
            open_span = self._stack.pop()
            open_span.end = now
            if open_span is span:
                break
        if attributes:
            span.attributes.update(attributes)
        return span

    def span(self, name: str, category: str = "run", **attributes) -> "_SpanContext":
        """Context manager opening/closing one span."""
        return _SpanContext(self, name, category, attributes)

    def open_spans(self) -> int:
        return len(self._stack)

    def current_span(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def finish(self) -> None:
        """Close every span still open (outermost last), newest first."""
        while self._stack:
            self.end_span(self._stack[-1])

    # -- instant events --------------------------------------------------------

    def event(self, name: str, category: str = "event", **attributes) -> Dict:
        record = {
            "name": name,
            "category": category,
            "ts": time.perf_counter() - self.epoch,
            "process": self.process,
            "attributes": attributes,
        }
        self.events.append(record)
        return record

    # -- per-category self time ------------------------------------------------

    def begin_category(self, category: str) -> None:
        self._cat_stack.append([category, time.perf_counter(), 0.0])

    def end_category(self) -> None:
        category, start, child_seconds = self._cat_stack.pop()
        elapsed = time.perf_counter() - start
        self.self_seconds[category] = self.self_seconds.get(category, 0.0) + (
            elapsed - child_seconds
        )
        if self._cat_stack:
            self._cat_stack[-1][2] += elapsed

    # -- cross-process ---------------------------------------------------------

    def export_payload(self) -> Dict:
        """This recorder as a pure-JSON dict for the shard result envelope.

        Timestamps are relative to :attr:`epoch`; span parents are encoded
        as indices into the span list (-1 for roots).  Open spans are
        exported as closing now (a worker exports after its run finished,
        so in practice everything is closed).
        """
        now = time.perf_counter()
        index = {id(span): position for position, span in enumerate(self.spans)}
        rows = []
        for span in self.spans:
            end = span.end if span.end is not None else now
            rows.append(
                [
                    span.name,
                    span.category,
                    round(span.start - self.epoch, 9),
                    round(end - self.epoch, 9),
                    index.get(id(span.parent), -1) if span.parent is not None else -1,
                    span.attributes,
                ]
            )
        return {
            "process": self.process,
            "spans": rows,
            "events": [
                {
                    "name": event["name"],
                    "category": event["category"],
                    "ts": round(event["ts"], 9),
                    "attributes": event["attributes"],
                }
                for event in self.events
            ],
            "self_seconds": {k: round(v, 9) for k, v in self.self_seconds.items()},
            "metrics": self.metrics.collect(),
        }

    def adopt_worker(self, payload: Dict, anchor: Span) -> int:
        """Rebase a worker's exported payload into this recorder under ``anchor``.

        The worker's clock origin is mapped to ``anchor.start`` and every
        rebased timestamp is clamped into the anchor's interval, so the
        merged trace keeps both invariants the property tests pin:
        children close before parents, and timestamps stay monotonic.
        Malformed rows are dropped and counted (``adopt_skipped``) --
        telemetry corruption must never fail a run.  Returns the number of
        spans adopted.
        """
        if not isinstance(payload, dict):
            self.adopt_skipped += 1
            return 0
        anchor_start = anchor.start
        anchor_end = anchor.end if anchor.end is not None else time.perf_counter()

        def rebase(relative: float) -> float:
            absolute = anchor_start + relative
            return min(max(absolute, anchor_start), anchor_end)

        process = payload.get("process")
        process = process if isinstance(process, str) else "worker"
        adopted: List[Optional[Span]] = []
        count = 0
        rows = payload.get("spans")
        for row in rows if isinstance(rows, list) else []:
            try:
                name, category, start, end, parent_index, attributes = row
                start = rebase(float(start))
                end = rebase(float(end))
                if end < start:
                    raise ValueError("span ends before it starts")
                if isinstance(parent_index, int) and 0 <= parent_index < len(adopted):
                    parent = adopted[parent_index]
                else:
                    parent = anchor
                span = Span(
                    str(name),
                    str(category),
                    start,
                    parent=parent if parent is not None else anchor,
                    process=process,
                    attributes=attributes if isinstance(attributes, dict) else {},
                )
                span.end = end
            except (TypeError, ValueError):
                adopted.append(None)
                self.adopt_skipped += 1
                continue
            adopted.append(span)
            self.spans.append(span)
            count += 1
        events = payload.get("events")
        for event in events if isinstance(events, list) else []:
            try:
                self.events.append(
                    {
                        "name": str(event["name"]),
                        "category": str(event.get("category", "event")),
                        "ts": rebase(float(event.get("ts", 0.0))) - self.epoch,
                        "process": process,
                        "attributes": event.get("attributes") or {},
                    }
                )
            except (TypeError, KeyError, ValueError):
                self.adopt_skipped += 1
        self_seconds = payload.get("self_seconds")
        if isinstance(self_seconds, dict):
            for category, seconds in self_seconds.items():
                try:
                    self.self_seconds[str(category)] = self.self_seconds.get(
                        str(category), 0.0
                    ) + float(seconds)
                except (TypeError, ValueError):
                    self.adopt_skipped += 1
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            self.adopt_skipped += self.metrics.merge_payload(metrics)
        return count

    # -- summaries -------------------------------------------------------------

    def closed_spans(self) -> List[Span]:
        return [span for span in self.spans if span.closed]

    def processes(self) -> List[str]:
        """Distinct process labels, ``main``/parent first, in first-seen order."""
        seen: List[str] = []
        for span in self.spans:
            if span.process not in seen:
                seen.append(span.process)
        for event in self.events:
            if event["process"] not in seen:
                seen.append(event["process"])
        return seen


# -- the global switch ---------------------------------------------------------

#: The active recorder, or None.  Hot production sites read this module
#: attribute directly so a disabled run costs one load + one comparison.
_ACTIVE: Optional[TraceRecorder] = None


def active() -> Optional[TraceRecorder]:
    """The installed recorder, or None when telemetry is off."""
    return _ACTIVE


def install(recorder: Optional[TraceRecorder]) -> Optional[TraceRecorder]:
    """Install ``recorder`` (or None to disable); returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = recorder
    return previous


def clear() -> Optional[TraceRecorder]:
    """Disable telemetry; returns the recorder that was active."""
    return install(None)


def worker_recorder(detail: bool = False) -> TraceRecorder:
    """A recorder labelled for this (worker) process."""
    return TraceRecorder(process=f"worker-{os.getpid()}", detail=detail)


class _SpanContext:
    """``with recorder.span(...)`` support."""

    __slots__ = ("_recorder", "_name", "_category", "_attributes", "span")

    def __init__(self, recorder: TraceRecorder, name: str, category: str, attributes: Dict):
        self._recorder = recorder
        self._name = name
        self._category = category
        self._attributes = attributes
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._recorder.start_span(
            self._name, self._category, **self._attributes
        )
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._recorder.end_span(self.span)
