"""The paper's two worked examples as MiniLang sources (Figures 1 and 2).

``testX`` is the Figure 1 example used to illustrate symbolic execution
itself; ``update`` is the §2.2 motivating example whose single-character
change (``PedalPos == 0`` to ``PedalPos <= 0``) drives the Table 1 trace and
the affected-location computation of Figure 5.  The update re-creation uses
integer pressure codes instead of the paper's rational constants; see
``tests/core/test_motivating_example.py`` for the resulting path counts.
"""

from __future__ import annotations

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program

TESTX_SOURCE = """\
global int y;

proc testX(int x) {
    if (x > 0) {
        y = y + x;
    } else {
        y = y - x;
    }
}
"""

_UPDATE_BODY = """\
    if (PedalPos {OP} 0) {{
        PedalCmd = PedalCmd + 1;
    }} else {{
        if (PedalPos == 1) {{
            PedalCmd = PedalCmd + 2;
        }} else {{
            PedalCmd = PedalPos;
        }}
    }}
    PedalCmd = PedalCmd + 1;
    if (BSwitch == 0) {{
        Meter = 1;
    }} else {{
        if (BSwitch == 1) {{
            Meter = 2;
        }}
    }}
    if (PedalCmd == 2) {{
        AltPress = 0;
    }}
    if (PedalCmd == 3) {{
        AltPress = 1;
        AltPress = 2;
    }}
"""

_UPDATE_TEMPLATE = (
    "global int Meter = 0;\n"
    "global int AltPress = 0;\n"
    "\n"
    "proc update(int PedalPos, int BSwitch, int PedalCmd) {{\n"
    "{body}"
    "}}\n"
)

UPDATE_BASE_SOURCE = _UPDATE_TEMPLATE.format(body=_UPDATE_BODY.format(OP="=="))
UPDATE_MODIFIED_SOURCE = _UPDATE_TEMPLATE.format(body=_UPDATE_BODY.format(OP="<="))


def testx_program() -> Program:
    """The Figure 1 ``testX`` example."""
    return parse_program(TESTX_SOURCE)


def update_base_program() -> Program:
    """The base version of the §2.2 ``update`` example."""
    return parse_program(UPDATE_BASE_SOURCE)


def update_modified_program() -> Program:
    """The modified version of the §2.2 ``update`` example."""
    return parse_program(UPDATE_MODIFIED_SOURCE)
