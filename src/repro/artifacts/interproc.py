"""Multi-procedure evaluation artifacts (interprocedural DiSE workloads).

Two version histories exercising the procedure-call pipeline end to end:

* **ASW-CALLS** -- the altitude-switch artifact refactored into callees:
  the alarm region becomes ``raise_alarm`` and the display cascade becomes
  ``check_pressure``, both called from the ``altitude`` entry.  Its history
  mixes *callee-only* edits (which must invalidate exactly the caller
  regions that reach the edited callee), *caller-only* edits (which must
  leave every callee summary valid) and reverts.

* **FCS** -- a fresh three-procedure flight-control selector sized at
  2^10+ paths per version: a triplicated ``sensor_vote`` majority voter
  (called three times, 8 paths per splice) feeding an ``escalate`` limiter.
  This is the OAE-scale interprocedural workload the parallel subsystem
  needs: subtrees below each call site carry real solver work.

Both artifacts validate (:func:`repro.lang.validate.validate_program`) on
every version; the histories follow the same ``(name, description,
changes, source)`` shape the batch :class:`~repro.evolution.history.
VersionHistoryRunner` consumes.
"""

from __future__ import annotations

from repro.artifacts.mutants import Artifact, _versions

# -- ASW split into callees ----------------------------------------------------

ASW_CALLS_BASE_SOURCE = """\
global int alarm = 0;
global int display = 0;
global int alarmOut = 0;

proc raise_alarm(int alt, int thresh, int inhibit) {
    if (alt < thresh) {
        if (inhibit == 0) {
            alarm = 1;
        } else {
            alarm = 2;
        }
    } else {
        alarm = 0;
    }
    return alarm;
}

proc check_pressure(int f1, int f2) {
    if (f1 > 0) {
        display = 1;
    } else {
        display = 2;
    }
    if (f2 > 0) {
        display = display + 2;
    }
    return display;
}

proc altitude(int alt, int thresh, int inhibit, int f1, int f2, int f3, int f4) {
    int a = 0;
    int d = 0;
    a = raise_alarm(alt, thresh, inhibit);
    d = check_pressure(f1, f2);
    if (f3 > 0) {
        alarmOut = a;
    } else {
        alarmOut = 0;
    }
    if (f4 > 0) {
        display = d + 1;
    }
}
"""

_ASW_CALLS_EDITS = [
    (
        "v1",
        [("alt < thresh", "alt <= thresh")],
        1,
        "callee-only: relax the alarm guard in raise_alarm",
    ),
    (
        "v2",
        [("alarm = 2;", "alarm = 3;")],
        1,
        "callee-only: inhibited alarm code changes in raise_alarm",
    ),
    (
        "v3",
        [("display = 1;", "display = 4;")],
        1,
        "callee-only: display base value changes in check_pressure",
    ),
    (
        "v4",
        [("alarmOut = a;", "alarmOut = a + 1;")],
        1,
        "caller-only: alarm output biased; both callees untouched",
    ),
    (
        "v5",
        [("display = d + 1;", "display = d + 2;")],
        1,
        "caller-only: display bump changes; both callees untouched",
    ),
    (
        "v6",
        [
            ("alt < thresh", "alt <= thresh"),
            ("display = d + 1;", "display = d + 2;"),
        ],
        2,
        "mixed: callee guard edit (v1) plus caller display edit (v5)",
    ),
    (
        "v7",
        [("if (inhibit == 0)", "if (inhibit <= 0)")],
        1,
        "callee-only: inhibit comparison widens in raise_alarm",
    ),
    (
        "v8",
        [],
        0,
        "revert to base: every summary recorded for the base should replay",
    ),
]

ASW_CALLS_ARTIFACT = Artifact(
    name="ASW-CALLS",
    procedure_name="altitude",
    base_source=ASW_CALLS_BASE_SOURCE,
    versions=_versions(ASW_CALLS_BASE_SOURCE, _ASW_CALLS_EDITS),
    description="altitude switch split into raise_alarm/check_pressure callees",
)


# -- FCS: three-procedure flight-control selector (2^10+ paths) ----------------

FCS_BASE_SOURCE = """\
global int mode = 0;
global int faults = 0;
global int panel = 0;

proc sensor_vote(int s1, int s2, int s3) {
    int v = 0;
    if (s1 > 0) {
        v = v + 1;
    }
    if (s2 > 0) {
        v = v + 1;
    }
    if (s3 > 0) {
        v = v + 1;
    }
    if (v >= 2) {
        return 1;
    }
    return 0;
}

proc escalate(int level, int limit) {
    if (level > limit) {
        faults = faults + 1;
        return limit;
    }
    return level;
}

proc control(int a1, int a2, int a3, int b1, int b2, int b3, int c1, int c2, int c3, int lvl, int t) {
    int pitch = 0;
    int roll = 0;
    int yaw = 0;
    int cap = 0;
    pitch = sensor_vote(a1, a2, a3);
    roll = sensor_vote(b1, b2, b3);
    yaw = sensor_vote(c1, c2, c3);
    mode = pitch + roll + yaw;
    cap = escalate(lvl, 100);
    if (t > 0) {
        panel = mode + cap;
    } else {
        panel = 0 - cap;
    }
}
"""

_FCS_EDITS = [
    (
        "v1",
        [("v >= 2", "v >= 1")],
        1,
        "callee-only: majority vote relaxes to any-one in sensor_vote "
        "(hits all three call sites)",
    ),
    (
        "v2",
        [("level > limit", "level >= limit")],
        1,
        "callee-only: escalate limiter comparison widens",
    ),
    (
        "v3",
        [("panel = mode + cap;", "panel = mode + cap + 1;")],
        1,
        "caller-only: panel code changes; all callee summaries stay valid",
    ),
    (
        "v4",
        [("faults = faults + 1;", "faults = faults + 2;")],
        1,
        "callee-only: escalate fault accounting changes "
        "(sensor_vote splices untouched)",
    ),
    (
        "v5",
        [],
        0,
        "revert to base",
    ),
    (
        "v6",
        [("mode = pitch + roll + yaw;", "mode = pitch + roll + yaw + faults;")],
        1,
        "caller-only: mode aggregation reads the fault counter",
    ),
    (
        "v7",
        [("if (s2 > 0)", "if (s2 >= 0)")],
        1,
        "callee-only: one sensor comparison flips in sensor_vote",
    ),
    (
        "v8",
        [
            ("v >= 2", "v >= 1"),
            ("panel = mode + cap;", "panel = mode + cap + 1;"),
        ],
        2,
        "mixed: sensor_vote relaxation (v1) plus the caller panel edit (v3)",
    ),
]

FCS_ARTIFACT = Artifact(
    name="FCS",
    procedure_name="control",
    base_source=FCS_BASE_SOURCE,
    versions=_versions(FCS_BASE_SOURCE, _FCS_EDITS),
    description="three-procedure flight-control selector, 2^10+ paths",
)


# -- cross-caller pair: two programs sharing one callee ------------------------

# The shared callee is textually identical in both programs, so its
# name-independent content digest -- and therefore its generalised
# ("call"-kind) summary-cache key -- is identical too.  The global
# declarations must also match exactly: the formal-shape fingerprint in the
# key covers every global's name and sort.
_CROSS_CALLER_SHARED_CALLEE = """\
proc saturate(int v, int lo, int hi) {
    if (v < lo) {
        tally = tally + 1;
        return lo;
    }
    if (v > hi) {
        tally = tally + 1;
        return hi;
    }
    return v;
}
"""

CROSS_CALLER_A_SOURCE = (
    """\
global int tally = 0;

"""
    + _CROSS_CALLER_SHARED_CALLEE
    + """
proc meter(int x, int y) {
    int a = 0;
    int b = 0;
    a = saturate(x, 0, 10);
    b = saturate(y, 0, 10);
    if (a > b) {
        tally = tally + a;
    } else {
        tally = tally + b;
    }
}
"""
)

CROSS_CALLER_B_SOURCE = (
    """\
global int tally = 0;

"""
    + _CROSS_CALLER_SHARED_CALLEE
    + """
proc gauge(int p, int q, int r) {
    int low = 0;
    int high = 0;
    low = saturate(p, q, 20);
    high = saturate(r, low, 30);
    if (high > low) {
        tally = tally + high;
    }
}
"""
)

CROSS_CALLER_A_ARTIFACT = Artifact(
    name="CROSS-A",
    procedure_name="meter",
    base_source=CROSS_CALLER_A_SOURCE,
    versions=[],
    description="cross-caller pair, program A: meter calling shared saturate",
)

CROSS_CALLER_B_ARTIFACT = Artifact(
    name="CROSS-B",
    procedure_name="gauge",
    base_source=CROSS_CALLER_B_SOURCE,
    versions=[],
    description="cross-caller pair, program B: gauge calling shared saturate",
)


def cross_caller_pair():
    """Two distinct caller programs sharing the ``saturate`` callee.

    The callers (``meter`` and ``gauge``) have different signatures, locals
    and call-argument terms, so nothing site-specific can leak between
    them; only a *generalised* (fresh-formal) callee summary recorded while
    running one program can replay in the other.  The benchmark runs A then
    B over one shared cache and gates on B's run hitting -- and never
    re-recording -- the ``saturate`` entry A stored.
    """
    return CROSS_CALLER_A_ARTIFACT, CROSS_CALLER_B_ARTIFACT


def asw_calls_artifact() -> Artifact:
    return ASW_CALLS_ARTIFACT


def fcs_artifact() -> Artifact:
    return FCS_ARTIFACT


def interproc_artifacts():
    """The multi-procedure artifacts, in benchmark order."""
    return [ASW_CALLS_ARTIFACT, FCS_ARTIFACT]
