"""The three evaluation artifacts (ASW, WBS, OAE) and their version histories.

Each :class:`Artifact` mirrors the paper's §4.2 set-up: a base program plus a
sequence of modified versions, each described by a :class:`VersionSpec`
carrying the number of AST changes (the "Changes" column of Tables 2/3).
The MiniLang re-creations keep the control structure and change *kinds* of
the paper's Java artifacts at a size the bundled solver decides quickly:

* **ASW** (altitude switch): a guarded alarm region followed by a display
  cascade -- localised guard changes show the large DiSE reductions,
  display/output-only changes show the zero-affected-path rows;
* **WBS** (wheel brake system): a pedal-pressure pipeline where every guard
  after the pedal region reads the computed pressure, so most changes affect
  every path condition (the paper's DiSE == full rows);
* **OAE** (onboard abort executive): a mode selector followed by a chain of
  independent checks, large enough that a broad change produces hundreds of
  affected path conditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.lang.ast_nodes import Program
from repro.lang.parser import parse_program


@dataclass(frozen=True)
class VersionSpec:
    """One modified version of an artifact."""

    name: str
    source: str
    change_count: int
    description: str = ""


@dataclass(frozen=True)
class Artifact:
    """A base program plus its sequence of modified versions."""

    name: str
    procedure_name: str
    base_source: str
    versions: Tuple[VersionSpec, ...]
    description: str = ""

    def base_program(self) -> Program:
        return parse_program(self.base_source)

    def version(self, name: str) -> VersionSpec:
        for spec in self.versions:
            if spec.name == name:
                return spec
        raise KeyError(f"{self.name} has no version {name!r}")

    def version_source(self, name: str) -> str:
        return self.version(name).source

    def version_program(self, name: str) -> Program:
        return parse_program(self.version(name).source)

    def version_names(self) -> List[str]:
        return [spec.name for spec in self.versions]

    def history(self) -> List[Tuple[str, str, int, str]]:
        """The ordered version history as ``(name, description, changes, source)``.

        The base version leads with zero changes; this is the input shape
        the batch :class:`~repro.evolution.history.VersionHistoryRunner`
        consumes (each adjacent pair is one DiSE job).
        """
        entries = [("base", self.description or "base version", 0, self.base_source)]
        entries.extend(
            (spec.name, spec.description, spec.change_count, spec.source)
            for spec in self.versions
        )
        return entries


def _versions(base_source: str, edits) -> Tuple[VersionSpec, ...]:
    """Build VersionSpecs by textual substitution on the base source.

    Each edit is ``(name, replacements, change_count, description)`` where
    ``replacements`` is a list of ``(old, new)`` pairs applied in order; every
    ``old`` must occur in the source exactly once so versions stay reviewable.
    """
    specs: List[VersionSpec] = []
    for name, replacements, change_count, description in edits:
        source = base_source
        for old, new in replacements:
            if source.count(old) != 1:
                raise ValueError(f"{name}: pattern {old!r} occurs {source.count(old)} times")
            source = source.replace(old, new)
        specs.append(VersionSpec(name, source, change_count, description))
    return tuple(specs)


# -- ASW: altitude switch ------------------------------------------------------

ASW_BASE_SOURCE = """\
global int alarm = 0;
global int display = 0;
global int alarmOut = 0;

proc altitude(int alt, int thresh, int inhibit, int f1, int f2, int f3, int f4) {
    if (alt < thresh) {
        if (inhibit == 0) {
            alarm = 1;
        } else {
            alarm = 2;
        }
    } else {
        alarm = 0;
    }
    if (f1 > 0) {
        display = 1;
    } else {
        display = 2;
    }
    if (display + f2 > 2) {
        display = display + 10;
    } else {
        display = display + 20;
    }
    if (display + f3 > 12) {
        display = display + 100;
    } else {
        display = display + 200;
    }
    if (display + f4 > 112) {
        display = display + 1000;
    } else {
        display = display + 2000;
    }
    alarmOut = alarm;
}
"""

_ASW_EDITS = [
    ("v1", [("inhibit == 0", "inhibit <= 0")], 1, "inner alarm guard relaxed"),
    ("v2", [("alt < thresh", "alt <= thresh")], 1, "alarm guard boundary change"),
    ("v3", [("alarm = 1;", "alarm = 3;")], 1, "alarm code changed"),
    ("v4", [("alarm = 2;", "alarm = 4;")], 1, "inhibited alarm code changed"),
    ("v5", [("alt < thresh", "alt > thresh")], 1, "alarm guard inverted"),
    ("v6", [("display = 1;", "display = 3;")], 1, "display seed changed (cascades broadly)"),
    ("v7", [("alarmOut = alarm;", "alarmOut = alarm + 1;")], 1, "output-only change"),
    (
        "v8",
        [("    alarmOut = alarm;", "    alarmOut = alarm;\n    alarmOut = alarmOut + 1;")],
        1,
        "new trailing statement",
    ),
    ("v9", [("        alarm = 1;\n", "")], 1, "alarm write removed"),
    ("v10", [("display + 10;", "display + 11;")], 1, "display-only change"),
    ("v11", [("display + f2 > 2", "display + f2 >= 2")], 1, "display guard boundary change"),
    ("v12", [("        alarm = 0;", "        alarm = 9;")], 1, "default alarm code changed"),
    (
        "v13",
        [("alt < thresh", "alt <= thresh"), ("display = 1;", "display = 3;")],
        2,
        "alarm guard and display seed changed (broad)",
    ),
    ("v14", [("display + f3 > 12", "display + f3 >= 12")], 1, "display guard boundary change"),
    ("v15", [("alarm = 2;", "alarm = 7;")], 1, "inhibited alarm code changed"),
]


def asw_artifact() -> Artifact:
    return Artifact(
        "ASW",
        "altitude",
        ASW_BASE_SOURCE,
        _versions(ASW_BASE_SOURCE, _ASW_EDITS),
        description="altitude switch",
    )


# -- WBS: wheel brake system ---------------------------------------------------

# Every conditional after the pedal region reads ``press``, so guard and
# pressure-code changes ripple through the whole procedure (the paper's WBS
# rows where DiSE generates as many path conditions as full symbolic
# execution); the ``meter`` writes are pure outputs, giving the zero rows.
WBS_BASE_SOURCE = """\
global int press = 0;
global int meter = 0;

proc wbs(int pedal, int skid, int autobrake) {
    if (pedal == 0) {
        press = 0;
    } else {
        if (pedal == 1) {
            press = 1;
        } else {
            press = 2;
        }
    }
    if (press + skid > 1) {
        press = press + 1;
        meter = 1;
    } else {
        meter = 2;
    }
    if (press + autobrake > 2) {
        press = press + 10;
    } else {
        press = press + 20;
    }
}
"""

_WBS_EDITS = [
    ("v1", [("pedal == 0", "pedal <= 0")], 1, "the §2.2-style pedal guard change"),
    ("v2", [("pedal == 1", "pedal >= 1")], 1, "second pedal guard relaxed"),
    ("v3", [("        press = 1;", "        press = 3;")], 1, "pedal pressure code changed"),
    ("v4", [("press + skid > 1", "press + skid > 0")], 1, "skid guard relaxed"),
    ("v5", [("press = press + 1;", "press = press + 2;")], 1, "skid pressure increment changed"),
    ("v6", [("press + autobrake > 2", "press + autobrake > 1")], 1, "autobrake guard relaxed"),
    ("v7", [("meter = 1;", "meter = 3;")], 1, "meter-only change"),
    ("v8", [("meter = 2;", "meter = 4;")], 1, "meter-only change"),
    (
        "v9",
        [("    if (press + skid > 1)", "    press = press + 1;\n    if (press + skid > 1)")],
        1,
        "new write before the skid guard",
    ),
    ("v10", [("        press = 2;", "        press = 4;")], 1, "default pressure code changed"),
    ("v11", [("pedal == 0", "pedal < 0")], 1, "first pedal guard changed"),
    ("v12", [("press = press + 10;", "press = press + 11;")], 1, "autobrake pressure changed"),
    ("v13", [("press = press + 20;", "press = press + 21;")], 1, "autobrake pressure changed"),
    (
        "v14",
        [("pedal == 0", "pedal <= 0"), ("press + autobrake > 2", "press + autobrake > 1")],
        2,
        "pedal and autobrake guards changed",
    ),
    ("v15", [("        press = 0;", "        press = 5;")], 1, "released pressure code changed"),
    (
        "v16",
        [("    if (press + autobrake > 2)", "    meter = meter + 1;\n    if (press + autobrake > 2)")],
        1,
        "new meter write (output only)",
    ),
]


def wbs_artifact() -> Artifact:
    return Artifact(
        "WBS",
        "wbs",
        WBS_BASE_SOURCE,
        _versions(WBS_BASE_SOURCE, _WBS_EDITS),
        description="wheel brake system",
    )


# -- OAE: onboard abort executive ----------------------------------------------

OAE_BASE_SOURCE = """\
global int stage = 0;
global int out = 0;

proc oae(int mode, int c1, int c2, int c3, int c4, int c5, int c6, int c7) {
    if (mode < 0) {
        stage = 1;
    } else {
        stage = 2;
    }
    if (c1 > 0) {
        out = out + 1;
    } else {
        out = out - 1;
    }
    if (c2 > 0) {
        out = out + 2;
    } else {
        out = out - 2;
    }
    if (c3 > 0) {
        out = out + 4;
    } else {
        out = out - 4;
    }
    if (c4 > 0) {
        out = out + 8;
    } else {
        out = out - 8;
    }
    if (c5 > 0) {
        out = out + 16;
    } else {
        out = out - 16;
    }
    if (c6 > 0) {
        out = out + 32;
    } else {
        out = out - 32;
    }
    if (c7 > 0) {
        out = out + 64;
    } else {
        out = out - 64;
    }
    out = out + stage;
}
"""

_OAE_EDITS = [
    ("v1", [("out = out + 1;", "out = out + 3;")], 1, "output-only change"),
    ("v2", [("stage = 1;", "stage = 3;")], 1, "abort stage code changed (output only)"),
    ("v3", [("out = out + stage", "out = out + stage + 1")], 1, "final formula changed (output only)"),
    ("v4", [("out = out + 2;", "out = out + 5;")], 1, "output-only change"),
    ("v5", [("stage = 2;", "stage = 4;")], 1, "nominal stage code changed (output only)"),
    ("v6", [("mode < 0", "mode <= 0")], 1, "mode guard boundary change (broad)"),
    ("v7", [("out = out - 64;", "out = out - 65;")], 1, "output-only change"),
    (
        "v8",
        [("    out = out + stage;", "    out = out + stage;\n    stage = stage + out;")],
        1,
        "new trailing statement",
    ),
    (
        "v9",
        [("mode < 0", "mode <= 0"), ("stage = 1;", "stage = 3;")],
        2,
        "mode guard and stage code changed",
    ),
]


def oae_artifact() -> Artifact:
    return Artifact(
        "OAE",
        "oae",
        OAE_BASE_SOURCE,
        _versions(OAE_BASE_SOURCE, _OAE_EDITS),
        description="onboard abort executive",
    )


def all_artifacts() -> List[Artifact]:
    """The three artifacts in the order of the paper's tables."""
    return [asw_artifact(), wbs_artifact(), oae_artifact()]
