"""The evaluation artifact programs (paper §4.2).

``simple`` holds the two worked examples (Figures 1 and 2); ``mutants``
holds the three evaluation artifacts -- ASW, WBS and OAE -- each with a base
version and the sequence of modified versions used by the Table 2/3
benchmarks.
"""

from repro.artifacts.interproc import (
    ASW_CALLS_ARTIFACT,
    CROSS_CALLER_A_ARTIFACT,
    CROSS_CALLER_B_ARTIFACT,
    FCS_ARTIFACT,
    asw_calls_artifact,
    cross_caller_pair,
    fcs_artifact,
    interproc_artifacts,
)
from repro.artifacts.mutants import (
    Artifact,
    VersionSpec,
    all_artifacts,
    asw_artifact,
    oae_artifact,
    wbs_artifact,
)
from repro.artifacts.simple import (
    TESTX_SOURCE,
    UPDATE_BASE_SOURCE,
    UPDATE_MODIFIED_SOURCE,
    testx_program,
    update_base_program,
    update_modified_program,
)

__all__ = [
    "Artifact",
    "VersionSpec",
    "all_artifacts",
    "ASW_CALLS_ARTIFACT",
    "CROSS_CALLER_A_ARTIFACT",
    "CROSS_CALLER_B_ARTIFACT",
    "FCS_ARTIFACT",
    "asw_calls_artifact",
    "cross_caller_pair",
    "fcs_artifact",
    "interproc_artifacts",
    "asw_artifact",
    "oae_artifact",
    "wbs_artifact",
    "TESTX_SOURCE",
    "UPDATE_BASE_SOURCE",
    "UPDATE_MODIFIED_SOURCE",
    "testx_program",
    "update_base_program",
    "update_modified_program",
]
