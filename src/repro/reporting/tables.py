"""Plain-text table renderers for the paper's tables.

The benchmark harness prints the same rows the paper reports:

* Table 2 (a)-(c): DiSE versus full symbolic execution per artifact version
  (changed CFG nodes, affected CFG nodes, time, states explored, path
  conditions);
* Table 3 (a)-(c): regression test selection and augmentation per version;
* Table 1: the directed-search trace of explored/unexplored sets;
* Figure 5(b): the affected-set fixed-point trace.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.affected import AffectedSets, RuleApplication
from repro.core.directed import DirectedTraceRow
from repro.core.dise import ComparisonRow
from repro.evolution.regression import RegressionReport


def _render_table(headers: Sequence[str], rows: Iterable[Sequence[str]], title: str = "") -> str:
    materialised = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialised:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Render a duration the way the paper does (mm:ss, sub-second shown in ms)."""
    if seconds < 1.0:
        return f"{seconds * 1000:.0f}ms"
    minutes = int(seconds) // 60
    remainder = seconds - minutes * 60
    return f"{minutes:02d}:{remainder:05.2f}"


def render_table2(rows: Sequence[ComparisonRow], artifact_name: str) -> str:
    """Table 2 style comparison of DiSE and full symbolic execution."""
    headers = [
        "Version",
        "Changed",
        "Affected",
        "DiSE Time",
        "Full Time",
        "DiSE States",
        "Full States",
        "DiSE PCs",
        "Full PCs",
    ]
    body = [
        [
            row.version,
            row.changed_nodes,
            row.affected_nodes,
            format_seconds(row.dise_seconds),
            format_seconds(row.full_seconds),
            row.dise_states,
            row.full_states,
            row.dise_path_conditions,
            row.full_path_conditions,
        ]
        for row in rows
    ]
    return _render_table(headers, body, title=f"Table 2 ({artifact_name}): DiSE vs full symbolic execution")


def render_table3(reports: Sequence[RegressionReport], artifact_name: str) -> str:
    """Table 3 style regression-testing results."""
    headers = ["Version", "# Changes", "Selected", "Added", "Total Tests"]
    body = [
        [report.version, report.changes, report.selected_count, report.added_count, report.total]
        for report in reports
    ]
    return _render_table(
        headers, body, title=f"Table 3 ({artifact_name}): regression test selection and augmentation"
    )


def render_affected_trace(trace: Sequence[RuleApplication], title: str = "Figure 5(b)") -> str:
    """Figure 5(b) style fixed-point trace of the affected sets."""
    headers = ["ACN", "AWN", "ni", "nj", "Rule"]
    body = [
        [
            "{" + ", ".join(entry.acn) + "}",
            "{" + ", ".join(entry.awn) + "}",
            entry.source,
            entry.target,
            entry.rule,
        ]
        for entry in trace
    ]
    return _render_table(headers, body, title=f"{title}: affected-set computation")


def render_directed_trace(rows: Sequence[DirectedTraceRow], title: str = "Table 1") -> str:
    """Table 1 style directed-symbolic-execution trace."""
    headers = ["CFG nodes for symbolic states", "ExWrite", "ExCond", "UnExWrite", "UnExCond"]
    body = []
    for row in rows:
        sequence = "<" + ", ".join(row.trace) + (" (no path)>" if row.pruned else ">")
        body.append(
            [
                sequence,
                "{" + ", ".join(row.ex_write) + "}",
                "{" + ", ".join(row.ex_cond) + "}",
                "{" + ", ".join(row.unex_write) + "}",
                "{" + ", ".join(row.unex_cond) + "}",
            ]
        )
    return _render_table(headers, body, title=f"{title}: directed symbolic execution trace")


def render_affected_sets(affected: AffectedSets, title: str = "Affected locations") -> str:
    """A compact rendering of the final ACN / AWN sets."""
    acn, awn = affected.names()
    return "\n".join(
        [
            title,
            f"  ACN ({len(acn)}): {{{', '.join(acn)}}}",
            f"  AWN ({len(awn)}): {{{', '.join(awn)}}}",
        ]
    )
