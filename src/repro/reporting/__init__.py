"""Renderers for the paper's tables and figures (used by the benchmark harness)."""

from repro.reporting.figures import render_cfg_figure, render_execution_tree
from repro.reporting.tables import (
    format_seconds,
    render_affected_sets,
    render_affected_trace,
    render_directed_trace,
    render_table2,
    render_table3,
)

__all__ = [
    "render_cfg_figure",
    "render_execution_tree",
    "format_seconds",
    "render_affected_sets",
    "render_affected_trace",
    "render_directed_trace",
    "render_table2",
    "render_table3",
]
