"""Figure renderers: the symbolic execution tree (Fig. 1) and the CFG (Fig. 2)."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cfg.dot import cfg_to_dot
from repro.cfg.graph import ControlFlowGraph
from repro.core.affected import AffectedSets
from repro.symexec.engine import ExecutionResult
from repro.symexec.tree import ExecutionTree


def render_execution_tree(result: ExecutionResult, title: str = "Figure 1") -> str:
    """Figure 1: the symbolic execution tree of a (small) procedure."""
    if result.tree is None:
        raise ValueError("The execution result was produced without build_tree=True")
    lines = [f"{title}: symbolic execution tree ({result.tree.count()} states)"]
    lines.append(result.tree.render())
    lines.append("")
    lines.append("Leaf path conditions:")
    for index, condition in enumerate(result.path_conditions):
        lines.append(f"  [{index}] {condition}")
    return "\n".join(lines)


def render_cfg_figure(
    cfg: ControlFlowGraph,
    affected: Optional[AffectedSets] = None,
    changed: Optional[Sequence] = None,
    title: str = "Figure 2",
) -> str:
    """Figure 2: the CFG of the procedure, optionally annotated with affected nodes."""
    lines = [f"{title}: control flow graph for {cfg.procedure_name}"]
    lines.append(cfg.describe())
    if affected is not None:
        acn, awn = affected.names()
        lines.append(f"Affected conditional nodes: {{{', '.join(acn)}}}")
        lines.append(f"Affected write nodes: {{{', '.join(awn)}}}")
    lines.append("")
    lines.append("Graphviz DOT:")
    highlight = affected.all_affected_nodes() if affected is not None else None
    lines.append(cfg_to_dot(cfg, highlight=highlight, changed=changed, title=title))
    return "\n".join(lines)
