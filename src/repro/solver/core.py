"""The constraint solver: satisfiability and model generation for path conditions.

This plays the role Choco plays in the paper's SPF-based implementation.  The
decision procedure handles conjunctions of boolean terms built from linear
integer arithmetic, boolean symbols and the logical connectives:

1. boolean structure (``&&``, ``||``, ``!``, boolean symbols/constants) is
   handled by rewriting plus case splitting;
2. comparisons are normalised to linear atoms (``<=``, ``==``, ``!=`` against 0);
3. ``!=`` atoms are split into the two strict alternatives;
4. the remaining conjunction of ``<=``/``==`` atoms is decided by interval
   propagation followed by branch-and-bound splitting over a bounded integer
   box (complete over that box).

Models are returned for satisfiable queries and every model is re-checked
against the original constraints before being returned.

Result caching keys on the intern ids of the (simplified, hash-consed)
constraint terms -- a tuple of small integers -- instead of the sorted string
rendering the first version of this module used; building a key is O(number
of constraints), not O(total term size).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.obs import spans as _obs_spans
from repro.solver.intervals import (
    DEFAULT_BOUND,
    Domains,
    Interval,
    atom_definitely_satisfied,
    initial_domains,
    propagate,
    value_closest_to_zero,
)
from repro.solver.linear import (
    EQ,
    LE,
    NE,
    LinearAtom,
    LinearExpr,
    NonLinearError,
    bool_symbol_atom,
    linearize_comparison,
    linearize_int,
)
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    COMPARISON_OPS,
    FALSE,
    TRUE,
    Assignment,
    BinaryTerm,
    BoolConst,
    IntConst,
    NotTerm,
    Symbol,
    Term,
    interned_count,
    negate,
    term_key,
)


class SolverError(Exception):
    """Raised when the solver cannot decide a constraint set."""


class BudgetExhausted(SolverError):
    """Raised by a solver whose :class:`DeadlineBudget` has expired.

    A ``SolverError`` subclass so existing conservative handlers (the
    lookahead's bailout) treat it like any other undecidable query; the
    engine additionally catches it around feasibility checks to degrade to
    "explore both sides" instead of failing the run.
    """


class DeadlineBudget:
    """A run-level wall-clock budget shared by everything a run solves.

    Threaded through :class:`ConstraintSolver` (and therefore every
    :class:`~repro.solver.context.SolverContext` and lookahead sharing
    it).  Once the budget expires the solver refuses further complete
    queries by raising :class:`BudgetExhausted`; callers degrade to
    conservative answers (lookahead -> "all reachable", feasibility ->
    explore both sides) and flag the run as degraded -- never a hang,
    never a wrong answer.  Exhaustion is sticky: a budget that has
    expired once stays expired (``exhausted``), which keeps degradation
    monotonic and the "did this run degrade?" question well-posed.
    """

    def __init__(self, seconds: float):
        self.seconds = float(seconds)
        self._deadline = time.monotonic() + self.seconds
        #: Sticky flag: set the first time the budget is observed expired.
        self.exhausted = False
        #: How many times an expired budget rejected a query (diagnostics).
        self.rejections = 0

    def expired(self) -> bool:
        """Whether the budget is (now) spent; sets the sticky flag."""
        if not self.exhausted and time.monotonic() >= self._deadline:
            self.exhausted = True
        return self.exhausted

    def remaining(self) -> float:
        return max(0.0, self._deadline - time.monotonic())

    def charge(self) -> None:
        """Admission control: raise :class:`BudgetExhausted` once spent."""
        if self.expired():
            self.rejections += 1
            raise BudgetExhausted(
                f"Deadline budget of {self.seconds:.3f}s exhausted"
            )


@dataclass
class SolverStatistics:
    """Counters describing the work a :class:`ConstraintSolver` has done.

    The ``incremental_*`` counters are filled in by
    :class:`~repro.solver.context.SolverContext` instances sharing this
    solver; they quantify how much work the incremental layer saved.
    """

    queries: int = 0
    cache_hits: int = 0
    sat_results: int = 0
    unsat_results: int = 0
    case_splits: int = 0
    propagations: int = 0
    branch_steps: int = 0
    incremental_hits: int = 0
    #: Number of already-propagated prefix frames retained across queries
    #: (by context syncs and ``assume`` probes) instead of being rebuilt.
    prefix_reuses: int = 0
    context_fallbacks: int = 0
    #: Atom examinations performed by the contexts' worklist propagation
    #: (each is one bounds-consistency pass over a single atom).
    worklist_rounds: int = 0
    #: Context checks settled by eliminating ``x == y + c`` equalities
    #: instead of falling back to the complete solver.
    equality_substitutions: int = 0
    #: Branch-and-bound starts whose box was tightened by a caller-provided
    #: seed (a context's already-narrowed domains) instead of the default
    #: ±2^16 bound.  Counted per start, so one query containing ``!=`` or
    #: ``||`` case splits can contribute several.
    box_seeds: int = 0

    @property
    def interned_terms(self) -> int:
        """Number of distinct hash-consed terms alive in the intern table."""
        return interned_count()

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "cache_hits": self.cache_hits,
            "sat_results": self.sat_results,
            "unsat_results": self.unsat_results,
            "case_splits": self.case_splits,
            "propagations": self.propagations,
            "branch_steps": self.branch_steps,
            "incremental_hits": self.incremental_hits,
            "prefix_reuses": self.prefix_reuses,
            "context_fallbacks": self.context_fallbacks,
            "worklist_rounds": self.worklist_rounds,
            "equality_substitutions": self.equality_substitutions,
            "box_seeds": self.box_seeds,
            "interned_terms": self.interned_terms,
        }


@dataclass(frozen=True)
class SolverResult:
    """Outcome of a satisfiability query."""

    satisfiable: bool
    model: Optional[Dict[str, int]] = None

    def __bool__(self) -> bool:
        return self.satisfiable


class ConstraintSolver:
    """Decides conjunctions of MiniLang path-condition constraints."""

    def __init__(
        self,
        bound: int = DEFAULT_BOUND,
        max_branch_steps: int = 200_000,
        deadline: Optional[DeadlineBudget] = None,
    ):
        self.bound = bound
        self.max_branch_steps = max_branch_steps
        #: Optional run-level wall-clock budget; once exhausted every
        #: complete query raises :class:`BudgetExhausted`.
        self.deadline = deadline
        self.statistics = SolverStatistics()
        #: key -> (result, pinned key terms).  Terms are interned weakly, so
        #: each entry anchors the canonical instances its id-based key
        #: refers to: a later structurally equal query re-interns onto them
        #: and rebuilds the same key.  The pins live and die with the cache
        #: (per-solver, cleared by :meth:`clear_cache`), so they cannot leak
        #: across independent runs.
        self._cache: Dict[Tuple[int, ...], Tuple[SolverResult, Tuple[Term, ...]]] = {}

    # -- public API ----------------------------------------------------------

    def check(
        self, constraints: Sequence[Term], seed_box: Optional[Domains] = None
    ) -> SolverResult:
        """Decide the conjunction of ``constraints``; returns sat/unsat + model.

        ``seed_box`` optionally narrows the branch-and-bound's starting
        domains (an incremental context passes its already-propagated
        intervals).  Soundness: a seed derived by interval propagation from
        (a subset of) the same constraints over-approximates the solution
        set within the solver's bound, so intersecting it changes no
        verdict -- which is also why seeded and unseeded queries may share
        one cache entry.
        """
        # Telemetry guard: with no recorder installed this is one module-
        # attribute read and a None check -- the documented allocation-free
        # disabled path for the hottest call site in the system.
        recorder = _obs_spans._ACTIVE
        if recorder is None:
            return self._check(constraints, seed_box)
        recorder.begin_category("solver")
        try:
            if recorder.detail:
                # Per-query spans are opt-in (``detail``): they allocate per
                # check and solver-bound runs issue tens of thousands.
                with recorder.span("solver.check", "solver", constraints=len(constraints)):
                    return self._check(constraints, seed_box)
            return self._check(constraints, seed_box)
        finally:
            recorder.end_category()

    def _check(
        self, constraints: Sequence[Term], seed_box: Optional[Domains] = None
    ) -> SolverResult:
        # Admission control before any work (including the cache probe): an
        # exhausted budget makes every check raise, so degradation is
        # uniform and predictable rather than dependent on cache luck.
        if self.deadline is not None:
            self.deadline.charge()
        faults.maybe_solver_timeout()
        self.statistics.queries += 1
        simplified = [simplify(term) for term in constraints]
        key = tuple(sorted(term_key(term) for term in simplified))
        cached = self._cache.get(key)
        if cached is not None:
            self.statistics.cache_hits += 1
            return cached[0]
        result = self._solve(simplified, seed_box=seed_box)
        if result.satisfiable and result.model is not None:
            self._verify_model(simplified, result.model)
        if result.satisfiable:
            self.statistics.sat_results += 1
        else:
            self.statistics.unsat_results += 1
        self._cache[key] = (result, tuple(simplified))
        return result

    def is_satisfiable(self, constraints: Sequence[Term]) -> bool:
        """Convenience wrapper returning only the sat/unsat verdict."""
        return self.check(constraints).satisfiable

    def model(self, constraints: Sequence[Term]) -> Optional[Dict[str, int]]:
        """A satisfying assignment for the constraints, or None when unsat."""
        result = self.check(constraints)
        if result.satisfiable and result.model is not None:
            return dict(result.model)
        return None

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- boolean structure ---------------------------------------------------

    def _solve(
        self,
        pending: List[Term],
        seed_atoms: Optional[List[LinearAtom]] = None,
        seed_box: Optional[Domains] = None,
    ) -> SolverResult:
        """Decide ``pending`` (already simplified) plus previously collected atoms.

        ``seed_atoms`` carries the linear atoms accumulated before a ``||``
        case split so that alternatives do not round-trip atoms through term
        form and re-linearise them on every split level; ``seed_box`` rides
        along unchanged into every alternative's branch-and-bound start.
        """
        atoms: List[LinearAtom] = list(seed_atoms) if seed_atoms else []
        work = list(pending)
        while work:
            term = work.pop()
            if isinstance(term, BoolConst):
                if term.value:
                    continue
                return SolverResult(False)
            if isinstance(term, Symbol):
                if term.sort != BOOL_SORT:
                    raise SolverError(f"Integer symbol {term} used as a constraint")
                atoms.append(bool_symbol_atom(term.name, True))
                continue
            if isinstance(term, NotTerm):
                inner = term.operand
                if isinstance(inner, Symbol) and inner.sort == BOOL_SORT:
                    atoms.append(bool_symbol_atom(inner.name, False))
                    continue
                # negate() can expose new simplification opportunities, so this
                # synthesized term is the one place the loop still simplifies.
                work.append(simplify(negate(inner)))
                continue
            if isinstance(term, BinaryTerm):
                if term.op == "&&":
                    work.append(term.left)
                    work.append(term.right)
                    continue
                if term.op == "||":
                    self.statistics.case_splits += 1
                    left_result = self._solve(
                        work + [term.left], seed_atoms=atoms, seed_box=seed_box
                    )
                    if left_result.satisfiable:
                        return left_result
                    return self._solve(
                        work + [term.right], seed_atoms=atoms, seed_box=seed_box
                    )
                if term.op in COMPARISON_OPS:
                    converted = self._comparison_to_atoms(term)
                    if converted is None:
                        return SolverResult(False)
                    new_atoms, extra_terms = converted
                    atoms.extend(new_atoms)
                    work.extend(extra_terms)
                    continue
                raise SolverError(f"Unsupported boolean term {term}")
            raise SolverError(f"Unsupported constraint {term!r}")
        return self._solve_atoms(atoms, seed_box=seed_box)

    def _comparison_to_atoms(
        self, term: BinaryTerm
    ) -> Optional[Tuple[List[LinearAtom], List[Term]]]:
        """Convert a comparison into linear atoms (and possibly residual terms).

        Boolean-sorted comparisons (``flag == true``, ``a != b`` over booleans)
        are rewritten into equivalent boolean formulae and returned as residual
        terms.  Returns None when the comparison is trivially false.
        """
        left, right = term.left, term.right
        if left.sort == BOOL_SORT or right.sort == BOOL_SORT:
            if term.op not in ("==", "!="):
                raise SolverError(f"Ordering comparison over booleans: {term}")
            equal = BinaryTerm(
                "||",
                BinaryTerm("&&", left, right),
                BinaryTerm("&&", negate(left), negate(right)),
            )
            residual = equal if term.op == "==" else negate(equal)
            return [], [simplify(residual)]
        try:
            atom = linearize_comparison(term.op, left, right)
        except NonLinearError:
            return [], [self._eliminate_nonlinear(term)]
        if atom.is_trivially_false():
            return None
        if atom.is_trivially_true():
            return [], []
        return [atom], []

    def _eliminate_nonlinear(self, term: BinaryTerm) -> Term:
        """Last-resort handling of non-linear comparisons.

        The artifact programs in this reproduction only generate linear
        constraints; if a client feeds non-linear arithmetic we reject it
        explicitly rather than silently mis-deciding it.
        """
        raise SolverError(f"Non-linear constraint is outside the decidable fragment: {term}")

    # -- linear core ---------------------------------------------------------

    def _solve_atoms(
        self, atoms: List[LinearAtom], seed_box: Optional[Domains] = None
    ) -> SolverResult:
        # Split every != atom into two < alternatives (ints: <= with shift).
        definite: List[LinearAtom] = []
        disequalities: List[LinearAtom] = []
        for atom in atoms:
            if atom.is_trivially_true():
                continue
            if atom.is_trivially_false():
                return SolverResult(False)
            if atom.op == NE:
                disequalities.append(atom)
            else:
                definite.append(atom)
        return self._solve_with_splits(definite, disequalities, seed_box)

    def _solve_with_splits(
        self,
        definite: List[LinearAtom],
        disequalities: List[LinearAtom],
        seed_box: Optional[Domains] = None,
    ) -> SolverResult:
        if not disequalities:
            return self._solve_box(definite, seed_box)
        head, rest = disequalities[0], disequalities[1:]
        self.statistics.case_splits += 1
        # expr != 0  ==>  expr <= -1  or  -expr <= -1
        less = LinearAtom(head.expr.shift(1), LE)
        greater = LinearAtom(head.expr.negate().shift(1), LE)
        for alternative in (less, greater):
            result = self._solve_with_splits(definite + [alternative], rest, seed_box)
            if result.satisfiable:
                return result
        return SolverResult(False)

    def _solve_box(
        self, atoms: List[LinearAtom], seed_box: Optional[Domains] = None
    ) -> SolverResult:
        variables = set()
        for atom in atoms:
            variables |= atom.variables()
        domains = initial_domains(variables, self.bound)
        if seed_box:
            # Branch-and-bound starts from the caller's already-narrowed
            # intervals instead of the full ±bound box (the remaining half
            # of the PR 3 solver rung).  Only intersect: a seed may not
            # widen the solver's own bound, and variables the seed does not
            # mention keep their defaults.
            tightened = False
            for name, interval in seed_box.items():
                current = domains.get(name)
                if current is None:
                    continue
                merged = current.intersect(interval)
                if merged != current:
                    tightened = True
                    domains[name] = merged
            if tightened:
                self.statistics.box_seeds += 1
        return self._search(atoms, domains, 0)

    def _search(self, atoms: List[LinearAtom], domains: Domains, depth: int) -> SolverResult:
        self.statistics.propagations += 1
        narrowed = propagate(atoms, domains)
        if narrowed is None:
            return SolverResult(False)
        # If every atom is satisfied over the whole box, any point works; pick
        # the one closest to zero so generated test inputs stay readable.
        if all(atom_definitely_satisfied(atom, narrowed) for atom in atoms):
            model = {
                name: value_closest_to_zero(interval) for name, interval in narrowed.items()
            }
            return SolverResult(True, model)
        # All singleton but not all satisfied => this box is a single failing point.
        split_candidates = [
            (interval.width, name)
            for name, interval in narrowed.items()
            if not interval.is_singleton
        ]
        if not split_candidates:
            model = {name: interval.low for name, interval in narrowed.items()}
            if all(atom.holds(model) for atom in atoms):
                return SolverResult(True, model)
            return SolverResult(False)
        self.statistics.branch_steps += 1
        if self.statistics.branch_steps > self.max_branch_steps:
            raise SolverError("Branch-and-bound step limit exceeded")
        # A query admitted before the deadline may still straddle it; check
        # inside the search loop so a hard query cannot overrun the budget
        # by more than one branch-and-bound step.
        if self.deadline is not None:
            self.deadline.charge()
        # Split the narrowest non-singleton interval at its midpoint, trying the
        # half nearer to zero first so that models (and therefore generated test
        # inputs) stay small in magnitude.
        _, name = min(split_candidates)
        interval = narrowed[name]
        midpoint = (interval.low + interval.high) // 2
        halves = [Interval(interval.low, midpoint), Interval(midpoint + 1, interval.high)]
        halves.sort(key=lambda half: min(abs(half.low), abs(half.high), abs(value_closest_to_zero(half))))
        for half in halves:
            child = dict(narrowed)
            child[name] = half
            result = self._search(atoms, child, depth + 1)
            if result.satisfiable:
                return result
        return SolverResult(False)

    # -- model checking ------------------------------------------------------

    def _verify_model(self, constraints: Sequence[Term], model: Dict[str, int]) -> None:
        assignment: Assignment = dict(model)
        for term in constraints:
            missing = term.symbols() - set(assignment)
            for name in missing:
                assignment[name] = 0
            value = term.evaluate(_booleanize(term, assignment))
            if not value:
                raise SolverError(
                    f"Internal error: model {model} does not satisfy constraint {term}"
                )


def atoms_to_terms(atoms: List[LinearAtom]) -> List[Term]:
    """Convert linear atoms back to terms (kept for clients and debugging)."""
    terms: List[Term] = []
    for atom in atoms:
        expr_term: Term = IntConst(atom.expr.constant)
        for name, coeff in atom.expr.coeffs:
            product: Term = Symbol(name)
            if coeff != 1:
                product = BinaryTerm("*", IntConst(coeff), Symbol(name))
            expr_term = BinaryTerm("+", expr_term, product)
        terms.append(BinaryTerm(atom.op, expr_term, IntConst(0)))
    return terms


def _booleanize(term: Term, assignment: Assignment) -> Assignment:
    """Map 0/1 integers back to booleans for boolean-sorted symbols in ``term``."""
    result: Assignment = dict(assignment)
    for symbol in _collect_symbols(term):
        if symbol.sort == BOOL_SORT and symbol.name in result:
            result[symbol.name] = bool(result[symbol.name])
    return result


def _collect_symbols(term: Term) -> List[Symbol]:
    found: List[Symbol] = []
    stack = [term]
    while stack:
        current = stack.pop()
        if isinstance(current, Symbol):
            found.append(current)
        elif isinstance(current, BinaryTerm):
            stack.append(current.left)
            stack.append(current.right)
        elif isinstance(current, (NotTerm,)):
            stack.append(current.operand)
        elif hasattr(current, "operand"):
            stack.append(current.operand)
    return found
