"""Symbolic terms: the expression language shared by the solver and the symbolic executor.

A :class:`Term` is an immutable expression tree over integer and boolean
symbols, constants and operators.  Path conditions are conjunctions of
boolean-sorted terms.  The same representation is used for the symbolic
values stored in symbolic states (e.g. ``Y + X`` in Figure 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Union

INT_SORT = "int"
BOOL_SORT = "bool"

ConcreteValue = Union[int, bool]
Assignment = Dict[str, ConcreteValue]


class EvaluationError(Exception):
    """Raised when a term cannot be evaluated under a given assignment."""


@dataclass(frozen=True)
class Term:
    """Base class of all symbolic terms."""

    @property
    def sort(self) -> str:
        raise NotImplementedError

    def symbols(self) -> FrozenSet[str]:
        """The names of all symbolic variables occurring in the term."""
        raise NotImplementedError

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        """Evaluate the term under a concrete assignment of its symbols."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Term"]) -> "Term":
        """Replace symbols by terms according to ``mapping``."""
        raise NotImplementedError

    # Convenience constructors so engine code reads naturally.

    def __add__(self, other: "Term") -> "Term":
        return BinaryTerm("+", self, _as_term(other))

    def __sub__(self, other: "Term") -> "Term":
        return BinaryTerm("-", self, _as_term(other))

    def __mul__(self, other: "Term") -> "Term":
        return BinaryTerm("*", self, _as_term(other))


@dataclass(frozen=True)
class IntConst(Term):
    """An integer constant."""

    value: int

    @property
    def sort(self) -> str:
        return INT_SORT

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return self.value

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return self

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolConst(Term):
    """A boolean constant."""

    value: bool

    @property
    def sort(self) -> str:
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return self.value

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return self

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = BoolConst(True)
FALSE = BoolConst(False)


@dataclass(frozen=True)
class Symbol(Term):
    """A symbolic input variable, e.g. the ``X`` standing for argument ``x``."""

    name: str
    symbol_sort: str = INT_SORT

    @property
    def sort(self) -> str:
        return self.symbol_sort

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        if self.name not in assignment:
            raise EvaluationError(f"No value for symbol {self.name!r}")
        return assignment[self.name]

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return mapping.get(self.name, self)

    def __str__(self) -> str:
        return self.name


#: Operator groups; the solver relies on these sets to classify terms.
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
LOGICAL_OPS = frozenset({"&&", "||"})

_NEGATED_COMPARISON = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True)
class BinaryTerm(Term):
    """A binary operation over two terms."""

    op: str
    left: Term
    right: Term

    @property
    def sort(self) -> str:
        if self.op in ARITHMETIC_OPS:
            return INT_SORT
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.left.symbols() | self.right.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        left = self.left.evaluate(assignment)
        right = self.right.evaluate(assignment)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                raise EvaluationError("Division by zero")
            return _java_div(left, right)
        if self.op == "%":
            if right == 0:
                raise EvaluationError("Modulo by zero")
            return _java_mod(left, right)
        if self.op == "==":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "&&":
            return bool(left) and bool(right)
        if self.op == "||":
            return bool(left) or bool(right)
        raise EvaluationError(f"Unknown operator {self.op!r}")

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return BinaryTerm(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class NotTerm(Term):
    """Boolean negation."""

    operand: Term

    @property
    def sort(self) -> str:
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.operand.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return not bool(self.operand.evaluate(assignment))

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return NotTerm(self.operand.substitute(mapping))

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True)
class NegTerm(Term):
    """Integer negation."""

    operand: Term

    @property
    def sort(self) -> str:
        return INT_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.operand.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return -self.operand.evaluate(assignment)

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return NegTerm(self.operand.substitute(mapping))

    def __str__(self) -> str:
        return f"-({self.operand})"


def _as_term(value) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"Cannot convert {value!r} to a Term")


def _java_div(left: int, right: int) -> int:
    """Integer division truncating toward zero (Java/C semantics)."""
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return quotient


def _java_mod(left: int, right: int) -> int:
    """Remainder consistent with :func:`_java_div`."""
    return left - _java_div(left, right) * right


def int_symbol(name: str) -> Symbol:
    """Create an integer-sorted symbolic variable."""
    return Symbol(name, INT_SORT)


def bool_symbol(name: str) -> Symbol:
    """Create a boolean-sorted symbolic variable."""
    return Symbol(name, BOOL_SORT)


def negate(term: Term) -> Term:
    """Boolean negation with comparison flipping and De Morgan rewriting.

    Rewriting conjunctions/disjunctions eagerly keeps the result in a form the
    solver's splitter consumes directly and guarantees that repeatedly negating
    a term terminates.
    """
    if isinstance(term, BoolConst):
        return BoolConst(not term.value)
    if isinstance(term, NotTerm):
        return term.operand
    if isinstance(term, BinaryTerm) and term.op in _NEGATED_COMPARISON:
        return BinaryTerm(_NEGATED_COMPARISON[term.op], term.left, term.right)
    if isinstance(term, BinaryTerm) and term.op == "&&":
        return BinaryTerm("||", negate(term.left), negate(term.right))
    if isinstance(term, BinaryTerm) and term.op == "||":
        return BinaryTerm("&&", negate(term.left), negate(term.right))
    return NotTerm(term)


def conjunction(terms) -> Term:
    """Build the conjunction of an iterable of boolean terms."""
    result: Term = TRUE
    first = True
    for term in terms:
        if first:
            result = term
            first = False
        else:
            result = BinaryTerm("&&", result, term)
    return result
