"""Symbolic terms: the expression language shared by the solver and the symbolic executor.

A :class:`Term` is an immutable expression tree over integer and boolean
symbols, constants and operators.  Path conditions are conjunctions of
boolean-sorted terms.  The same representation is used for the symbolic
values stored in symbolic states (e.g. ``Y + X`` in Figure 1 of the paper).

Terms are *hash-consable*: :func:`intern_term` (and the ``mk_*`` factory
functions) return a canonical instance per structurally-distinct term, so

* equality between two interned terms is a pointer comparison,
* every term's structural hash is computed once and cached, and
* caches throughout the solver can key on small integer ``term_id`` values
  instead of sorted string renderings.

Plain dataclass construction (``BinaryTerm("+", x, y)``) still works and
still compares structurally, so client code and tests are unaffected; the
hot paths (path-condition extension, solver cache keys, memoized
simplification) all funnel through the interning constructors.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple, Union

INT_SORT = "int"
BOOL_SORT = "bool"

ConcreteValue = Union[int, bool]
Assignment = Dict[str, ConcreteValue]


class EvaluationError(Exception):
    """Raised when a term cannot be evaluated under a given assignment."""


@dataclass(frozen=True, eq=False)
class Term:
    """Base class of all symbolic terms.

    Equality is structural with an identity fast path; hashes are cached on
    first use.  Interned terms (see :func:`intern_term`) additionally carry a
    small integer ``term_id`` and compare equal iff they are the same object.
    """

    @property
    def sort(self) -> str:
        raise NotImplementedError

    def symbols(self) -> FrozenSet[str]:
        """The names of all symbolic variables occurring in the term."""
        raise NotImplementedError

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        """Evaluate the term under a concrete assignment of its symbols."""
        raise NotImplementedError

    def substitute(self, mapping: Dict[str, "Term"]) -> "Term":
        """Replace symbols by terms according to ``mapping``."""
        raise NotImplementedError

    def _fields(self) -> tuple:
        """The tuple of dataclass field values (used for structural equality)."""
        raise NotImplementedError

    # -- hash consing ---------------------------------------------------------

    @property
    def is_interned(self) -> bool:
        return "term_id" in self.__dict__

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if other.__class__ is not self.__class__:
            return NotImplemented
        # Child comparisons short-circuit on identity for interned subterms,
        # so the structural fallback is cheap in practice.
        return self._fields() == other._fields()

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.__class__.__name__,) + self._fields())
            object.__setattr__(self, "_hash", cached)
        return cached

    # Convenience constructors so engine code reads naturally.

    def __add__(self, other: "Term") -> "Term":
        return BinaryTerm("+", self, _as_term(other))

    def __sub__(self, other: "Term") -> "Term":
        return BinaryTerm("-", self, _as_term(other))

    def __mul__(self, other: "Term") -> "Term":
        return BinaryTerm("*", self, _as_term(other))


@dataclass(frozen=True, eq=False)
class IntConst(Term):
    """An integer constant."""

    value: int

    @property
    def sort(self) -> str:
        return INT_SORT

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return self.value

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return self

    def _fields(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True, eq=False)
class BoolConst(Term):
    """A boolean constant."""

    value: bool

    @property
    def sort(self) -> str:
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return frozenset()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return self.value

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return self

    def _fields(self) -> tuple:
        return (self.value,)

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True, eq=False)
class Symbol(Term):
    """A symbolic input variable, e.g. the ``X`` standing for argument ``x``."""

    name: str
    symbol_sort: str = INT_SORT

    @property
    def sort(self) -> str:
        return self.symbol_sort

    def symbols(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        if self.name not in assignment:
            raise EvaluationError(f"No value for symbol {self.name!r}")
        return assignment[self.name]

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return mapping.get(self.name, self)

    def _fields(self) -> tuple:
        return (self.name, self.symbol_sort)

    def __str__(self) -> str:
        return self.name


#: Operator groups; the solver relies on these sets to classify terms.
ARITHMETIC_OPS = frozenset({"+", "-", "*", "/", "%"})
COMPARISON_OPS = frozenset({"==", "!=", "<", "<=", ">", ">="})
LOGICAL_OPS = frozenset({"&&", "||"})

_NEGATED_COMPARISON = {
    "==": "!=",
    "!=": "==",
    "<": ">=",
    "<=": ">",
    ">": "<=",
    ">=": "<",
}


@dataclass(frozen=True, eq=False)
class BinaryTerm(Term):
    """A binary operation over two terms."""

    op: str
    left: Term
    right: Term

    @property
    def sort(self) -> str:
        if self.op in ARITHMETIC_OPS:
            return INT_SORT
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.left.symbols() | self.right.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        left = self.left.evaluate(assignment)
        right = self.right.evaluate(assignment)
        if self.op == "+":
            return left + right
        if self.op == "-":
            return left - right
        if self.op == "*":
            return left * right
        if self.op == "/":
            if right == 0:
                raise EvaluationError("Division by zero")
            return _java_div(left, right)
        if self.op == "%":
            if right == 0:
                raise EvaluationError("Modulo by zero")
            return _java_mod(left, right)
        if self.op == "==":
            return left == right
        if self.op == "!=":
            return left != right
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        if self.op == ">=":
            return left >= right
        if self.op == "&&":
            return bool(left) and bool(right)
        if self.op == "||":
            return bool(left) or bool(right)
        raise EvaluationError(f"Unknown operator {self.op!r}")

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return BinaryTerm(self.op, self.left.substitute(mapping), self.right.substitute(mapping))

    def _fields(self) -> tuple:
        return (self.op, self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, eq=False)
class NotTerm(Term):
    """Boolean negation."""

    operand: Term

    @property
    def sort(self) -> str:
        return BOOL_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.operand.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return not bool(self.operand.evaluate(assignment))

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return NotTerm(self.operand.substitute(mapping))

    def _fields(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, eq=False)
class NegTerm(Term):
    """Integer negation."""

    operand: Term

    @property
    def sort(self) -> str:
        return INT_SORT

    def symbols(self) -> FrozenSet[str]:
        return self.operand.symbols()

    def evaluate(self, assignment: Assignment) -> ConcreteValue:
        return -self.operand.evaluate(assignment)

    def substitute(self, mapping: Dict[str, Term]) -> Term:
        return NegTerm(self.operand.substitute(mapping))

    def _fields(self) -> tuple:
        return (self.operand,)

    def __str__(self) -> str:
        return f"-({self.operand})"


# -- interning ----------------------------------------------------------------

#: Canonical instance per structural key.  Keys use the ``id`` of interned
#: children, so building one is O(1) instead of O(term size).
#:
#: The table holds its terms *weakly*: once nothing outside the interning
#: machinery references a term (no live state, path condition, cache entry or
#: parent term), its entry evaporates, so the table tracks the live term
#: population instead of every term ever built -- repeated independent runs
#: in one process no longer grow it monotonically.  Weakness is safe by
#: construction: a composite entry's key embeds ``id(child)``, and the entry's
#: value holds its children strongly, so a child's id can never be recycled
#: while any live entry mentions it.  An evicted term that is still reachable
#: elsewhere keeps behaving correctly (structural equality, cached hash, its
#: old ``term_id``); it merely stops being the canonical instance for new
#: constructions, exactly like after :func:`clear_intern_table`.
_INTERN_TABLE: "weakref.WeakValueDictionary[tuple, Term]" = weakref.WeakValueDictionary()
_NEXT_TERM_ID = 0


def _register(key: tuple, term: Term) -> Term:
    global _NEXT_TERM_ID
    existing = _INTERN_TABLE.get(key)
    if existing is not None:
        return existing
    object.__setattr__(term, "term_id", _NEXT_TERM_ID)
    _NEXT_TERM_ID += 1
    _INTERN_TABLE[key] = term
    return term


def interned_count() -> int:
    """Number of distinct terms currently alive in the intern table.

    Interning is weak, so this tracks the *live* term population: terms
    whose last outside reference is dropped disappear from the count (after
    garbage collection, for terms kept alive by reference cycles).
    """
    return len(_INTERN_TABLE)


def clear_intern_table() -> None:
    """Drop all interned terms (test isolation helper).

    Safe at any time: already-constructed terms keep behaving correctly, they
    merely stop being the canonical instance for new constructions.  The
    immortal module-level :data:`TRUE`/:data:`FALSE` constants are re-seeded
    immediately: simplification returns them directly, so they must remain
    the canonical booleans in the fresh epoch or structurally equal results
    would stop sharing a ``term_key``.
    """
    _INTERN_TABLE.clear()
    _INTERN_TABLE[("b", True)] = TRUE
    _INTERN_TABLE[("b", False)] = FALSE


def mk_int(value: int) -> IntConst:
    key = ("i", value)
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, IntConst(value))
    return term


def mk_bool(value: bool) -> BoolConst:
    key = ("b", value)
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, BoolConst(value))
    return term


def mk_symbol(name: str, sort: str = INT_SORT) -> Symbol:
    key = ("s", name, sort)
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, Symbol(name, sort))
    return term


def mk_binary(op: str, left: Term, right: Term) -> BinaryTerm:
    left = intern_term(left)
    right = intern_term(right)
    key = ("o", op, id(left), id(right))
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, BinaryTerm(op, left, right))
    return term


def mk_not(operand: Term) -> NotTerm:
    operand = intern_term(operand)
    key = ("n", id(operand))
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, NotTerm(operand))
    return term


def mk_neg(operand: Term) -> NegTerm:
    operand = intern_term(operand)
    key = ("m", id(operand))
    term = _INTERN_TABLE.get(key)
    if term is None:
        term = _register(key, NegTerm(operand))
    return term


def intern_term(term: Term) -> Term:
    """Return the canonical instance structurally equal to ``term``.

    A plain term remembers (and strongly holds) its canonical twin: repeat
    interning of the same instance is O(1), and -- since interning is weak
    -- the twin provably outlives the plain term, so ``term_key`` stays
    stable for as long as the term itself is referenced anywhere.
    """
    if "term_id" in term.__dict__:
        return term
    canonical = term.__dict__.get("_canonical")
    if canonical is not None:
        return canonical
    if isinstance(term, IntConst):
        canonical = mk_int(term.value)
    elif isinstance(term, BoolConst):
        canonical = mk_bool(term.value)
    elif isinstance(term, Symbol):
        canonical = mk_symbol(term.name, term.symbol_sort)
    elif isinstance(term, BinaryTerm):
        canonical = mk_binary(term.op, term.left, term.right)
    elif isinstance(term, NotTerm):
        canonical = mk_not(term.operand)
    elif isinstance(term, NegTerm):
        canonical = mk_neg(term.operand)
    else:
        raise TypeError(f"Cannot intern term of type {type(term).__name__}")
    object.__setattr__(term, "_canonical", canonical)
    return canonical


def term_key(term: Term) -> int:
    """A small, hashable, order-stable cache key for ``term`` (its intern id)."""
    interned = intern_term(term)
    return interned.__dict__["term_id"]


def _cached_symbols(term: Term) -> FrozenSet[str]:
    # Same instance-attribute slot as summary_cache.term_symbols, so the two
    # caches share work (summary_cache imports from here, not the reverse).
    cached = term.__dict__.get("_symbols")
    if cached is None:
        cached = term.symbols()
        object.__setattr__(term, "_symbols", cached)
    return cached


def substitute(term: Term, mapping: Dict[str, Term]) -> Term:
    """Replace every :class:`Symbol` named in ``mapping`` by its image.

    The result is always interned, and subterms mentioning no mapped symbol
    are returned *identically* (not rebuilt): substituting with an empty or
    irrelevant mapping is ``intern_term(term)``, so interned inputs come back
    ``is``-identical.  Shared subterms are rewritten once per call (the memo
    is keyed by intern identity, which is stable for the duration of the walk
    because every memoized term is reachable from ``term`` or ``mapping``).

    This is the instantiation primitive for compositional callee summaries:
    constraints and writes recorded over fresh formal symbols are mapped onto
    a call site's actual argument terms with one structural pass, preserving
    all interning-derived invariants (``term_key`` stability, memoized
    ``simplify`` idempotence, cached symbol sets).
    """
    if not mapping:
        return intern_term(term)
    interned_mapping = {name: intern_term(value) for name, value in mapping.items()}
    names = frozenset(interned_mapping)
    memo: Dict[int, Term] = {}

    def walk(t: Term) -> Term:
        t = intern_term(t)
        key = id(t)
        hit = memo.get(key)
        if hit is not None:
            return hit
        if _cached_symbols(t).isdisjoint(names):
            result = t
        elif isinstance(t, Symbol):
            result = interned_mapping.get(t.name, t)
        elif isinstance(t, BinaryTerm):
            result = mk_binary(t.op, walk(t.left), walk(t.right))
        elif isinstance(t, NotTerm):
            result = mk_not(walk(t.operand))
        elif isinstance(t, NegTerm):
            result = mk_neg(walk(t.operand))
        else:  # constants have no symbols; unreachable via the disjoint check
            result = t
        memo[key] = result
        return result

    return walk(term)


TRUE = mk_bool(True)
FALSE = mk_bool(False)


def _as_term(value) -> Term:
    if isinstance(value, Term):
        return value
    if isinstance(value, bool):
        return BoolConst(value)
    if isinstance(value, int):
        return IntConst(value)
    raise TypeError(f"Cannot convert {value!r} to a Term")


def _java_div(left: int, right: int) -> int:
    """Integer division truncating toward zero (Java/C semantics)."""
    quotient = abs(left) // abs(right)
    if (left < 0) != (right < 0):
        quotient = -quotient
    return quotient


def _java_mod(left: int, right: int) -> int:
    """Remainder consistent with :func:`_java_div`."""
    return left - _java_div(left, right) * right


def int_symbol(name: str) -> Symbol:
    """Create an integer-sorted symbolic variable."""
    return mk_symbol(name, INT_SORT)


def bool_symbol(name: str) -> Symbol:
    """Create a boolean-sorted symbolic variable."""
    return mk_symbol(name, BOOL_SORT)


def negate(term: Term) -> Term:
    """Boolean negation with comparison flipping and De Morgan rewriting.

    Rewriting conjunctions/disjunctions eagerly keeps the result in a form the
    solver's splitter consumes directly and guarantees that repeatedly negating
    a term terminates.
    """
    if isinstance(term, BoolConst):
        return mk_bool(not term.value)
    if isinstance(term, NotTerm):
        return term.operand
    if isinstance(term, BinaryTerm) and term.op in _NEGATED_COMPARISON:
        return mk_binary(_NEGATED_COMPARISON[term.op], term.left, term.right)
    if isinstance(term, BinaryTerm) and term.op == "&&":
        return mk_binary("||", negate(term.left), negate(term.right))
    if isinstance(term, BinaryTerm) and term.op == "||":
        return mk_binary("&&", negate(term.left), negate(term.right))
    return mk_not(term)


def conjunction(terms) -> Term:
    """Build the conjunction of an iterable of boolean terms."""
    result: Term = TRUE
    first = True
    for term in terms:
        if first:
            result = term
            first = False
        else:
            result = mk_binary("&&", result, term)
    return result
