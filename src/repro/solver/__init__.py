"""Constraint solving for path conditions.

This subpackage fills the role of the Choco solver in the paper's SPF-based
implementation: checking path conditions for satisfiability during symbolic
execution and producing concrete models used for test input generation.
"""

from repro.solver.context import SolverContext
from repro.solver.core import (
    BudgetExhausted,
    ConstraintSolver,
    DeadlineBudget,
    SolverError,
    SolverResult,
    SolverStatistics,
)
from repro.solver.intervals import DEFAULT_BOUND, Interval, initial_domains, propagate
from repro.solver.linear import (
    EQ,
    LE,
    NE,
    LinearAtom,
    LinearExpr,
    NonLinearError,
    linearize_comparison,
    linearize_int,
)
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    FALSE,
    INT_SORT,
    TRUE,
    Assignment,
    BinaryTerm,
    BoolConst,
    EvaluationError,
    IntConst,
    NegTerm,
    NotTerm,
    Symbol,
    Term,
    bool_symbol,
    conjunction,
    int_symbol,
    intern_term,
    interned_count,
    negate,
    term_key,
)

__all__ = [
    "SolverContext",
    "BudgetExhausted",
    "ConstraintSolver",
    "DeadlineBudget",
    "SolverError",
    "SolverResult",
    "SolverStatistics",
    "DEFAULT_BOUND",
    "Interval",
    "initial_domains",
    "propagate",
    "EQ",
    "LE",
    "NE",
    "LinearAtom",
    "LinearExpr",
    "NonLinearError",
    "linearize_comparison",
    "linearize_int",
    "simplify",
    "BOOL_SORT",
    "INT_SORT",
    "TRUE",
    "FALSE",
    "Assignment",
    "BinaryTerm",
    "BoolConst",
    "EvaluationError",
    "IntConst",
    "NegTerm",
    "NotTerm",
    "Symbol",
    "Term",
    "bool_symbol",
    "int_symbol",
    "conjunction",
    "intern_term",
    "interned_count",
    "negate",
    "term_key",
]
