"""Interval (bounds-consistency) propagation for linear integer constraints.

The propagator narrows per-variable integer intervals until a fixed point,
given a conjunction of :class:`~repro.solver.linear.LinearAtom` constraints.
It is the work-horse of the decision procedure: on the mostly-single-variable
constraints produced by the artifact programs it decides satisfiability
outright, and for harder conjunctions it shrinks the search box that the
branch-and-bound search then explores.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.solver.linear import EQ, LE, NE, LinearAtom

#: Default symmetric bound for symbolic integers (documented in DESIGN.md).
DEFAULT_BOUND = 1 << 16


@dataclass(frozen=True)
class Interval:
    """A closed integer interval ``[low, high]``; empty when ``low > high``."""

    low: int
    high: int

    @property
    def is_empty(self) -> bool:
        return self.low > self.high

    @property
    def is_singleton(self) -> bool:
        return self.low == self.high

    @property
    def width(self) -> int:
        return max(0, self.high - self.low + 1)

    def contains(self, value: int) -> bool:
        return self.low <= value <= self.high

    def intersect(self, other: "Interval") -> "Interval":
        return Interval(max(self.low, other.low), min(self.high, other.high))

    def __str__(self) -> str:
        return f"[{self.low}, {self.high}]"


Domains = Dict[str, Interval]


class Inconsistent(Exception):
    """Raised internally when propagation empties some variable's interval."""


def initial_domains(variables: Iterable[str], bound: int = DEFAULT_BOUND) -> Domains:
    """A fresh domain map giving every variable the default interval."""
    return {name: Interval(-bound, bound) for name in variables}


def propagate(atoms: List[LinearAtom], domains: Domains, max_rounds: int = 64) -> Optional[Domains]:
    """Narrow ``domains`` using bounds consistency on ``atoms``.

    Returns the narrowed domains, or ``None`` when the constraint set is
    detected to be unsatisfiable over the given box.  ``!=`` atoms only
    propagate when their left-hand side is constant over the current box or
    when they can trim an endpoint.
    """
    current = dict(domains)
    try:
        for _ in range(max_rounds):
            changed = False
            for atom in atoms:
                changed |= _propagate_atom(atom, current)
            if not changed:
                break
        return current
    except Inconsistent:
        return None


def propagate_delta(
    atoms_by_var: Mapping[str, Sequence[LinearAtom]],
    delta: Iterable[LinearAtom],
    domains: Domains,
    max_steps: Optional[int] = None,
) -> Tuple[Optional[Domains], int]:
    """Worklist propagation seeded only by the ``delta`` atoms.

    ``atoms_by_var`` indexes *every* active atom (prefix and delta) by the
    variables it mentions; an atom is (re-)examined only when it is in the
    seed or one of its variables' domains has just narrowed.  Because
    bounds-consistency narrowing is monotone, this chaotic iteration
    converges to the same fixed point as re-running :func:`propagate` over
    the whole atom set, while touching only the part of the constraint graph
    the delta can actually influence -- this is what makes an incremental
    ``push`` O(delta) instead of O(prefix).

    ``domains`` is narrowed in place and must already contain an interval
    for every variable of every indexed atom.  Returns ``(domains, steps)``
    where ``steps`` counts atom examinations, or ``(None, steps)`` when a
    conflict proves the conjunction unsatisfiable.  ``max_steps`` bounds the
    examinations (mirroring :func:`propagate`'s round cap); on exhaustion
    the current -- still sound, possibly wider -- box is returned.
    """
    queue = deque(delta)
    queued = set(queue)
    if max_steps is None:
        max_steps = 64 * max(1, sum(len(atoms) for atoms in atoms_by_var.values()))
    steps = 0
    try:
        while queue:
            steps += 1
            if steps > max_steps:
                break
            atom = queue.popleft()
            queued.discard(atom)
            before = {name: domains[name] for name in atom.variables()}
            if not _propagate_atom(atom, domains):
                continue
            for name, interval in before.items():
                if domains[name] == interval:
                    continue
                for dependent in atoms_by_var.get(name, ()):
                    if dependent not in queued:
                        queue.append(dependent)
                        queued.add(dependent)
        return domains, steps
    except Inconsistent:
        return None, steps


def _propagate_atom(atom: LinearAtom, domains: Domains) -> bool:
    if atom.op == NE:
        return _propagate_disequality(atom, domains)
    changed = _propagate_upper(atom, domains)
    if atom.op == EQ:
        # expr == 0 also implies -expr <= 0.
        mirrored = LinearAtom(atom.expr.negate(), LE)
        changed |= _propagate_upper(mirrored, domains)
    return changed


def _propagate_upper(atom: LinearAtom, domains: Domains) -> bool:
    """Propagate ``expr <= 0`` by isolating each variable in turn."""
    changed = False
    coeffs = atom.expr.coeffs
    for name, coeff in coeffs:
        rest_min, rest_max = _bounds_of_rest(atom, name, domains)
        interval = domains[name]
        if coeff > 0:
            # coeff*x <= -constant - rest  =>  x <= floor((-constant - rest_min)/coeff)
            limit = _floor_div(-atom.expr.constant - rest_min, coeff)
            new_interval = Interval(interval.low, min(interval.high, limit))
        else:
            # coeff*x <= -constant - rest with coeff < 0  =>  x >= ceil(...)
            limit = _ceil_div(-atom.expr.constant - rest_min, coeff)
            new_interval = Interval(max(interval.low, limit), interval.high)
        if new_interval.is_empty:
            raise Inconsistent()
        if new_interval != interval:
            domains[name] = new_interval
            changed = True
    if not coeffs and atom.expr.constant > 0:
        raise Inconsistent()
    return changed


def _propagate_disequality(atom: LinearAtom, domains: Domains) -> bool:
    low, high = _expr_bounds(atom, domains)
    if low == high == 0:
        raise Inconsistent()
    # Trim a domain endpoint when the expression is a single-variable one and
    # the excluded value sits exactly on that endpoint.
    coeffs = atom.expr.coeffs
    if len(coeffs) != 1:
        return False
    name, coeff = coeffs[0]
    interval = domains[name]
    changed = False
    # Value excluded: coeff*x + constant != 0  =>  x != -constant/coeff (if integral)
    numerator = -atom.expr.constant
    if numerator % coeff == 0:
        excluded = numerator // coeff
        if interval.low == excluded:
            interval = Interval(interval.low + 1, interval.high)
            changed = True
        if interval.high == excluded:
            interval = Interval(interval.low, interval.high - 1)
            changed = True
        if interval.is_empty:
            raise Inconsistent()
        if changed:
            domains[name] = interval
    return changed


def _bounds_of_rest(atom: LinearAtom, skip: str, domains: Domains) -> Tuple[int, int]:
    """Min and max of ``expr - coeff(skip)*skip - constant`` over the box."""
    low = 0
    high = 0
    for name, coeff in atom.expr.coeffs:
        if name == skip:
            continue
        interval = domains[name]
        if coeff > 0:
            low += coeff * interval.low
            high += coeff * interval.high
        else:
            low += coeff * interval.high
            high += coeff * interval.low
    return low, high


def _expr_bounds(atom: LinearAtom, domains: Domains) -> Tuple[int, int]:
    """Min and max of the atom's expression over the current box."""
    low = atom.expr.constant
    high = atom.expr.constant
    for name, coeff in atom.expr.coeffs:
        interval = domains[name]
        if coeff > 0:
            low += coeff * interval.low
            high += coeff * interval.high
        else:
            low += coeff * interval.high
            high += coeff * interval.low
    return low, high


def atom_definitely_satisfied(atom: LinearAtom, domains: Domains) -> bool:
    """True when the atom holds for every assignment in the box."""
    low, high = _expr_bounds(atom, domains)
    if atom.op == LE:
        return high <= 0
    if atom.op == EQ:
        return low == high == 0
    return high < 0 or low > 0  # NE


def atom_definitely_violated(atom: LinearAtom, domains: Domains) -> bool:
    """True when the atom fails for every assignment in the box."""
    low, high = _expr_bounds(atom, domains)
    if atom.op == LE:
        return low > 0
    if atom.op == EQ:
        return high < 0 or low > 0
    return low == high == 0  # NE


def value_closest_to_zero(interval: Interval) -> int:
    """The integer of smallest magnitude inside a non-empty interval.

    This is the shared model-extraction rule: both the complete solver's
    branch-and-bound and the incremental context's fast SAT path pick the
    point nearest zero so generated test inputs stay readable, and using one
    helper keeps the two from drifting apart.
    """
    if interval.low <= 0 <= interval.high:
        return 0
    return interval.low if interval.low > 0 else interval.high


def _floor_div(numerator: int, denominator: int) -> int:
    """floor(numerator / denominator); Python's ``//`` already floors for any sign."""
    return numerator // denominator


def _ceil_div(numerator: int, denominator: int) -> int:
    """ceil(numerator / denominator) for any sign of the denominator."""
    return -((-numerator) // denominator)
