"""Linearisation of integer terms into normal-form linear constraints.

A :class:`LinearExpr` is ``sum(coefficient * symbol) + constant`` with integer
coefficients.  A :class:`LinearAtom` is a normalised comparison of a linear
expression against zero using one of three operators:

* ``<=``  (``expr <= 0``)
* ``==``  (``expr == 0``)
* ``!=``  (``expr != 0``)

Strict inequalities and the remaining comparison operators are rewritten using
integer reasoning (``a < b`` becomes ``a - b + 1 <= 0``).  Boolean symbols are
encoded as 0/1 integer variables by the solver before linearisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.solver.terms import (
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    Symbol,
    Term,
)


class NonLinearError(Exception):
    """Raised when a term cannot be expressed as a linear integer expression."""


@dataclass(frozen=True)
class LinearExpr:
    """``sum(coeffs[name] * name) + constant`` with integer coefficients."""

    coeffs: Tuple[Tuple[str, int], ...] = ()
    constant: int = 0

    @staticmethod
    def from_dict(coeffs: Dict[str, int], constant: int) -> "LinearExpr":
        cleaned = tuple(sorted((n, c) for n, c in coeffs.items() if c != 0))
        return LinearExpr(cleaned, constant)

    def coefficient_map(self) -> Dict[str, int]:
        return dict(self.coeffs)

    def variables(self) -> FrozenSet[str]:
        return frozenset(name for name, _ in self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def add(self, other: "LinearExpr") -> "LinearExpr":
        coeffs = self.coefficient_map()
        for name, value in other.coeffs:
            coeffs[name] = coeffs.get(name, 0) + value
        return LinearExpr.from_dict(coeffs, self.constant + other.constant)

    def negate(self) -> "LinearExpr":
        return LinearExpr(tuple((n, -c) for n, c in self.coeffs), -self.constant)

    def subtract(self, other: "LinearExpr") -> "LinearExpr":
        return self.add(other.negate())

    def scale(self, factor: int) -> "LinearExpr":
        return LinearExpr(tuple((n, c * factor) for n, c in self.coeffs), self.constant * factor)

    def shift(self, delta: int) -> "LinearExpr":
        return LinearExpr(self.coeffs, self.constant + delta)

    def evaluate(self, assignment: Dict[str, int]) -> int:
        total = self.constant
        for name, coeff in self.coeffs:
            total += coeff * int(assignment[name])
        return total

    def __str__(self) -> str:
        parts = []
        for name, coeff in self.coeffs:
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.constant or not parts:
            parts.append(str(self.constant))
        return " + ".join(parts).replace("+ -", "- ")


#: Normal-form relational operators.
LE = "<="
EQ = "=="
NE = "!="


@dataclass(frozen=True)
class LinearAtom:
    """A normalised linear constraint ``expr OP 0``."""

    expr: LinearExpr
    op: str  # one of LE, EQ, NE

    def variables(self) -> FrozenSet[str]:
        return self.expr.variables()

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        value = self.expr.constant
        return (
            (self.op == LE and value <= 0)
            or (self.op == EQ and value == 0)
            or (self.op == NE and value != 0)
        )

    def is_trivially_false(self) -> bool:
        return self.expr.is_constant() and not self.is_trivially_true()

    def holds(self, assignment: Dict[str, int]) -> bool:
        value = self.expr.evaluate(assignment)
        if self.op == LE:
            return value <= 0
        if self.op == EQ:
            return value == 0
        return value != 0

    def __str__(self) -> str:
        return f"{self.expr} {self.op} 0"


def bool_symbol_atom(name: str, value: bool) -> LinearAtom:
    """Encode a boolean symbol as the 0/1 integer variable ``name``.

    ``value=True`` yields ``name - 1 == 0`` and ``value=False`` yields
    ``name == 0``.  This is the single encoding rule shared by the complete
    solver's boolean rewriting and the incremental context's delta
    linearisation, so the two layers cannot drift apart.
    """
    expr = LinearExpr(((name, 1),), -1 if value else 0)
    return LinearAtom(expr, EQ)


def linearize_int(term: Term) -> LinearExpr:
    """Convert an integer-sorted term to a :class:`LinearExpr`.

    Raises:
        NonLinearError: for products of symbolic terms, division, modulo or
            boolean-sorted sub-terms.
    """
    if isinstance(term, IntConst):
        return LinearExpr((), term.value)
    if isinstance(term, BoolConst):
        raise NonLinearError("Boolean constant in integer context")
    if isinstance(term, Symbol):
        return LinearExpr(((term.name, 1),), 0)
    if isinstance(term, NegTerm):
        return linearize_int(term.operand).negate()
    if isinstance(term, BinaryTerm):
        if term.op == "+":
            return linearize_int(term.left).add(linearize_int(term.right))
        if term.op == "-":
            return linearize_int(term.left).subtract(linearize_int(term.right))
        if term.op == "*":
            left = linearize_int(term.left)
            right = linearize_int(term.right)
            if left.is_constant():
                return right.scale(left.constant)
            if right.is_constant():
                return left.scale(right.constant)
            raise NonLinearError(f"Non-linear product: {term}")
        if term.op in ("/", "%"):
            left = linearize_int(term.left)
            right = linearize_int(term.right)
            if left.is_constant() and right.is_constant() and right.constant != 0:
                value = BinaryTerm(term.op, IntConst(left.constant), IntConst(right.constant))
                return LinearExpr((), value.evaluate({}))
            raise NonLinearError(f"Division/modulo is not linear: {term}")
        raise NonLinearError(f"Operator {term.op!r} is not an integer operator")
    raise NonLinearError(f"Cannot linearise term of type {type(term).__name__}")


def linearize_comparison(op: str, left: Term, right: Term) -> LinearAtom:
    """Convert ``left op right`` over integers into a normal-form atom."""
    difference = linearize_int(left).subtract(linearize_int(right))
    if op == "<":
        return LinearAtom(difference.shift(1), LE)
    if op == "<=":
        return LinearAtom(difference, LE)
    if op == ">":
        return LinearAtom(difference.negate().shift(1), LE)
    if op == ">=":
        return LinearAtom(difference.negate(), LE)
    if op == "==":
        return LinearAtom(difference, EQ)
    if op == "!=":
        return LinearAtom(difference, NE)
    raise NonLinearError(f"Unknown comparison operator {op!r}")
