"""Term simplification: constant folding and algebraic identities.

Keeping symbolic values small is important for two reasons: the solver
linearises fewer operators, and printed path conditions stay readable (the
paper prints conditions such as ``PedalPos + 1 == 2``).
"""

from __future__ import annotations

from repro.solver.terms import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    FALSE,
    LOGICAL_OPS,
    TRUE,
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    NotTerm,
    Term,
)


def simplify(term: Term) -> Term:
    """Return an equivalent, usually smaller, term."""
    if isinstance(term, BinaryTerm):
        left = simplify(term.left)
        right = simplify(term.right)
        return _simplify_binary(term.op, left, right)
    if isinstance(term, NotTerm):
        operand = simplify(term.operand)
        if isinstance(operand, BoolConst):
            return BoolConst(not operand.value)
        if isinstance(operand, NotTerm):
            return operand.operand
        return NotTerm(operand)
    if isinstance(term, NegTerm):
        operand = simplify(term.operand)
        if isinstance(operand, IntConst):
            return IntConst(-operand.value)
        if isinstance(operand, NegTerm):
            return operand.operand
        return NegTerm(operand)
    return term


def _simplify_binary(op: str, left: Term, right: Term) -> Term:
    folded = _fold_constants(op, left, right)
    if folded is not None:
        return folded
    if op in ARITHMETIC_OPS:
        return _simplify_arithmetic(op, left, right)
    if op in LOGICAL_OPS:
        return _simplify_logical(op, left, right)
    if op in COMPARISON_OPS:
        return _simplify_comparison(op, left, right)
    return BinaryTerm(op, left, right)


def _fold_constants(op: str, left: Term, right: Term) -> Term:
    both_int = isinstance(left, IntConst) and isinstance(right, IntConst)
    both_bool = isinstance(left, BoolConst) and isinstance(right, BoolConst)
    if not (both_int or both_bool):
        return None
    if op in ("/", "%") and isinstance(right, IntConst) and right.value == 0:
        return None  # leave division by zero to the evaluator / error paths
    value = BinaryTerm(op, left, right).evaluate({})
    if isinstance(value, bool):
        return BoolConst(value)
    return IntConst(value)


def _simplify_arithmetic(op: str, left: Term, right: Term) -> Term:
    if op == "+":
        if isinstance(left, IntConst) and left.value == 0:
            return right
        if isinstance(right, IntConst) and right.value == 0:
            return left
    elif op == "-":
        if isinstance(right, IntConst) and right.value == 0:
            return left
        if left == right:
            return IntConst(0)
    elif op == "*":
        for constant, other in ((left, right), (right, left)):
            if isinstance(constant, IntConst):
                if constant.value == 0:
                    return IntConst(0)
                if constant.value == 1:
                    return other
    elif op == "/":
        if isinstance(right, IntConst) and right.value == 1:
            return left
    return BinaryTerm(op, left, right)


def _simplify_logical(op: str, left: Term, right: Term) -> Term:
    if op == "&&":
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
    else:  # "||"
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
    if left == right:
        return left
    return BinaryTerm(op, left, right)


def _simplify_comparison(op: str, left: Term, right: Term) -> Term:
    if left == right:
        if op in ("==", "<=", ">="):
            return TRUE
        if op in ("!=", "<", ">"):
            return FALSE
    return BinaryTerm(op, left, right)
