"""Term simplification: constant folding and algebraic identities.

Keeping symbolic values small is important for two reasons: the solver
linearises fewer operators, and printed path conditions stay readable (the
paper prints conditions such as ``PedalPos + 1 == 2``).

Simplification is *memoized over interned terms*: :func:`simplify` interns
its argument, looks the result up in a table keyed by the term's intern id,
and guarantees the idempotence identity ``simplify(t) is simplify(t)`` (and
``simplify(simplify(t)) is simplify(t)``).  The symbolic executor simplifies
every branch constraint and every assigned value, so the same subterms come
back constantly; the memo turns those repeat visits into dictionary hits.
"""

from __future__ import annotations

import weakref
from typing import Dict

from repro.solver.terms import (
    ARITHMETIC_OPS,
    COMPARISON_OPS,
    FALSE,
    LOGICAL_OPS,
    TRUE,
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    NotTerm,
    Term,
    intern_term,
    mk_binary,
    mk_bool,
    mk_int,
    mk_neg,
    mk_not,
)

#: intern id of a term -> its (interned) simplified form.  Values are held
#: weakly, mirroring the weak intern table: a memo entry must not be the
#: thing keeping a dead run's terms alive.  Intern ids are never reused, so
#: a key whose argument term has died can never alias a new term -- its
#: entry just lingers until its value dies too, then evaporates.
_MEMO: "weakref.WeakValueDictionary[int, Term]" = weakref.WeakValueDictionary()


def simplify_cache_info() -> Dict[str, int]:
    """Size of the simplification memo (reported by solver statistics)."""
    return {"entries": len(_MEMO)}


def clear_simplify_cache() -> None:
    """Drop all memoized simplifications (test isolation helper)."""
    _MEMO.clear()


def simplify(term: Term) -> Term:
    """Return an equivalent, usually smaller, interned term (memoized)."""
    interned = intern_term(term)
    term_id = interned.__dict__["term_id"]
    cached = _MEMO.get(term_id)
    if cached is not None:
        return cached
    result = intern_term(_simplify(interned))
    _MEMO[term_id] = result
    # simplify is idempotent: fixing the result's entry now makes
    # ``simplify(simplify(t))`` a guaranteed table hit.
    _MEMO.setdefault(result.__dict__["term_id"], result)
    return result


def _simplify(term: Term) -> Term:
    if isinstance(term, BinaryTerm):
        left = simplify(term.left)
        right = simplify(term.right)
        return _simplify_binary(term.op, left, right)
    if isinstance(term, NotTerm):
        operand = simplify(term.operand)
        if isinstance(operand, BoolConst):
            return mk_bool(not operand.value)
        if isinstance(operand, NotTerm):
            return operand.operand
        return mk_not(operand)
    if isinstance(term, NegTerm):
        operand = simplify(term.operand)
        if isinstance(operand, IntConst):
            return mk_int(-operand.value)
        if isinstance(operand, NegTerm):
            return operand.operand
        return mk_neg(operand)
    return term


def _simplify_binary(op: str, left: Term, right: Term) -> Term:
    folded = _fold_constants(op, left, right)
    if folded is not None:
        return folded
    if op in ARITHMETIC_OPS:
        return _simplify_arithmetic(op, left, right)
    if op in LOGICAL_OPS:
        return _simplify_logical(op, left, right)
    if op in COMPARISON_OPS:
        return _simplify_comparison(op, left, right)
    return mk_binary(op, left, right)


def _fold_constants(op: str, left: Term, right: Term) -> Term:
    both_int = isinstance(left, IntConst) and isinstance(right, IntConst)
    both_bool = isinstance(left, BoolConst) and isinstance(right, BoolConst)
    if not (both_int or both_bool):
        return None
    if op in ("/", "%") and isinstance(right, IntConst) and right.value == 0:
        return None  # leave division by zero to the evaluator / error paths
    value = BinaryTerm(op, left, right).evaluate({})
    if isinstance(value, bool):
        return mk_bool(value)
    return mk_int(value)


def _simplify_arithmetic(op: str, left: Term, right: Term) -> Term:
    if op == "+":
        if isinstance(left, IntConst) and left.value == 0:
            return right
        if isinstance(right, IntConst) and right.value == 0:
            return left
    elif op == "-":
        if isinstance(right, IntConst) and right.value == 0:
            return left
        if left == right:
            return mk_int(0)
    elif op == "*":
        for constant, other in ((left, right), (right, left)):
            if isinstance(constant, IntConst):
                if constant.value == 0:
                    return mk_int(0)
                if constant.value == 1:
                    return other
    elif op == "/":
        if isinstance(right, IntConst) and right.value == 1:
            return left
    return mk_binary(op, left, right)


def _simplify_logical(op: str, left: Term, right: Term) -> Term:
    if op == "&&":
        if left == FALSE or right == FALSE:
            return FALSE
        if left == TRUE:
            return right
        if right == TRUE:
            return left
    else:  # "||"
        if left == TRUE or right == TRUE:
            return TRUE
        if left == FALSE:
            return right
        if right == FALSE:
            return left
    if left == right:
        return left
    return mk_binary(op, left, right)


def _simplify_comparison(op: str, left: Term, right: Term) -> Term:
    if left == right:
        if op in ("==", "<=", ">="):
            return TRUE
        if op in ("!=", "<", ">"):
            return FALSE
    return mk_binary(op, left, right)
