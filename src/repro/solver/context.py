"""Incremental solver contexts: push/pop solving along the DFS path.

Symbolic execution appends one branch constraint at a time and backtracks in
LIFO order, yet a stateless solver re-examines the *entire* path condition at
every branch.  A :class:`SolverContext` mirrors the executor's DFS stack:
``push(constraint)`` linearises only the new constraint and re-propagates
interval domains starting from the already-narrowed domains of the prefix,
and ``pop()`` restores the parent frame in O(1).  This is the incremental
regime Pinaka-style solvers exploit (see PAPERS.md, "Symbolic Execution
meets Incremental Solving").

Soundness/completeness split:

* if delta propagation empties a domain, the conjunction is UNSAT -- final,
  no full solve needed (an *incremental hit*);
* if every active atom is definitely satisfied over the narrowed box and no
  deferred (disjunctive / boolean-equality) term is pending, the conjunction
  is SAT with a model read off the box (also an incremental hit);
* otherwise the context falls back to the shared
  :class:`~repro.solver.core.ConstraintSolver`, whose result cache is keyed
  by interned term ids, so even fallbacks are cheap for repeated prefixes.

The statistics land in the shared solver's
:class:`~repro.solver.core.SolverStatistics` (``incremental_hits``,
``prefix_reuses``, ``context_fallbacks``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.solver.core import ConstraintSolver, SolverResult
from repro.solver.intervals import Domains, Interval, atom_definitely_satisfied, propagate
from repro.solver.linear import (
    EQ,
    LinearAtom,
    LinearExpr,
    NonLinearError,
    linearize_comparison,
)
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    COMPARISON_OPS,
    BinaryTerm,
    BoolConst,
    NotTerm,
    Symbol,
    Term,
    negate,
)


@dataclass
class _Frame:
    """One pushed constraint: its delta atoms and the resulting domains."""

    constraint: Term
    #: Linear atoms contributed by this constraint (conjunctive fragment).
    atoms: Tuple[LinearAtom, ...]
    #: Constraint fragments the incremental layer cannot decide (disjunctions,
    #: boolean equalities, non-linear leftovers); their presence disables the
    #: fast SAT path but never the fast UNSAT path.
    deferred: Tuple[Term, ...]
    #: Narrowed domains for the whole prefix, or None when propagation
    #: detected a conflict (frame is definitely UNSAT).
    domains: Optional[Domains]
    #: True when the conjunction up to this frame is proven unsatisfiable.
    unsat: bool


class SolverContext:
    """A push/pop satisfiability context sharing one :class:`ConstraintSolver`.

    Args:
        solver: the underlying complete solver (shared across contexts so its
            result cache and statistics accumulate); a fresh one is created
            when omitted.
    """

    def __init__(self, solver: Optional[ConstraintSolver] = None):
        self.solver = solver or ConstraintSolver()
        self._frames: List[_Frame] = []

    # -- stack discipline -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    def constraints(self) -> Tuple[Term, ...]:
        """The pushed constraints, oldest first (simplified, interned)."""
        return tuple(frame.constraint for frame in self._frames)

    def current_domains(self) -> Domains:
        """A copy of the narrowed interval domains of the current prefix.

        Empty for an empty context; also empty when the prefix is already
        known to be unsatisfiable (there is no box left to describe).
        """
        if not self._frames:
            return {}
        top = self._frames[-1]
        return dict(top.domains) if top.domains is not None else {}

    def push(self, constraint: Term) -> None:
        """Append one constraint, linearising only the delta.

        Propagation re-examines the prefix's atoms, but starts from the
        already-narrowed parent domains, so it usually converges in a round
        or two (a variable-indexed worklist is on the ROADMAP).
        """
        term = simplify(constraint)
        parent = self._frames[-1] if self._frames else None
        if parent is not None and parent.unsat:
            # Anything conjoined to an unsatisfiable prefix stays unsatisfiable.
            self._frames.append(_Frame(term, (), (), None, True))
            return

        atoms, deferred, definitely_false = _linearize_delta(term)
        if definitely_false:
            self._frames.append(_Frame(term, (), (), None, True))
            return

        base_domains: Domains = dict(parent.domains) if parent is not None else {}
        for atom in atoms:
            for name in atom.variables():
                if name not in base_domains:
                    bound = self.solver.bound
                    base_domains[name] = Interval(-bound, bound)
        active_atoms = self._active_atoms() + list(atoms)
        if atoms:
            narrowed = propagate(active_atoms, base_domains)
        else:
            narrowed = base_domains
        if narrowed is None:
            self._frames.append(_Frame(term, tuple(atoms), tuple(deferred), None, True))
            return
        self._frames.append(_Frame(term, tuple(atoms), tuple(deferred), narrowed, False))

    def pop(self) -> None:
        """Drop the most recent constraint, restoring the parent frame."""
        if not self._frames:
            raise IndexError("pop from an empty SolverContext")
        self._frames.pop()

    def pop_to(self, depth: int) -> None:
        """Pop frames until the context holds exactly ``depth`` constraints."""
        while len(self._frames) > depth:
            self._frames.pop()

    # -- queries --------------------------------------------------------------

    def is_satisfiable(self) -> bool:
        return self.check().satisfiable

    def check(self) -> SolverResult:
        """Decide the conjunction of all pushed constraints."""
        if not self._frames:
            return SolverResult(True, {})
        top = self._frames[-1]
        if top.unsat:
            self.solver.statistics.incremental_hits += 1
            return SolverResult(False)
        if not self._has_deferred():
            atoms = self._active_atoms()
            domains = top.domains or {}
            if all(atom_definitely_satisfied(atom, domains) for atom in atoms):
                model = {
                    name: _closest_to_zero(interval) for name, interval in domains.items()
                }
                self.solver.statistics.incremental_hits += 1
                return SolverResult(True, model)
        self.solver.statistics.context_fallbacks += 1
        return self.solver.check(self.constraints())

    def assume(self, constraint: Term) -> SolverResult:
        """Check ``conjunction(stack + [constraint])`` without growing the stack."""
        # Every frame below the probe is prefix work the probe did not redo.
        self.solver.statistics.prefix_reuses += len(self._frames)
        self.push(constraint)
        try:
            return self.check()
        finally:
            self.pop()

    def assume_is_satisfiable(self, constraint: Term) -> bool:
        return self.assume(constraint).satisfiable

    # -- internals -------------------------------------------------------------

    def _active_atoms(self) -> List[LinearAtom]:
        atoms: List[LinearAtom] = []
        for frame in self._frames:
            atoms.extend(frame.atoms)
        return atoms

    def _has_deferred(self) -> bool:
        return any(frame.deferred for frame in self._frames)


def _linearize_delta(term: Term) -> Tuple[List[LinearAtom], List[Term], bool]:
    """Split one constraint into linear atoms plus deferred residue.

    Returns ``(atoms, deferred, definitely_false)``.  Only the purely
    conjunctive integer fragment becomes atoms; anything requiring case
    splitting is deferred to the complete solver.
    """
    atoms: List[LinearAtom] = []
    deferred: List[Term] = []
    work = [term]
    while work:
        current = work.pop()
        if isinstance(current, BoolConst):
            if current.value:
                continue
            return [], [], True
        if isinstance(current, Symbol):
            if current.sort != BOOL_SORT:
                deferred.append(current)
                continue
            atoms.append(LinearAtom(LinearExpr(((current.name, 1),), -1), EQ))
            continue
        if isinstance(current, NotTerm):
            inner = current.operand
            if isinstance(inner, Symbol) and inner.sort == BOOL_SORT:
                atoms.append(LinearAtom(LinearExpr(((inner.name, 1),), 0), EQ))
                continue
            work.append(negate(inner))
            continue
        if isinstance(current, BinaryTerm):
            if current.op == "&&":
                work.append(current.left)
                work.append(current.right)
                continue
            if current.op in COMPARISON_OPS:
                left, right = current.left, current.right
                if left.sort == BOOL_SORT or right.sort == BOOL_SORT:
                    deferred.append(current)
                    continue
                try:
                    atom = linearize_comparison(current.op, left, right)
                except NonLinearError:
                    deferred.append(current)
                    continue
                if atom.is_trivially_false():
                    return [], [], True
                if atom.is_trivially_true():
                    continue
                atoms.append(atom)
                continue
            # disjunctions and anything else: complete solver's business
            deferred.append(current)
            continue
        deferred.append(current)
    return atoms, deferred, False


def _closest_to_zero(interval: Interval) -> int:
    if interval.low <= 0 <= interval.high:
        return 0
    return interval.low if interval.low > 0 else interval.high
