"""Incremental solver contexts: push/pop solving along the DFS path.

Symbolic execution appends one branch constraint at a time and backtracks in
LIFO order, yet a stateless solver re-examines the *entire* path condition at
every branch.  A :class:`SolverContext` mirrors the executor's DFS stack:
``push(constraint)`` linearises only the new constraint and re-propagates
interval domains starting from the already-narrowed domains of the prefix,
and ``pop()`` restores the parent frame in O(1).  This is the incremental
regime Pinaka-style solvers exploit (see PAPERS.md, "Symbolic Execution
meets Incremental Solving").

Propagation is *worklist-based*: the context indexes every active atom by
the variables it mentions, and a ``push`` seeds the worklist with only the
delta atoms -- a prefix atom is re-examined only when one of its variables'
domains actually narrows.  Whole-prefix re-propagation made one push O(depth)
and one lookahead O(depth²); the worklist makes a push O(delta + touched
constraint graph).

Soundness/completeness split:

* if delta propagation empties a domain, the conjunction is UNSAT -- final,
  no full solve needed (an *incremental hit*);
* if every active atom is definitely satisfied over the narrowed box and no
  deferred (disjunctive / boolean-equality) term is pending, the conjunction
  is SAT with a model read off the box (also an incremental hit);
* two-variable unit equalities (``x == y + c``), which the box can never
  decide on its own, get one more chance: the context substitutes them away
  union-find style and re-checks the rewritten system over the merged
  domains (see :func:`_substitute_equalities`);
* otherwise the context falls back to the shared
  :class:`~repro.solver.core.ConstraintSolver`, whose result cache is keyed
  by interned term ids, so even fallbacks are cheap for repeated prefixes.

The statistics land in the shared solver's
:class:`~repro.solver.core.SolverStatistics` (``incremental_hits``,
``prefix_reuses``, ``context_fallbacks``, ``worklist_rounds``,
``equality_substitutions``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.solver.core import ConstraintSolver, SolverResult
from repro.solver.intervals import (
    Domains,
    Interval,
    atom_definitely_satisfied,
    propagate,
    propagate_delta,
    value_closest_to_zero,
)
from repro.solver.linear import (
    EQ,
    LinearAtom,
    LinearExpr,
    NonLinearError,
    bool_symbol_atom,
    linearize_comparison,
)
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    COMPARISON_OPS,
    BinaryTerm,
    BoolConst,
    NotTerm,
    Symbol,
    Term,
    negate,
)


@dataclass
class _Frame:
    """One pushed constraint: its delta atoms and the resulting domains."""

    constraint: Term
    #: Linear atoms contributed by this constraint (conjunctive fragment).
    atoms: Tuple[LinearAtom, ...]
    #: Constraint fragments the incremental layer cannot decide (disjunctions,
    #: boolean equalities, non-linear leftovers); their presence disables the
    #: fast SAT path but never the fast UNSAT path.
    deferred: Tuple[Term, ...]
    #: Narrowed domains for the whole prefix, or None when propagation
    #: detected a conflict (frame is definitely UNSAT).
    domains: Optional[Domains]
    #: True when the conjunction up to this frame is proven unsatisfiable.
    unsat: bool


class SolverContext:
    """A push/pop satisfiability context sharing one :class:`ConstraintSolver`.

    Args:
        solver: the underlying complete solver (shared across contexts so its
            result cache and statistics accumulate); a fresh one is created
            when omitted.
    """

    def __init__(self, solver: Optional[ConstraintSolver] = None):
        self.solver = solver or ConstraintSolver()
        self._frames: List[_Frame] = []
        #: Active atoms indexed by the variables they mention, maintained
        #: incrementally as frames are pushed and popped; this is what lets a
        #: push re-examine an atom only when one of its variables narrows.
        self._atoms_by_var: Dict[str, List[LinearAtom]] = {}
        #: Total (atom, variable) index entries, kept incrementally so the
        #: worklist's step cap never needs an O(active atoms) rescan.
        self._indexed_entries = 0

    # -- stack discipline -----------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def depth(self) -> int:
        return len(self._frames)

    def constraints(self) -> Tuple[Term, ...]:
        """The pushed constraints, oldest first (simplified, interned)."""
        return tuple(frame.constraint for frame in self._frames)

    def current_domains(self) -> Domains:
        """A copy of the narrowed interval domains of the current prefix.

        Empty for an empty context; also empty when the prefix is already
        known to be unsatisfiable (there is no box left to describe).
        """
        if not self._frames:
            return {}
        top = self._frames[-1]
        return dict(top.domains) if top.domains is not None else {}

    def push(self, constraint: Term) -> None:
        """Append one constraint, linearising and propagating only the delta.

        The delta atoms seed a variable-indexed worklist
        (:func:`~repro.solver.intervals.propagate_delta`): a prefix atom is
        re-examined only when one of its variables' domains narrows, so a
        push costs O(delta + touched constraint graph) instead of O(prefix).
        """
        term = simplify(constraint)
        parent = self._frames[-1] if self._frames else None
        if parent is not None and parent.unsat:
            # Anything conjoined to an unsatisfiable prefix stays unsatisfiable.
            self._frames.append(_Frame(term, (), (), None, True))
            return

        atoms, deferred, definitely_false = _linearize_delta(term)
        if definitely_false:
            self._frames.append(_Frame(term, (), (), None, True))
            return

        base_domains: Domains = dict(parent.domains) if parent is not None else {}
        for atom in atoms:
            for name in atom.variables():
                if name not in base_domains:
                    bound = self.solver.bound
                    base_domains[name] = Interval(-bound, bound)
        # The delta atoms join the index first so narrowing one of their own
        # variables re-enqueues them like any other dependent atom.
        self._index_atoms(atoms)
        if atoms:
            narrowed, steps = propagate_delta(
                self._atoms_by_var,
                atoms,
                base_domains,
                max_steps=64 * max(1, self._indexed_entries),
            )
            self.solver.statistics.worklist_rounds += steps
        else:
            narrowed = base_domains
        if narrowed is None:
            self._frames.append(_Frame(term, tuple(atoms), tuple(deferred), None, True))
            return
        self._frames.append(_Frame(term, tuple(atoms), tuple(deferred), narrowed, False))

    def pop(self) -> None:
        """Drop the most recent constraint, restoring the parent frame."""
        if not self._frames:
            raise IndexError("pop from an empty SolverContext")
        frame = self._frames.pop()
        self._unindex_atoms(frame.atoms)

    def pop_to(self, depth: int) -> None:
        """Pop frames until the context holds exactly ``depth`` constraints."""
        while len(self._frames) > depth:
            self.pop()

    def sync_to(self, constraints: Sequence[Term]) -> int:
        """Align the stack with ``constraints`` by longest-common-prefix reuse.

        Pops down to the longest common prefix and pushes only the remaining
        suffix, so consecutive queries along a DFS pay for their delta
        instead of a rebuild-from-empty.  Returns the number of retained
        frames, which is also added to ``prefix_reuses`` (counting retained
        frames, not pushes, means a regression to full rebuilds shows up as
        the ratio collapsing).
        """
        common = 0
        for frame, want in zip(self._frames, constraints):
            have = frame.constraint
            if have is not want and have != want:
                break
            common += 1
        self.solver.statistics.prefix_reuses += common
        self.pop_to(common)
        for term in constraints[common:]:
            self.push(term)
        return common

    # -- queries --------------------------------------------------------------

    def is_satisfiable(self) -> bool:
        return self.check().satisfiable

    def check(self) -> SolverResult:
        """Decide the conjunction of all pushed constraints."""
        if not self._frames:
            return SolverResult(True, {})
        top = self._frames[-1]
        if top.unsat:
            self.solver.statistics.incremental_hits += 1
            return SolverResult(False)
        if not self._has_deferred():
            atoms = self._active_atoms()
            domains = top.domains or {}
            if all(atom_definitely_satisfied(atom, domains) for atom in atoms):
                model = {
                    name: value_closest_to_zero(interval)
                    for name, interval in domains.items()
                }
                self.solver.statistics.incremental_hits += 1
                return SolverResult(True, model)
            substituted = _substitute_equalities(atoms, domains)
            if substituted is not None:
                self.solver.statistics.incremental_hits += 1
                self.solver.statistics.equality_substitutions += 1
                return substituted
        self.solver.statistics.context_fallbacks += 1
        # Fallbacks hand the complete solver the domains this context already
        # propagated, so its branch-and-bound starts from the narrowed box
        # instead of the default ±2^16 bound (``box_seeds`` counts each
        # branch-and-bound start the seed actually tightened).
        return self.solver.check(self.constraints(), seed_box=top.domains)

    def assume(self, constraint: Term) -> SolverResult:
        """Check ``conjunction(stack + [constraint])`` without growing the stack."""
        # Every frame below the probe is prefix work the probe did not redo.
        self.solver.statistics.prefix_reuses += len(self._frames)
        self.push(constraint)
        try:
            return self.check()
        finally:
            self.pop()

    def assume_is_satisfiable(self, constraint: Term) -> bool:
        return self.assume(constraint).satisfiable

    # -- internals -------------------------------------------------------------

    def _active_atoms(self) -> List[LinearAtom]:
        atoms: List[LinearAtom] = []
        for frame in self._frames:
            atoms.extend(frame.atoms)
        return atoms

    def _has_deferred(self) -> bool:
        return any(frame.deferred for frame in self._frames)

    def _index_atoms(self, atoms: Sequence[LinearAtom]) -> None:
        for atom in atoms:
            for name in atom.variables():
                self._atoms_by_var.setdefault(name, []).append(atom)
                self._indexed_entries += 1

    def _unindex_atoms(self, atoms: Sequence[LinearAtom]) -> None:
        # Frames pop in LIFO order and atoms were appended in push order, so
        # each per-variable list's tail is exactly this frame's contribution.
        for atom in reversed(atoms):
            for name in atom.variables():
                entries = self._atoms_by_var[name]
                entries.pop()
                self._indexed_entries -= 1
                if not entries:
                    del self._atoms_by_var[name]


def _linearize_delta(term: Term) -> Tuple[List[LinearAtom], List[Term], bool]:
    """Split one constraint into linear atoms plus deferred residue.

    Returns ``(atoms, deferred, definitely_false)``.  Only the purely
    conjunctive integer fragment becomes atoms; anything requiring case
    splitting is deferred to the complete solver.
    """
    atoms: List[LinearAtom] = []
    deferred: List[Term] = []
    work = [term]
    while work:
        current = work.pop()
        if isinstance(current, BoolConst):
            if current.value:
                continue
            return [], [], True
        if isinstance(current, Symbol):
            if current.sort != BOOL_SORT:
                deferred.append(current)
                continue
            atoms.append(bool_symbol_atom(current.name, True))
            continue
        if isinstance(current, NotTerm):
            inner = current.operand
            if isinstance(inner, Symbol) and inner.sort == BOOL_SORT:
                atoms.append(bool_symbol_atom(inner.name, False))
                continue
            work.append(negate(inner))
            continue
        if isinstance(current, BinaryTerm):
            if current.op == "&&":
                work.append(current.left)
                work.append(current.right)
                continue
            if current.op in COMPARISON_OPS:
                left, right = current.left, current.right
                if left.sort == BOOL_SORT or right.sort == BOOL_SORT:
                    deferred.append(current)
                    continue
                try:
                    atom = linearize_comparison(current.op, left, right)
                except NonLinearError:
                    deferred.append(current)
                    continue
                if atom.is_trivially_false():
                    return [], [], True
                if atom.is_trivially_true():
                    continue
                atoms.append(atom)
                continue
            # disjunctions and anything else: complete solver's business
            deferred.append(current)
            continue
        deferred.append(current)
    return atoms, deferred, False


def _substitution_pair(atom: LinearAtom) -> Optional[Tuple[str, str, int]]:
    """Decompose a two-variable unit equality into ``(x, y, k)`` with x = y + k.

    Only ``a - b + c == 0`` shapes (both coefficients of magnitude one, with
    opposite signs) qualify; anything else returns None and stays with the
    complete solver.
    """
    if atom.op != EQ or len(atom.expr.coeffs) != 2:
        return None
    (a_name, a_coef), (b_name, b_coef) = atom.expr.coeffs
    if a_coef == 1 and b_coef == -1:
        # a - b + c == 0  =>  a = b - c
        return a_name, b_name, -atom.expr.constant
    if a_coef == -1 and b_coef == 1:
        # -a + b + c == 0  =>  b = a - c
        return b_name, a_name, -atom.expr.constant
    return None


def _substitute_equalities(atoms: List[LinearAtom], domains: Domains) -> Optional[SolverResult]:
    """Decide the conjunction by eliminating ``x == y + c`` equalities.

    Interval propagation alone can never certify a two-variable equality
    (the box has no way to express the coupling), so those atoms used to
    force a fallback to the complete solver on every check.  Here they are
    folded away instead: a union-find with offsets merges equated variables
    into one representative, every remaining atom is rewritten over the
    representatives, the representative domains are the intersections of the
    members' (shifted) domains, and the rewritten system gets the ordinary
    propagate + definitely-satisfied treatment.

    Returns a definitive :class:`SolverResult` when the substitution settles
    the query (either an offset conflict / empty merged domain / rewritten
    conflict, or a fully satisfied rewritten box with a model derived for
    the substituted variables), and None when the rewritten system is still
    undecided -- the caller then falls back to the complete solver.
    """
    # var -> (parent, offset) meaning var = parent + offset.
    parents: Dict[str, Tuple[str, int]] = {}

    def find(name: str) -> Tuple[str, int]:
        chain = []
        offset = 0
        while name in parents:
            chain.append((name, offset))
            parent, step = parents[name]
            offset += step
            name = parent
        for seen, prior in chain:
            parents[seen] = (name, offset - prior)
        return name, offset

    rewritten_source: List[LinearAtom] = []
    conflict = False
    found_equality = False
    for atom in atoms:
        pair = _substitution_pair(atom)
        if pair is None:
            rewritten_source.append(atom)
            continue
        found_equality = True
        x, y, k = pair  # x = y + k
        root_x, off_x = find(x)
        root_y, off_y = find(y)
        if root_x == root_y:
            if off_x != off_y + k:
                conflict = True
                break
            continue
        parents[root_x] = (root_y, off_y + k - off_x)
    if not found_equality:
        return None
    if conflict:
        return SolverResult(False)

    rewritten: List[LinearAtom] = []
    for atom in rewritten_source:
        coeffs: Dict[str, int] = {}
        constant = atom.expr.constant
        for name, coef in atom.expr.coeffs:
            root, offset = find(name)
            coeffs[root] = coeffs.get(root, 0) + coef
            constant += coef * offset
        expr = LinearExpr.from_dict(coeffs, constant)
        candidate = LinearAtom(expr, atom.op)
        if candidate.is_trivially_true():
            continue
        if candidate.is_trivially_false():
            return SolverResult(False)
        rewritten.append(candidate)

    merged: Domains = {}
    for name, interval in domains.items():
        root, offset = find(name)
        shifted = Interval(interval.low - offset, interval.high - offset)
        existing = merged.get(root)
        merged[root] = shifted if existing is None else existing.intersect(shifted)
    if any(interval.is_empty for interval in merged.values()):
        return SolverResult(False)

    narrowed = propagate(rewritten, merged)
    if narrowed is None:
        return SolverResult(False)
    if not all(atom_definitely_satisfied(atom, narrowed) for atom in rewritten):
        return None
    model: Dict[str, int] = {}
    for name in domains:
        root, offset = find(name)
        model[name] = value_closest_to_zero(narrowed[root]) + offset
    return SolverResult(True, model)
