"""Structural (AST) differencing of two procedure versions.

This is the "lightweight differential analysis" of the paper (§3.1): it
compares the base and modified versions of a procedure and classifies every
statement as *unchanged*, *changed*, *added* (only in the modified version) or
*removed* (only in the base version).  The classification is then mapped onto
CFG nodes by :mod:`repro.diff.diff_map`.

The algorithm aligns statement lists recursively:

1. exact matches (identical subtrees) are found with a longest-common-
   subsequence pass over deep structural keys;
2. the unmatched gaps between exact matches are paired up by statement kind
   (and by assignment target where possible); paired statements are *changed*
   (for ``if``/``while`` the bodies are diffed recursively, so an unchanged
   condition guarding a changed body stays *unchanged*);
3. anything left unpaired is *removed* (base) or *added* (modified).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lang.ast_nodes import (
    Assert,
    Assign,
    CallStmt,
    If,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarDecl,
    While,
)


class ChangeKind(Enum):
    """Classification of a statement or CFG node with respect to the other version."""

    UNCHANGED = "unchanged"
    CHANGED = "changed"
    ADDED = "added"
    REMOVED = "removed"


@dataclass
class ProcedureDiff:
    """The result of diffing two versions of a procedure."""

    base: Procedure
    modified: Procedure
    unchanged_pairs: List[Tuple[Stmt, Stmt]] = field(default_factory=list)
    changed_pairs: List[Tuple[Stmt, Stmt]] = field(default_factory=list)
    added: List[Stmt] = field(default_factory=list)
    removed: List[Stmt] = field(default_factory=list)

    # -- queries -------------------------------------------------------------

    def base_to_modified(self) -> Dict[int, Stmt]:
        """Map ``id(base statement)`` to its corresponding modified statement."""
        mapping: Dict[int, Stmt] = {}
        for base_stmt, mod_stmt in self.unchanged_pairs + self.changed_pairs:
            mapping[id(base_stmt)] = mod_stmt
        return mapping

    def modified_statement_kind(self, stmt: Stmt) -> ChangeKind:
        """Classification of a statement belonging to the modified version."""
        for _, mod_stmt in self.unchanged_pairs:
            if mod_stmt is stmt:
                return ChangeKind.UNCHANGED
        for _, mod_stmt in self.changed_pairs:
            if mod_stmt is stmt:
                return ChangeKind.CHANGED
        for mod_stmt in self.added:
            if mod_stmt is stmt:
                return ChangeKind.ADDED
        return ChangeKind.UNCHANGED

    def base_statement_kind(self, stmt: Stmt) -> ChangeKind:
        """Classification of a statement belonging to the base version."""
        for base_stmt, _ in self.unchanged_pairs:
            if base_stmt is stmt:
                return ChangeKind.UNCHANGED
        for base_stmt, _ in self.changed_pairs:
            if base_stmt is stmt:
                return ChangeKind.CHANGED
        for base_stmt in self.removed:
            if base_stmt is stmt:
                return ChangeKind.REMOVED
        return ChangeKind.UNCHANGED

    def has_changes(self) -> bool:
        return bool(self.changed_pairs or self.added or self.removed)

    def summary(self) -> str:
        return (
            f"diff({self.base.name}): {len(self.changed_pairs)} changed, "
            f"{len(self.added)} added, {len(self.removed)} removed, "
            f"{len(self.unchanged_pairs)} unchanged"
        )


def diff_procedures(base: Procedure, modified: Procedure) -> ProcedureDiff:
    """Diff two versions of (what is assumed to be) the same procedure."""
    result = ProcedureDiff(base=base, modified=modified)
    _diff_statement_lists(base.body, modified.body, result)
    return result


@dataclass
class ProgramDiff:
    """The result of diffing two versions of a whole program.

    Procedures are matched by name: a pair present in both versions is
    diffed statement-by-statement, a procedure only in the base version is
    *removed* and one only in the modified version is *added*.
    """

    base: Program
    modified: Program
    #: procedure name -> statement-level diff, for procedures in both versions.
    procedure_diffs: Dict[str, ProcedureDiff] = field(default_factory=dict)
    added_procedures: List[Procedure] = field(default_factory=list)
    removed_procedures: List[Procedure] = field(default_factory=list)

    def diff_of(self, name: str) -> Optional[ProcedureDiff]:
        return self.procedure_diffs.get(name)

    def changed_procedure_names(self) -> List[str]:
        """Names of matched procedures whose statements changed."""
        return [
            name for name, diff in self.procedure_diffs.items() if diff.has_changes()
        ]

    def has_changes(self) -> bool:
        return bool(
            self.added_procedures
            or self.removed_procedures
            or self.changed_procedure_names()
        )

    def summary(self) -> str:
        return (
            f"diff(program): {len(self.changed_procedure_names())} changed, "
            f"{len(self.added_procedures)} added, "
            f"{len(self.removed_procedures)} removed procedure(s)"
        )


def diff_program(base: Program, modified: Program) -> ProgramDiff:
    """Diff every procedure of two program versions (matched by name)."""
    result = ProgramDiff(base=base, modified=modified)
    modified_by_name = {proc.name: proc for proc in modified.procedures}
    matched = set()
    for base_proc in base.procedures:
        mod_proc = modified_by_name.get(base_proc.name)
        if mod_proc is None:
            result.removed_procedures.append(base_proc)
            continue
        matched.add(base_proc.name)
        result.procedure_diffs[base_proc.name] = diff_procedures(base_proc, mod_proc)
    for mod_proc in modified.procedures:
        if mod_proc.name not in matched:
            result.added_procedures.append(mod_proc)
    return result


# ---------------------------------------------------------------------------
# alignment machinery
# ---------------------------------------------------------------------------


def _diff_statement_lists(
    base_stmts: Sequence[Stmt], mod_stmts: Sequence[Stmt], result: ProcedureDiff
) -> None:
    matches = _lcs_matches(base_stmts, mod_stmts)
    base_index = 0
    mod_index = 0
    for match_base, match_mod in matches + [(len(base_stmts), len(mod_stmts))]:
        gap_base = list(base_stmts[base_index:match_base])
        gap_mod = list(mod_stmts[mod_index:match_mod])
        _diff_gap(gap_base, gap_mod, result)
        if match_base < len(base_stmts) and match_mod < len(mod_stmts):
            _record_identical(base_stmts[match_base], mod_stmts[match_mod], result)
        base_index = match_base + 1
        mod_index = match_mod + 1


def _lcs_matches(
    base_stmts: Sequence[Stmt], mod_stmts: Sequence[Stmt]
) -> List[Tuple[int, int]]:
    """Indices of exactly-matching statements (longest common subsequence)."""
    base_keys = [stmt.structural_key() for stmt in base_stmts]
    mod_keys = [stmt.structural_key() for stmt in mod_stmts]
    rows = len(base_keys) + 1
    cols = len(mod_keys) + 1
    table = [[0] * cols for _ in range(rows)]
    for i in range(len(base_keys) - 1, -1, -1):
        for j in range(len(mod_keys) - 1, -1, -1):
            if base_keys[i] == mod_keys[j]:
                table[i][j] = table[i + 1][j + 1] + 1
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])
    matches: List[Tuple[int, int]] = []
    i = j = 0
    while i < len(base_keys) and j < len(mod_keys):
        if base_keys[i] == mod_keys[j]:
            matches.append((i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return matches


def _record_identical(base_stmt: Stmt, mod_stmt: Stmt, result: ProcedureDiff) -> None:
    """Record an identical subtree: every nested statement pair is unchanged."""
    result.unchanged_pairs.append((base_stmt, mod_stmt))
    if isinstance(base_stmt, If) and isinstance(mod_stmt, If):
        for b, m in zip(base_stmt.then_body, mod_stmt.then_body):
            _record_identical(b, m, result)
        for b, m in zip(base_stmt.else_body, mod_stmt.else_body):
            _record_identical(b, m, result)
    elif isinstance(base_stmt, While) and isinstance(mod_stmt, While):
        for b, m in zip(base_stmt.body, mod_stmt.body):
            _record_identical(b, m, result)


def _diff_gap(gap_base: List[Stmt], gap_mod: List[Stmt], result: ProcedureDiff) -> None:
    """Pair up non-identical statements between two exact matches."""
    unmatched_mod = list(gap_mod)
    for base_stmt in gap_base:
        partner = _find_partner(base_stmt, unmatched_mod)
        if partner is None:
            _record_removed(base_stmt, result)
            continue
        unmatched_mod.remove(partner)
        _diff_pair(base_stmt, partner, result)
    for mod_stmt in unmatched_mod:
        _record_added(mod_stmt, result)


def _find_partner(base_stmt: Stmt, candidates: List[Stmt]) -> Optional[Stmt]:
    """The best modified-side counterpart for a base statement, if any."""
    same_kind = [c for c in candidates if _same_kind(base_stmt, c)]
    if not same_kind:
        return None
    # Prefer a statement with the same assignment target / declared name.
    target = _target_name(base_stmt)
    if target is not None:
        for candidate in same_kind:
            if _target_name(candidate) == target:
                return candidate
    return same_kind[0]


def _same_kind(first: Stmt, second: Stmt) -> bool:
    if isinstance(first, (Assign, VarDecl)) and isinstance(second, (Assign, VarDecl)):
        return True
    return type(first) is type(second)


def _target_name(stmt: Stmt) -> Optional[str]:
    if isinstance(stmt, Assign):
        return stmt.name
    if isinstance(stmt, VarDecl):
        return stmt.name
    if isinstance(stmt, CallStmt):
        return stmt.target
    return None


def _diff_pair(base_stmt: Stmt, mod_stmt: Stmt, result: ProcedureDiff) -> None:
    """Diff two statements that have been paired up by the gap matcher."""
    if isinstance(base_stmt, If) and isinstance(mod_stmt, If):
        condition_changed = (
            base_stmt.condition.structural_key() != mod_stmt.condition.structural_key()
        )
        pair = (base_stmt, mod_stmt)
        if condition_changed:
            result.changed_pairs.append(pair)
        else:
            result.unchanged_pairs.append(pair)
        _diff_statement_lists(base_stmt.then_body, mod_stmt.then_body, result)
        _diff_statement_lists(base_stmt.else_body, mod_stmt.else_body, result)
        return
    if isinstance(base_stmt, While) and isinstance(mod_stmt, While):
        condition_changed = (
            base_stmt.condition.structural_key() != mod_stmt.condition.structural_key()
        )
        pair = (base_stmt, mod_stmt)
        if condition_changed:
            result.changed_pairs.append(pair)
        else:
            result.unchanged_pairs.append(pair)
        _diff_statement_lists(base_stmt.body, mod_stmt.body, result)
        return
    if base_stmt.structural_key() == mod_stmt.structural_key():
        result.unchanged_pairs.append((base_stmt, mod_stmt))
    else:
        result.changed_pairs.append((base_stmt, mod_stmt))


def _record_removed(stmt: Stmt, result: ProcedureDiff) -> None:
    result.removed.append(stmt)
    for nested in _nested_statements(stmt):
        result.removed.append(nested)


def _record_added(stmt: Stmt, result: ProcedureDiff) -> None:
    result.added.append(stmt)
    for nested in _nested_statements(stmt):
        result.added.append(nested)


def _nested_statements(stmt: Stmt) -> List[Stmt]:
    nested: List[Stmt] = []
    if isinstance(stmt, If):
        for child in stmt.then_body + stmt.else_body:
            nested.append(child)
            nested.extend(_nested_statements(child))
    elif isinstance(stmt, While):
        for child in stmt.body:
            nested.append(child)
            nested.extend(_nested_statements(child))
    return nested
