"""Source-line differencing (the paper's alternative "lightweight diff").

The paper allows the differential analysis to be either a source-line diff or
an AST diff (§3.1).  The AST diff in :mod:`repro.diff.ast_diff` is what the
pipeline uses by default (it is what the paper's evaluation used); this module
provides the line-based alternative, built on :mod:`difflib`, mainly so the
two can be compared and cross-checked in tests.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.lang.ast_nodes import Procedure
from repro.lang.parser import parse_procedure
from repro.lang.pretty import pretty_procedure


@dataclass
class SourceDiff:
    """Line-level difference between two versions of a procedure's source."""

    base_lines: List[str]
    modified_lines: List[str]
    #: 1-based indices of modified-version lines that are new or rewritten.
    changed_modified_lines: Set[int] = field(default_factory=set)
    #: 1-based indices of base-version lines that were deleted or rewritten.
    changed_base_lines: Set[int] = field(default_factory=set)

    def has_changes(self) -> bool:
        return bool(self.changed_modified_lines or self.changed_base_lines)

    def unified(self) -> str:
        """A unified diff rendering (for logs and examples)."""
        return "".join(
            difflib.unified_diff(
                [line + "\n" for line in self.base_lines],
                [line + "\n" for line in self.modified_lines],
                fromfile="base",
                tofile="modified",
            )
        )


def diff_source(base_source: str, modified_source: str) -> SourceDiff:
    """Compute the line-level diff between two source texts."""
    base_lines = base_source.splitlines()
    modified_lines = modified_source.splitlines()
    matcher = difflib.SequenceMatcher(a=base_lines, b=modified_lines, autojunk=False)
    result = SourceDiff(base_lines=base_lines, modified_lines=modified_lines)
    for tag, base_start, base_end, mod_start, mod_end in matcher.get_opcodes():
        if tag == "equal":
            continue
        result.changed_base_lines.update(range(base_start + 1, base_end + 1))
        result.changed_modified_lines.update(range(mod_start + 1, mod_end + 1))
    return result


def diff_procedure_sources(base: Procedure, modified: Procedure) -> SourceDiff:
    """Pretty-print two procedure versions and diff the resulting source."""
    return diff_source(pretty_procedure(base), pretty_procedure(modified))
