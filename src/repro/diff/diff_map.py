"""Mapping AST-level change information onto CFG nodes.

The paper's pre-processing step (§3.1) marks nodes of ``CFGbase`` as
*removed*, *changed* or *unchanged* and nodes of ``CFGmod`` as *added*,
*changed* or *unchanged*, and builds ``diffMap`` which relates base nodes to
their corresponding modified nodes.  :class:`DiffMap` implements exactly that
interface, including the behaviour that ``get`` on a removed node returns
nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import CFGNode
from repro.diff.ast_diff import (
    ChangeKind,
    ProcedureDiff,
    ProgramDiff,
    diff_procedures,
    diff_program,
)
from repro.lang.ast_nodes import Procedure, Program, walk_statements


@dataclass
class DiffMap:
    """Node-level change classification for a pair of CFGs.

    For interprocedural (flattened) CFGs the map covers the spliced callee
    nodes too: each matched procedure's statement diff is projected onto
    every splice of that procedure, and ``program_diff`` carries the whole
    program-level diff alongside the entry procedure's ``procedure_diff``.
    """

    cfg_base: ControlFlowGraph
    cfg_mod: ControlFlowGraph
    procedure_diff: ProcedureDiff
    base_marks: Dict[int, ChangeKind]
    mod_marks: Dict[int, ChangeKind]
    base_to_mod: Dict[int, Optional[int]]
    program_diff: Optional[ProgramDiff] = None

    # -- paper interface ------------------------------------------------------

    def get(self, base_node: CFGNode) -> Optional[CFGNode]:
        """``diffMap.get``: the modified-version node for a base node.

        Returns ``None`` for removed nodes (the paper's "empty set").
        """
        target = self.base_to_mod.get(base_node.node_id)
        if target is None:
            return None
        return self.cfg_mod.node(target)

    def mark_of_mod_node(self, node: CFGNode) -> ChangeKind:
        """Classification of a node of the modified CFG."""
        return self.mod_marks.get(node.node_id, ChangeKind.UNCHANGED)

    def mark_of_base_node(self, node: CFGNode) -> ChangeKind:
        """Classification of a node of the base CFG."""
        return self.base_marks.get(node.node_id, ChangeKind.UNCHANGED)

    # -- derived node sets -----------------------------------------------------

    def changed_or_added_mod_nodes(self) -> List[CFGNode]:
        """Nodes of ``CFGmod`` marked changed or added (seed of the affected sets)."""
        return [
            node
            for node in self.cfg_mod.nodes
            if self.mod_marks.get(node.node_id) in (ChangeKind.CHANGED, ChangeKind.ADDED)
        ]

    def removed_base_nodes(self) -> List[CFGNode]:
        """Nodes of ``CFGbase`` marked removed."""
        return [
            node
            for node in self.cfg_base.nodes
            if self.base_marks.get(node.node_id) is ChangeKind.REMOVED
        ]

    def changed_mod_nodes(self) -> List[CFGNode]:
        return [
            node
            for node in self.cfg_mod.nodes
            if self.mod_marks.get(node.node_id) is ChangeKind.CHANGED
        ]

    def added_mod_nodes(self) -> List[CFGNode]:
        return [
            node
            for node in self.cfg_mod.nodes
            if self.mod_marks.get(node.node_id) is ChangeKind.ADDED
        ]

    def count_changed_nodes(self) -> int:
        """The "CFG Nodes Changed" column of Table 2: changed + added in CFGmod
        plus removed nodes of CFGbase (a removal is a change with no mod node)."""
        return len(self.changed_or_added_mod_nodes()) + len(self.removed_base_nodes())

    def describe(self) -> str:
        lines = [f"DiffMap for {self.cfg_mod.procedure_name}"]
        for node in self.cfg_mod.nodes:
            mark = self.mod_marks.get(node.node_id, ChangeKind.UNCHANGED)
            if mark is not ChangeKind.UNCHANGED:
                lines.append(f"  mod  {node.name:<6} {mark.value:<9} {node.label}")
        for node in self.cfg_base.nodes:
            mark = self.base_marks.get(node.node_id, ChangeKind.UNCHANGED)
            if mark is ChangeKind.REMOVED:
                lines.append(f"  base {node.name:<6} {mark.value:<9} {node.label}")
        if len(lines) == 1:
            lines.append("  (no changes)")
        return "\n".join(lines)


def build_diff_map(
    base: Procedure,
    modified: Procedure,
    cfg_base: Optional[ControlFlowGraph] = None,
    cfg_mod: Optional[ControlFlowGraph] = None,
    procedure_diff: Optional[ProcedureDiff] = None,
) -> DiffMap:
    """Diff two procedure versions and lift the result onto their CFGs."""
    from repro.cfg.builder import build_cfg  # local import to avoid cycles

    cfg_base = cfg_base or build_cfg(base)
    cfg_mod = cfg_mod or build_cfg(modified)
    procedure_diff = procedure_diff or diff_procedures(base, modified)

    base_marks: Dict[int, ChangeKind] = {}
    mod_marks: Dict[int, ChangeKind] = {}
    base_to_mod: Dict[int, Optional[int]] = {}
    _apply_procedure_diff(
        procedure_diff, cfg_base, cfg_mod, base_marks, mod_marks, base_to_mod
    )
    return DiffMap(
        cfg_base=cfg_base,
        cfg_mod=cfg_mod,
        procedure_diff=procedure_diff,
        base_marks=base_marks,
        mod_marks=mod_marks,
        base_to_mod=base_to_mod,
    )


def _apply_procedure_diff(
    diff: ProcedureDiff,
    cfg_base: ControlFlowGraph,
    cfg_mod: ControlFlowGraph,
    base_marks: Dict[int, ChangeKind],
    mod_marks: Dict[int, ChangeKind],
    base_to_mod: Dict[int, Optional[int]],
) -> None:
    """Project one procedure's statement diff onto the given CFGs.

    A statement of a callee can lower to several node runs (one per call
    splice).  The node lists of a matched statement pair are zipped
    position-by-position -- splices are emitted in flattening order, so the
    k-th base splice lines up with the k-th modified splice.  Leftover
    nodes (a call site added or removed upstream changed the splice count)
    are classified added/removed rather than silently dropped.

    Statement pairs zipped as *unchanged* whose flat nodes nonetheless hash
    differently are upgraded to changed: this is how an edited (or
    re-signatured) callee marks every call site that reaches it -- the call
    nodes embed the callee's transitive content digest in their structural
    key -- which is exactly the interprocedural change-impact propagation
    the affected-set seeds need.
    """

    def mark_pair(base_stmt, mod_stmt, kind: ChangeKind) -> None:
        base_nodes = cfg_base.nodes_for_statement(base_stmt)
        mod_nodes = cfg_mod.nodes_for_statement(mod_stmt)
        for base_node, mod_node in zip(base_nodes, mod_nodes):
            node_kind = kind
            if (
                node_kind is ChangeKind.UNCHANGED
                and base_node.structural_key() != mod_node.structural_key()
            ):
                node_kind = ChangeKind.CHANGED
            base_marks[base_node.node_id] = node_kind
            mod_marks[mod_node.node_id] = node_kind
            base_to_mod[base_node.node_id] = mod_node.node_id
        for base_node in base_nodes[len(mod_nodes):]:
            base_marks[base_node.node_id] = ChangeKind.REMOVED
            base_to_mod[base_node.node_id] = None
        for mod_node in mod_nodes[len(base_nodes):]:
            mod_marks[mod_node.node_id] = ChangeKind.ADDED

    for base_stmt, mod_stmt in diff.unchanged_pairs:
        mark_pair(base_stmt, mod_stmt, ChangeKind.UNCHANGED)
    for base_stmt, mod_stmt in diff.changed_pairs:
        mark_pair(base_stmt, mod_stmt, ChangeKind.CHANGED)
    for stmt in diff.added:
        for node in cfg_mod.nodes_for_statement(stmt):
            mod_marks[node.node_id] = ChangeKind.ADDED
    for stmt in diff.removed:
        for node in cfg_base.nodes_for_statement(stmt):
            base_marks[node.node_id] = ChangeKind.REMOVED
            base_to_mod[node.node_id] = None


def build_program_diff_map(
    base: Program,
    modified: Program,
    entry: str,
    cfg_base: Optional[ControlFlowGraph] = None,
    cfg_mod: Optional[ControlFlowGraph] = None,
    program_diff: Optional[ProgramDiff] = None,
) -> DiffMap:
    """Diff two program versions and lift the result onto flattened CFGs.

    Every matched procedure's statement diff is projected onto the entry
    procedure's flattened CFGs, so changed callee statements mark their
    spliced copies in *every* reaching call site, and an edited callee
    upgrades the call nodes themselves to changed (their structural key
    embeds the callee content digest).  Procedures the entry never reaches
    contribute no nodes and drop out naturally.
    """
    from repro.cfg.builder import build_cfg  # local import to avoid cycles

    cfg_base = cfg_base or build_cfg(base, entry)
    cfg_mod = cfg_mod or build_cfg(modified, entry)
    program_diff = program_diff or diff_program(base, modified)

    base_marks: Dict[int, ChangeKind] = {}
    mod_marks: Dict[int, ChangeKind] = {}
    base_to_mod: Dict[int, Optional[int]] = {}
    # The entry procedure first (its statement nodes dominate the map), then
    # every other matched procedure's diff projected onto the splices.
    ordered = [entry] + sorted(
        name for name in program_diff.procedure_diffs if name != entry
    )
    for name in ordered:
        diff = program_diff.procedure_diffs.get(name)
        if diff is None:
            continue
        _apply_procedure_diff(diff, cfg_base, cfg_mod, base_marks, mod_marks, base_to_mod)
    # Procedures present in only one version: their spliced nodes (if any
    # call survived) are pure additions/removals.
    for proc in program_diff.added_procedures:
        for stmt in walk_statements(proc.body):
            for node in cfg_mod.nodes_for_statement(stmt):
                mod_marks[node.node_id] = ChangeKind.ADDED
    for proc in program_diff.removed_procedures:
        for stmt in walk_statements(proc.body):
            for node in cfg_base.nodes_for_statement(stmt):
                base_marks[node.node_id] = ChangeKind.REMOVED
                base_to_mod[node.node_id] = None

    entry_diff = program_diff.procedure_diffs.get(entry)
    if entry_diff is None:
        entry_diff = diff_procedures(base.procedure(entry), modified.procedure(entry))
    return DiffMap(
        cfg_base=cfg_base,
        cfg_mod=cfg_mod,
        procedure_diff=entry_diff,
        base_marks=base_marks,
        mod_marks=mod_marks,
        base_to_mod=base_to_mod,
        program_diff=program_diff,
    )
