"""Program differencing: the lightweight diff analysis DiSE starts from."""

from repro.diff.ast_diff import (
    ChangeKind,
    ProcedureDiff,
    ProgramDiff,
    diff_procedures,
    diff_program,
)
from repro.diff.diff_map import DiffMap, build_diff_map, build_program_diff_map
from repro.diff.source_diff import SourceDiff, diff_procedure_sources, diff_source

__all__ = [
    "ChangeKind",
    "ProcedureDiff",
    "ProgramDiff",
    "diff_procedures",
    "diff_program",
    "DiffMap",
    "build_diff_map",
    "build_program_diff_map",
    "SourceDiff",
    "diff_source",
    "diff_procedure_sources",
]
