"""Exploration strategies: hooks that let clients steer the symbolic executor.

Full (traditional) symbolic execution uses :class:`ExploreEverything`.  The
DiSE directed search (``repro.core.directed``) plugs in a strategy whose
``should_explore`` implements ``AffectedLocIsReachable`` and whose
``on_state`` implements ``UpdateExploredSet`` from Figure 6 of the paper.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.cfg.region_hash import RegionSignature
from repro.symexec.state import SymbolicState


class ExplorationStrategy:
    """Base strategy: explore every feasible successor.

    The engine consults ``should_explore`` only at *choice points*, i.e. for
    the successors of conditional branch nodes, which mirrors an SPF-style
    implementation where search strategies intercept choice generators.
    Straight-line transitions (assignments, entry/exit nodes) are always
    followed.
    """

    def on_run_start(self, initial_state: SymbolicState) -> None:
        """Called once before exploration starts."""

    def on_state(self, state: SymbolicState) -> None:
        """Called when a state is visited (before its successors are generated)."""

    def should_explore(self, successor: SymbolicState) -> bool:
        """Decide whether a feasible branch successor should be explored."""
        return True

    def should_force_completion(self, state: SymbolicState) -> bool:
        """Whether to explore one pruned successor when *all* were pruned.

        Called when every feasible successor of a branch state was rejected by
        ``should_explore``.  Returning True makes the engine follow the first
        feasible successor anyway so the current path can run to completion
        (DiSE uses this so that a path that has already covered affected nodes
        still produces a fully formed path condition containing one feasible
        instance of the remaining, unaffected branches).
        """
        return False

    def on_path_complete(self, state: SymbolicState, is_error: bool) -> None:
        """Called when a path terminates at the exit or at an error node."""

    def on_run_end(self) -> None:
        """Called once after exploration finishes."""

    # -- summary-cache protocol (see repro.symexec.summary_cache) -------------

    @property
    def supports_partial_replay(self) -> bool:
        """Whether segment (node-to-post-dominator) replay is sound.

        Partial replay explores all of a segment's internal paths before any
        of the boundary continuations, while native search interleaves them.
        That reordering is invisible to a strategy whose decisions are a pure
        function of the state being explored (the base contract), but not to
        one carrying global mutable sets -- such strategies must override
        this to return False and rely on whole-suffix replay only.
        """
        return True

    @property
    def has_global_state(self) -> bool:
        """Whether exploration order feeds back into this strategy's decisions.

        A strategy with global mutable state (the directed strategy's Fig. 6
        sets) produces replay tokens that depend on everything explored so
        far, so a parallel frontier collector that *skips* subtrees captures
        later tokens from drifted state.  The shard scheduler consults this
        to decide whether speculative shard keys need chained re-collection
        waves (see ``repro.parallel.shard``); a stateless strategy's tokens
        are exact on the first pass.
        """
        return False

    def replay_token(self, state: SymbolicState, region: RegionSignature) -> Optional[Hashable]:
        """Everything this strategy's subtree decisions depend on, as a key part.

        The token must capture *all* strategy state that can influence how
        the subtree rooted at ``state`` is explored, expressed in canonical
        region coordinates so it matches across program versions.  Return
        ``None`` to veto caching at this root entirely (e.g. while recording
        a human-readable trace that replay could not reproduce).  The base
        strategy is stateless, so any two roots are interchangeable.
        """
        return ()

    def region_snapshot(self, region: RegionSignature) -> Optional[Hashable]:
        """The strategy's in-region state after a subtree finished, or None."""
        return None

    def restore_region(self, region: RegionSignature, snapshot: Hashable) -> None:
        """Re-apply a recorded :meth:`region_snapshot` during replay."""

    def lookahead_statistics(self):
        """The strategy's solver-backed lookahead statistics bucket, if any.

        The engine uses this to subtract lookahead solver traffic from
        :class:`~repro.symexec.engine.ExecutionStatistics`, so that
        ``solver_queries`` measures only the executor's own work.
        """
        return None

    def lookahead_shares_solver(self, solver) -> bool:
        """Whether the lookahead runs on the *same* solver instance.

        The engine may subtract the lookahead bucket's deltas from its own
        solver deltas only when both meter the same underlying counters; a
        lookahead with a private solver is reported but not subtracted.
        """
        return False


class ExploreEverything(ExplorationStrategy):
    """The strategy used by full symbolic execution: never prune."""
