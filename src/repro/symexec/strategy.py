"""Exploration strategies: hooks that let clients steer the symbolic executor.

Full (traditional) symbolic execution uses :class:`ExploreEverything`.  The
DiSE directed search (``repro.core.directed``) plugs in a strategy whose
``should_explore`` implements ``AffectedLocIsReachable`` and whose
``on_state`` implements ``UpdateExploredSet`` from Figure 6 of the paper.
"""

from __future__ import annotations

from repro.symexec.state import SymbolicState


class ExplorationStrategy:
    """Base strategy: explore every feasible successor.

    The engine consults ``should_explore`` only at *choice points*, i.e. for
    the successors of conditional branch nodes, which mirrors an SPF-style
    implementation where search strategies intercept choice generators.
    Straight-line transitions (assignments, entry/exit nodes) are always
    followed.
    """

    def on_run_start(self, initial_state: SymbolicState) -> None:
        """Called once before exploration starts."""

    def on_state(self, state: SymbolicState) -> None:
        """Called when a state is visited (before its successors are generated)."""

    def should_explore(self, successor: SymbolicState) -> bool:
        """Decide whether a feasible branch successor should be explored."""
        return True

    def should_force_completion(self, state: SymbolicState) -> bool:
        """Whether to explore one pruned successor when *all* were pruned.

        Called when every feasible successor of a branch state was rejected by
        ``should_explore``.  Returning True makes the engine follow the first
        feasible successor anyway so the current path can run to completion
        (DiSE uses this so that a path that has already covered affected nodes
        still produces a fully formed path condition containing one feasible
        instance of the remaining, unaffected branches).
        """
        return False

    def on_path_complete(self, state: SymbolicState, is_error: bool) -> None:
        """Called when a path terminates at the exit or at an error node."""

    def on_run_end(self) -> None:
        """Called once after exploration finishes."""


class ExploreEverything(ExplorationStrategy):
    """The strategy used by full symbolic execution: never prune."""
