"""Symbolic execution: the engine DiSE directs.

``symbolic_execute`` performs full (traditional) symbolic execution; the DiSE
directed search in :mod:`repro.core` reuses :class:`SymbolicExecutor` with a
pruning :class:`~repro.symexec.strategy.ExplorationStrategy`.
"""

from repro.symexec.engine import (
    ExecutionResult,
    ExecutionStatistics,
    SymbolicExecutor,
    symbolic_execute,
)
from repro.symexec.evaluator import UndefinedVariableError, evaluate_expression
from repro.symexec.state import PathCondition, SymbolicState
from repro.symexec.strategy import ExplorationStrategy, ExploreEverything
from repro.symexec.summary import MethodSummary, PathRecord
from repro.symexec.tree import ExecutionTree, ExecutionTreeNode

__all__ = [
    "ExecutionResult",
    "ExecutionStatistics",
    "SymbolicExecutor",
    "symbolic_execute",
    "UndefinedVariableError",
    "evaluate_expression",
    "PathCondition",
    "SymbolicState",
    "ExplorationStrategy",
    "ExploreEverything",
    "MethodSummary",
    "PathRecord",
    "ExecutionTree",
    "ExecutionTreeNode",
]
