"""The symbolic execution engine.

The engine performs a stateless depth-first exploration of a procedure's CFG
(the same regime as Symbolic PathFinder, see paper §4.1): it keeps no visited
set, re-checks path-condition satisfiability every time a branch constraint is
appended, and bounds loops/recursion with an optional depth bound on the
number of branch decisions.

The engine is shared between *full* symbolic execution and DiSE's *directed*
symbolic execution: the latter only differs in the
:class:`~repro.symexec.strategy.ExplorationStrategy` it plugs in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.builder import RETURN_VARIABLE, build_cfg
from repro.cfg.callgraph import loopy_procedures
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.cfg.region_hash import RegionHashIndex, RegionSignature
from repro.lang.ast_nodes import BoolLiteral, GlobalDecl, IntLiteral, Procedure, Program, UnaryOp
from repro.obs import spans as _obs_spans
from repro.solver.context import SolverContext
from repro.solver.core import BudgetExhausted, ConstraintSolver, DeadlineBudget
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    INT_SORT,
    BoolConst,
    IntConst,
    Symbol,
    Term,
    intern_term,
    mk_bool,
    mk_int,
    mk_symbol,
    negate,
    substitute,
    term_key,
)
from repro.symexec.evaluator import evaluate_expression
from repro.symexec.state import CallFrame, PathCondition, SymbolicState
from repro.symexec.strategy import ExplorationStrategy, ExploreEverything
from repro.symexec.summary import MethodSummary, PathRecord
from repro.symexec.summary_cache import (
    CallRecord,
    CallSummary,
    ReplayRecord,
    SegmentRecord,
    SegmentSummary,
    SubtreeSummary,
    SummaryCache,
    term_symbols,
)
from repro.symexec.tree import ExecutionTree, ExecutionTreeNode


@dataclass
class ExecutionStatistics:
    """Metrics reported for one symbolic execution run (paper §4.2.2)."""

    states_explored: int = 0
    path_conditions: int = 0
    error_paths: int = 0
    infeasible_branches: int = 0
    pruned_by_strategy: int = 0
    depth_bound_hits: int = 0
    elapsed_seconds: float = 0.0
    #: Solver traffic attributable to the *executor's own* branch checks;
    #: lookahead traffic is reported separately in the ``lookahead_*`` fields.
    solver_queries: int = 0
    solver_cache_hits: int = 0
    incremental_hits: int = 0
    prefix_reuses: int = 0
    #: Solver traffic spent inside the strategy's feasibility lookahead.
    lookahead_calls: int = 0
    lookahead_solver_queries: int = 0
    lookahead_cache_hits: int = 0
    lookahead_incremental_hits: int = 0
    lookahead_prefix_reuses: int = 0
    #: Lookahead queries answered from the memoized walk cache (no CFG walk,
    #: no solver traffic) and context alignments performed for the rest.
    lookahead_walk_memo_hits: int = 0
    lookahead_prefix_syncs: int = 0
    #: Cross-version summary cache activity during this run.
    summary_cache_hits: int = 0
    summary_cache_misses: int = 0
    summary_cache_stores: int = 0
    #: Cache misses where the probed (digest, fingerprint, budget) had an
    #: entry under a *different* strategy token, so the subtree fell back to
    #: native exploration purely because the strategy state did not match.
    #: For the run following a parallel prewarm this counts speculation
    #: failures: shards explored under drifted Fig. 6 sets whose summaries
    #: can never replay.  The chained-wave scheduler pins this to zero.
    strategy_token_misses: int = 0
    #: Completed paths emitted by cache replay instead of native exploration
    #: (these appear in the summary but not in ``states_explored``).
    replayed_paths: int = 0
    #: Segment replays: cache hits that skipped a region up to its immediate
    #: post-dominator and resumed native exploration at the boundary.
    replayed_segments: int = 0
    #: Generalised (fresh-formal) call-summary activity: replays of an
    #: *existing* ``"call"`` entry (possibly recorded by another call site,
    #: version, or program), standalone callee recordings stored, paths
    #: emitted or continued by substituting call-site terms into a summary,
    #: and instantiation attempts abandoned in favour of native execution
    #: (post-substitution prefix overlap, deadline exhaustion, or a failed
    #: splice-layout guard).
    generalized_call_hits: int = 0
    generalized_call_stores: int = 0
    generalized_call_fallbacks: int = 0
    instantiated_paths: int = 0
    #: Feasibility decisions answered conservatively (both branch sides
    #: explored) because the run's deadline budget was exhausted.
    degraded_decisions: int = 0
    #: 1 when the run ended with its deadline budget exhausted (0/1 rather
    #: than bool so merged statistics can sum it across legs).  Covers
    #: degradation that never reached a branch decision, e.g. a budget
    #: spent entirely inside the lookahead's conservative bailouts.
    deadline_exhausted: int = 0

    @property
    def completeness(self) -> str:
        """``"complete"`` for an exact run, ``"degraded"`` when any answer
        was conservative because the deadline budget ran out."""
        if self.degraded_decisions or self.deadline_exhausted:
            return "degraded"
        return "complete"

    def as_dict(self) -> Dict[str, float]:
        return {
            "states_explored": self.states_explored,
            "path_conditions": self.path_conditions,
            "error_paths": self.error_paths,
            "infeasible_branches": self.infeasible_branches,
            "pruned_by_strategy": self.pruned_by_strategy,
            "depth_bound_hits": self.depth_bound_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "incremental_hits": self.incremental_hits,
            "prefix_reuses": self.prefix_reuses,
            "lookahead_calls": self.lookahead_calls,
            "lookahead_solver_queries": self.lookahead_solver_queries,
            "lookahead_cache_hits": self.lookahead_cache_hits,
            "lookahead_incremental_hits": self.lookahead_incremental_hits,
            "lookahead_prefix_reuses": self.lookahead_prefix_reuses,
            "lookahead_walk_memo_hits": self.lookahead_walk_memo_hits,
            "lookahead_prefix_syncs": self.lookahead_prefix_syncs,
            "summary_cache_hits": self.summary_cache_hits,
            "summary_cache_misses": self.summary_cache_misses,
            "summary_cache_stores": self.summary_cache_stores,
            "strategy_token_misses": self.strategy_token_misses,
            "replayed_paths": self.replayed_paths,
            "replayed_segments": self.replayed_segments,
            "generalized_call_hits": self.generalized_call_hits,
            "generalized_call_stores": self.generalized_call_stores,
            "generalized_call_fallbacks": self.generalized_call_fallbacks,
            "instantiated_paths": self.instantiated_paths,
            "degraded_decisions": self.degraded_decisions,
            "deadline_exhausted": self.deadline_exhausted,
        }


@dataclass
class ExecutionResult:
    """Everything produced by one run: summary, statistics and optional tree."""

    summary: MethodSummary
    statistics: ExecutionStatistics
    tree: Optional[ExecutionTree] = None
    #: Filled by :func:`symbolic_execute` when ``workers > 1``: what the
    #: parallel prewarm pass did (see :class:`repro.parallel.shard.ParallelReport`).
    parallel: Optional[object] = None

    @property
    def path_conditions(self) -> List[PathCondition]:
        return self.summary.path_conditions


class _Recording:
    """An open subtree recording: absolute records gathered under one root."""

    __slots__ = ("root_state", "signature", "key", "records", "aborted")

    def __init__(self, root_state: SymbolicState, signature: RegionSignature, key):
        self.root_state = root_state
        self.signature = signature
        self.key = key
        self.records: List[PathRecord] = []
        #: Set when part of the subtree was skipped without emitting its
        #: records (the parallel frontier collector defers whole subtrees to
        #: worker processes); the recording is incomplete and must not be
        #: stored.
        self.aborted = False


class _SegmentRecording:
    """An open segment recording: boundary crossings and in-segment errors.

    ``captures`` holds ``("cont", state)`` items for states arriving at the
    segment boundary (first crossing per path) and ``("error", record)``
    items for paths that died at an error node before reaching it, in native
    DFS order.
    """

    __slots__ = ("root_state", "signature", "key", "captures", "aborted")

    def __init__(self, root_state: SymbolicState, signature: RegionSignature, key):
        self.root_state = root_state
        self.signature = signature
        self.key = key
        self.captures: List[Tuple[str, object]] = []
        #: Set when a nested suffix replay emitted completed paths without
        #: materialising their boundary-crossing states; the recording is
        #: then incomplete and must not be stored.
        self.aborted = False

    @property
    def boundary_id(self) -> int:
        return self.signature.boundary_id


class _Frame:
    """One depth-first-search stack frame: a visited state and its successors."""

    __slots__ = ("state", "successors", "index", "tree_node", "explored_any", "recordings")

    def __init__(
        self,
        state: SymbolicState,
        successors: List[Tuple[SymbolicState, str]],
        tree_node: Optional[ExecutionTreeNode],
        recordings: Optional[List] = None,
    ):
        self.state = state
        self.successors = successors
        self.index = 0
        self.tree_node = tree_node
        self.explored_any = False
        self.recordings = recordings

    @property
    def is_choice_point(self) -> bool:
        """Strategies are consulted for the successors of branch nodes.

        This mirrors the paper's Fig. 6, where ``AffectedLocIsReachable`` is
        evaluated when symbolic execution is about to follow a conditional
        branch outcome; straight-line transitions (assignments, entry/exit)
        are always followed so that a path which has passed its last branch
        runs to completion and reports a fully formed path condition.
        """
        return self.state.node.kind is NodeKind.BRANCH and len(self.successors) > 0


class SymbolicExecutor:
    """Full symbolic execution of one MiniLang procedure.

    Args:
        program: the program containing the procedure (supplies global
            variable declarations).  May also be a bare :class:`Procedure`,
            in which case there are no globals.
        procedure_name: the procedure to execute symbolically (defaults to
            the first procedure of the program).
        cfg: an optional pre-built CFG for that procedure; built on demand.
        solver: an optional shared constraint solver instance.
        depth_bound: maximum number of branch decisions per path (``None``
            means unbounded, which is safe only for loop-free procedures).
        strategy: the exploration strategy (defaults to explore-everything).
        build_tree: when True, materialise the symbolic execution tree.
        tracked_variables: restrict the variables stored in tree nodes.
        summary_cache: optional cross-version subtree summary cache (see
            :mod:`repro.symexec.summary_cache`); subtrees whose region,
            entry environment, strategy context and depth budget match a
            cached execution are replayed instead of re-executed.  Disabled
            while building the execution tree (replay materialises no tree
            nodes).
        region_index: optional pre-built region hash index for ``cfg``
            (shared with the DiSE pipeline's invalidation step).
        entry_state: optional initial state overriding the procedure-entry
            default; this is how a parallel shard worker resumes exploration
            at a frontier branch frame shipped from another process (see
            :mod:`repro.parallel.shard`).  The state's node must belong to
            ``cfg``.
    """

    def __init__(
        self,
        program,
        procedure_name: Optional[str] = None,
        cfg: Optional[ControlFlowGraph] = None,
        solver: Optional[ConstraintSolver] = None,
        depth_bound: Optional[int] = None,
        strategy: Optional[ExplorationStrategy] = None,
        build_tree: bool = False,
        tracked_variables: Optional[Sequence[str]] = None,
        summary_cache: Optional[SummaryCache] = None,
        region_index: Optional[RegionHashIndex] = None,
        entry_state: Optional[SymbolicState] = None,
        entry_edge_label: str = "",
    ):
        if isinstance(program, Procedure):
            self.program = Program(globals=[], procedures=[program])
            self.procedure = program
        elif isinstance(program, Program):
            self.program = program
            if procedure_name is None:
                if not program.procedures:
                    raise ValueError("Program has no procedures")
                self.procedure = program.procedures[0]
            else:
                self.procedure = program.procedure(procedure_name)
        else:
            raise TypeError("program must be a Program or a Procedure")
        self.cfg = cfg or build_cfg(self.program, self.procedure.name)
        #: Names of the program's globals: the only environment entries that
        #: survive a call-scope switch (callees see current global values and
        #: their writes to globals persist past the return).
        self._global_names = frozenset(decl.name for decl in self.program.globals)
        self.solver = solver or ConstraintSolver()
        #: Incremental context mirroring the DFS branch stack: at every branch
        #: only the delta constraint is linearised and propagated, instead of
        #: re-solving the whole path condition from scratch.
        self.context = SolverContext(self.solver)
        self.depth_bound = depth_bound
        self.strategy = strategy or ExploreEverything()
        self.build_tree = build_tree
        self.tracked_variables = list(tracked_variables) if tracked_variables else None
        self.summary_cache = summary_cache if not build_tree else None
        self.region_index = (
            (region_index or RegionHashIndex(self.cfg))
            if self.summary_cache is not None
            else None
        )
        self.entry_state = entry_state
        #: Edge label the entry state was originally reached over; a shard
        #: worker resuming at a branch-arm frame needs it so the frame stays
        #: summary-root eligible exactly as it was in the shipping process.
        self.entry_edge_label = entry_edge_label
        self._recordings: List[_Recording] = []
        self._segment_recordings: List[_SegmentRecording] = []
        #: Per-callee standalone-execution support for generalised call
        #: summaries (lazy; ``None`` marks a callee established ineligible).
        self._call_support: Dict[str, Optional[Tuple]] = {}
        #: Loopy procedure names (computed on the first ``CALL`` probe).
        self._loopy = None
        #: Callee-local context for instantiation feasibility filtering;
        #: separate from :attr:`context` so the DFS prefix sync is untouched.
        self._call_context: Optional[SolverContext] = None
        self.statistics = ExecutionStatistics()

    # -- initial state -------------------------------------------------------

    def initial_environment(self) -> Dict[str, Term]:
        """Symbolic inputs for parameters, constants/symbols for globals.

        Values are built with the interning constructors so every term a
        state can ever hold is a canonical instance: the summary cache's
        environment fingerprints key on intern ids, which stay stable
        exactly as long as the terms they describe are alive.
        """
        environment: Dict[str, Term] = {}
        for decl in self.program.globals:
            environment[decl.name] = self._global_initial_value(decl)
        for param in self.procedure.params:
            sort = BOOL_SORT if param.type_name == "bool" else INT_SORT
            environment[param.name] = mk_symbol(param.name, sort)
        return environment

    @staticmethod
    def _global_initial_value(decl: GlobalDecl) -> Term:
        if decl.init is None:
            # Uninitialised globals are treated as symbolic inputs, matching
            # the paper's testX example where the field y is symbolic.
            sort = BOOL_SORT if decl.type_name == "bool" else INT_SORT
            return mk_symbol(decl.name, sort)
        init = decl.init
        if isinstance(init, IntLiteral):
            return mk_int(init.value)
        if isinstance(init, BoolLiteral):
            return mk_bool(init.value)
        if isinstance(init, UnaryOp) and isinstance(init.operand, IntLiteral):
            return mk_int(-init.operand.value)
        raise ValueError(f"Unsupported global initialiser: {init}")

    def initial_state(self) -> SymbolicState:
        if self.entry_state is not None:
            return self.entry_state
        assert self.cfg.begin is not None
        return SymbolicState.make(
            node=self.cfg.begin,
            environment=self.initial_environment(),
            trace=(self.cfg.begin.node_id,),
        )

    # -- exploration ---------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Explore the procedure and return summary + statistics (+ tree)."""
        self.statistics = ExecutionStatistics()
        summary = MethodSummary(self.procedure.name)
        self._recordings = []
        self._segment_recordings = []
        start_queries = self.solver.statistics.queries
        start_hits = self.solver.statistics.cache_hits
        start_incremental = self.solver.statistics.incremental_hits
        start_prefix = self.solver.statistics.prefix_reuses
        start_token_misses = (
            self.summary_cache.statistics.token_misses
            if self.summary_cache is not None
            else 0
        )
        lookahead = self.strategy.lookahead_statistics()
        look_start = lookahead.snapshot() if lookahead is not None else None
        recorder = _obs_spans._ACTIVE
        run_span = (
            recorder.start_span("engine.run", "engine", procedure=self.procedure.name)
            if recorder is not None
            else None
        )
        started = time.perf_counter()

        initial = self.initial_state()
        self.strategy.on_run_start(initial)
        tree_root: Optional[ExecutionTreeNode] = None
        if self.build_tree:
            tree_root = ExecutionTree.node_from_state(initial, self.tracked_variables)

        # Iterative DFS that mirrors the recursive structure of Fig. 6: each
        # stack frame lazily iterates a state's successors so that the
        # strategy's should_explore sees set updates made while exploring
        # earlier siblings' subtrees.  The strategy is consulted only at
        # choice points (successors of branch nodes); if it rejects every
        # choice it may ask for the first feasible one to be taken anyway so
        # the current path still completes (should_force_completion).
        first_successors, first_recordings = self._visit(
            initial, summary, tree_root, self.entry_edge_label
        )
        stack: List[_Frame] = [_Frame(initial, list(first_successors), tree_root, first_recordings)]
        while stack:
            frame = stack[-1]
            if frame.index >= len(frame.successors):
                if (
                    frame.is_choice_point
                    and not frame.explored_any
                    and frame.successors
                    and self.strategy.should_force_completion(frame.state)
                ):
                    frame.explored_any = True
                    successor, edge_label = frame.successors[0]
                    stack.append(self._enter(successor, edge_label, frame, summary))
                    continue
                if frame.recordings:
                    for recording in reversed(frame.recordings):
                        self._finalize_recording(recording)
                stack.pop()
                continue
            successor, edge_label = frame.successors[frame.index]
            frame.index += 1
            if frame.is_choice_point and not self.strategy.should_explore(successor):
                self.statistics.pruned_by_strategy += 1
                continue
            frame.explored_any = True
            stack.append(self._enter(successor, edge_label, frame, summary))

        self.strategy.on_run_end()
        if self._deadline_degraded():
            self.statistics.deadline_exhausted = 1
        self.statistics.elapsed_seconds = time.perf_counter() - started
        self.statistics.path_conditions = len(summary)
        self.statistics.solver_queries = self.solver.statistics.queries - start_queries
        self.statistics.solver_cache_hits = self.solver.statistics.cache_hits - start_hits
        self.statistics.incremental_hits = (
            self.solver.statistics.incremental_hits - start_incremental
        )
        self.statistics.prefix_reuses = self.solver.statistics.prefix_reuses - start_prefix
        if self.summary_cache is not None:
            self.statistics.strategy_token_misses = (
                self.summary_cache.statistics.token_misses - start_token_misses
            )
        if lookahead is not None and look_start is not None:
            calls, queries, cache_hits, incremental, prefix_reuses, memo_hits, prefix_syncs = (
                now - then for now, then in zip(lookahead.snapshot(), look_start)
            )
            self.statistics.lookahead_calls = calls
            self.statistics.lookahead_solver_queries = queries
            self.statistics.lookahead_cache_hits = cache_hits
            self.statistics.lookahead_incremental_hits = incremental
            self.statistics.lookahead_prefix_reuses = prefix_reuses
            self.statistics.lookahead_walk_memo_hits = memo_hits
            self.statistics.lookahead_prefix_syncs = prefix_syncs
            if self.strategy.lookahead_shares_solver(self.solver):
                # The lookahead metered the executor's solver, so its traffic
                # is carved out of the raw deltas: the executor-facing
                # counters keep only the engine's own branch checks.  A
                # lookahead on a private solver is reported but not
                # subtracted (its work never entered the raw deltas).
                self.statistics.solver_queries -= queries
                self.statistics.solver_cache_hits -= cache_hits
                self.statistics.incremental_hits -= incremental
                self.statistics.prefix_reuses -= prefix_reuses
        if run_span is not None:
            recorder.end_span(
                run_span,
                states=self.statistics.states_explored,
                paths=len(summary),
            )
        tree = ExecutionTree(tree_root) if self.build_tree else None
        return ExecutionResult(summary=summary, statistics=self.statistics, tree=tree)

    def _enter(
        self,
        successor: SymbolicState,
        edge_label: str,
        parent_frame: "_Frame",
        summary: MethodSummary,
    ) -> "_Frame":
        """Visit a successor state and create its DFS frame."""
        child_tree: Optional[ExecutionTreeNode] = None
        if self.build_tree and parent_frame.tree_node is not None:
            child_tree = ExecutionTree.node_from_state(
                successor, self.tracked_variables, edge_label
            )
            parent_frame.tree_node.add_child(child_tree)
        next_successors, recordings = self._visit(successor, summary, child_tree, edge_label)
        return _Frame(successor, list(next_successors), child_tree, recordings)

    # -- state processing ----------------------------------------------------

    def _visit(
        self,
        state: SymbolicState,
        summary: MethodSummary,
        tree_node: Optional[ExecutionTreeNode],
        edge_label: str = "",
    ) -> Tuple[List[Tuple[SymbolicState, str]], Optional[List]]:
        """Count, record and expand one state.

        Returns ``(feasible successors, opened recordings)``; recordings are
        attached to the state's DFS frame and finalised into the summary
        cache when the frame is popped, i.e. when the whole subtree below
        the state has been explored.
        """
        self.statistics.states_explored += 1
        node = state.node

        if self._segment_recordings:
            self._capture_boundary_crossings(state)

        if self.depth_bound is not None and state.depth > self.depth_bound:
            self.statistics.depth_bound_hits += 1
            return [], None

        self.strategy.on_state(state)

        if node.kind is NodeKind.END:
            self._emit(summary, self._record(state, is_error=False))
            self.strategy.on_path_complete(state, is_error=False)
            return [], None
        if node.kind is NodeKind.ERROR:
            self.statistics.error_paths += 1
            self._emit(summary, self._record(state, is_error=True))
            self.strategy.on_path_complete(state, is_error=True)
            return [], None
        if self.summary_cache is not None and self._cache_root_eligible(node, edge_label):
            replayed, successors, recordings = self._try_cache(state, summary)
            if replayed:
                return successors, recordings
            return self._successors(state), recordings
        return self._successors(state), None

    def _record(self, state: SymbolicState, is_error: bool) -> PathRecord:
        return PathRecord(
            path_condition=state.path_condition,
            final_environment=state.environment,
            trace=state.trace,
            is_error=is_error,
        )

    def _emit(self, summary: MethodSummary, record: PathRecord) -> None:
        """Add a completed path record to the summary and all open recordings."""
        summary.add(record)
        for recording in self._recordings:
            recording.records.append(record)
        if record.is_error and self._segment_recordings:
            for segment in self._segment_recordings:
                trace_suffix = record.trace[len(segment.root_state.trace):]
                if segment.boundary_id not in trace_suffix:
                    # The path died at an error node before crossing the
                    # segment boundary: a terminal in-segment record.
                    segment.captures.append(("error", record))

    def _capture_boundary_crossings(self, state: SymbolicState) -> None:
        """Record ``state`` as a continuation of segments it just exited."""
        node_id = state.node.node_id
        for segment in self._segment_recordings:
            if node_id != segment.boundary_id:
                continue
            trace_suffix = state.trace[len(segment.root_state.trace):]
            if trace_suffix.count(node_id) == 1:
                segment.captures.append(("cont", state))

    # -- cross-version summary cache ----------------------------------------

    @staticmethod
    def _cache_root_eligible(node: CFGNode, edge_label: str) -> bool:
        """Whether a state is a worthwhile summary root.

        Recording at every visited state would store one summary per state
        (O(paths x depth) memory for near-zero extra reuse).  Roots where a
        future hit is plausible are the procedure entry (whole-run replay),
        branch nodes (a diff upstream re-enters the same decision diamond),
        branch arms (a diff inside one arm leaves the sibling arm's
        suffix intact) and ``CALL`` nodes (the per-procedure summary root:
        an unchanged callee replays under every version that reaches the
        call with a matching entry environment) -- interior straight-line
        nodes are always dominated by one of these.
        """
        if node.kind in (NodeKind.BEGIN, NodeKind.BRANCH, NodeKind.CALL):
            return True
        return edge_label in (TRUE_EDGE, FALSE_EDGE)

    def _fingerprint(self, env, signature: RegionSignature, prefix_constraints, frames=()):
        """Environment fingerprint for a region entry, or None when the
        observable environment shares symbols with the path-condition prefix
        (replay would not transfer to other roots in that case).

        Read variables are what the subtree can observe, so their symbols
        must be prefix-independent.  Write-only variables are fingerprinted
        as well -- cached writes are stored as deltas against the recording
        root, so a write that coincided with the root's value leaves no
        delta and replay is only exact when the entry value matches -- but
        their symbols need no disjointness check, since their entry values
        merely pass through to paths that do not overwrite them.

        For a root inside a spliced callee, the state's call frames are part
        of the observable entry too: the frames' saved bindings are restored
        by in-region ``CALL_RETURN`` pops and then flow into post-return
        behaviour, so every saved binding joins the fingerprint (and the
        prefix-disjointness requirement) exactly like a read variable.
        """
        fingerprint = []
        region_symbols = set()
        for name in signature.used_vars:
            term = env.get(name)
            if term is None:
                fingerprint.append((name, -1))
                continue
            fingerprint.append((name, term_key(term)))
            region_symbols.update(term_symbols(term))
        for position, frame in enumerate(frames):
            fingerprint.append((("@frame", position, frame.callee), -1))
            for name, term in frame.saved:
                if term is None:
                    fingerprint.append((("@saved", position, name), -1))
                    continue
                fingerprint.append((("@saved", position, name), term_key(term)))
                region_symbols.update(term_symbols(term))
        if region_symbols:
            for constraint in prefix_constraints:
                if region_symbols & term_symbols(constraint):
                    return None
        for name in signature.write_only_vars:
            term = env.get(name)
            fingerprint.append((name, -1 if term is None else term_key(term)))
        return tuple(fingerprint)

    def _try_cache(self, state: SymbolicState, summary: MethodSummary):
        """Attempt replay of the region at ``state``; open recordings on miss.

        Tries the whole-suffix summary first (maximal savings), then -- for
        strategies without global mutable state -- the segment up to the
        immediate post-dominator, whose replay yields boundary successor
        states that continue natively.  Returns ``(replayed, successors,
        opened recordings)``.

        ``record_misses`` distinguishes the two callers of the shared probe:
        the ``_visit`` path counts misses and opens recordings so the
        explored subtree is captured for future versions; the opportunistic
        chain expansion of replayed continuations peeks only, and a hit
        there must fire the ancestor boundary-crossing capture that
        ``_visit`` would otherwise have performed.
        """
        recorder = _obs_spans._ACTIVE
        if recorder is None:
            return self._probe_cache(state, summary, record_misses=True)
        # Replay self time nets out nested solver work (instantiation
        # feasibility checks begin their own category).
        recorder.begin_category("replay")
        try:
            return self._probe_cache(state, summary, record_misses=True)
        finally:
            recorder.end_category()

    def _probe_cache(self, state: SymbolicState, summary: MethodSummary, record_misses: bool):
        node = state.node
        signature = self.region_index.signature(node)
        token = self.strategy.replay_token(state, signature)
        if token is None:
            return False, None, None
        prefix = state.path_condition.constraints
        env = state.env_map()
        budget = None if self.depth_bound is None else self.depth_bound - state.depth
        recordings: List = []

        fingerprint = self._fingerprint(env, signature, prefix, state.frames)
        if fingerprint is not None:
            key = ("suffix", signature.digest, fingerprint, token, budget)
            cached = (
                self.summary_cache.lookup(key)
                if record_misses
                else self.summary_cache.peek(key)
            )
            if cached is not None:
                self.statistics.summary_cache_hits += 1
                if not record_misses and self._segment_recordings:
                    self._capture_boundary_crossings(state)
                self._replay(state, signature, cached, summary)
                return True, [], recordings or None
            if record_misses:
                self.statistics.summary_cache_misses += 1
                recording = _Recording(state, signature, key)
                self._recordings.append(recording)
                recordings.append(recording)

        if (
            node.kind is NodeKind.CALL
            and self.strategy.supports_partial_replay
            and token == ()
        ):
            # Generalised (fresh-formal) call summary: one entry per callee
            # serves every call site.  On success no concrete *segment*
            # recording is opened at this root -- per-call-site segment
            # entries are exactly what the generalised key exists to avoid.
            # The suffix recording opened above (if any) stays open: every
            # instantiated path is emitted through ``_emit``, so it closes
            # complete and keeps its per-caller whole-suffix replay value.
            handled, call_successors = self._try_call_summary(
                state, node, env, prefix, summary, record_misses
            )
            if handled:
                return True, call_successors, recordings or None

        if self.strategy.supports_partial_replay:
            segment_sig = self.region_index.segment(node)
            if segment_sig is not None:
                seg_fingerprint = self._fingerprint(env, segment_sig, prefix, state.frames)
                if seg_fingerprint is not None:
                    seg_key = ("segment", segment_sig.digest, seg_fingerprint, token, budget)
                    cached = (
                        self.summary_cache.lookup(seg_key)
                        if record_misses
                        else self.summary_cache.peek(seg_key)
                    )
                    if cached is not None:
                        self.statistics.summary_cache_hits += 1
                        if not record_misses and self._segment_recordings:
                            self._capture_boundary_crossings(state)
                        successors = self._replay_segment(state, segment_sig, cached, summary)
                        return True, successors, recordings or None
                    if record_misses:
                        self.statistics.summary_cache_misses += 1
                        segment_recording = _SegmentRecording(state, segment_sig, seg_key)
                        self._segment_recordings.append(segment_recording)
                        recordings.append(segment_recording)

        return False, None, recordings or None

    def _replay(
        self,
        state: SymbolicState,
        signature: RegionSignature,
        cached: SubtreeSummary,
        summary: MethodSummary,
    ) -> None:
        """Emit a cached subtree's records rebased onto ``state``."""
        for segment in self._segment_recordings:
            segment.aborted = True
        base_constraints = state.path_condition.constraints
        base_trace = state.trace
        base_env = state.env_map()
        for replay in cached.records:
            environment = dict(base_env)
            environment.update(replay.writes)
            for name in replay.removed:
                environment.pop(name, None)
            record = PathRecord(
                path_condition=PathCondition(base_constraints + replay.constraints),
                final_environment=tuple(sorted(environment.items())),
                trace=base_trace
                + tuple(signature.nodes[index].node_id for index in replay.trace),
                is_error=replay.is_error,
            )
            if replay.is_error:
                self.statistics.error_paths += 1
            self.statistics.replayed_paths += 1
            self._emit(summary, record)
        if cached.strategy_after is not None:
            self.strategy.restore_region(signature, cached.strategy_after)

    def _replay_segment(
        self,
        state: SymbolicState,
        signature: RegionSignature,
        cached: SegmentSummary,
        summary: MethodSummary,
    ) -> List[Tuple[SymbolicState, str]]:
        """Rebase a cached segment onto ``state``.

        In-segment error paths are emitted as completed records; boundary
        crossings become successor states at the immediate post-dominator,
        from which the engine continues natively.
        """
        self.statistics.replayed_segments += 1
        boundary = self.cfg.node(signature.boundary_id)
        base_constraints = state.path_condition.constraints
        base_trace = state.trace
        base_env = state.env_map()
        successors: List[Tuple[SymbolicState, str]] = []
        for replay in cached.records:
            environment = dict(base_env)
            environment.update(replay.writes)
            for name in replay.removed:
                environment.pop(name, None)
            constraints = base_constraints + replay.constraints
            trace = base_trace + tuple(
                signature.nodes[index].node_id for index in replay.trace
            )
            if replay.is_error:
                self.statistics.error_paths += 1
                self.statistics.replayed_paths += 1
                self._emit(
                    summary,
                    PathRecord(
                        path_condition=PathCondition(constraints),
                        final_environment=tuple(sorted(environment.items())),
                        trace=trace,
                        is_error=True,
                    ),
                )
                continue
            continuation = SymbolicState.make(
                node=boundary,
                environment=environment,
                path_condition=PathCondition(constraints),
                depth=state.depth + replay.depth_delta,
                trace=trace + (boundary.node_id,),
                # Segments are call-balanced (see RegionHashIndex.segment),
                # so the boundary is reached with the root's frames intact.
                frames=state.frames,
            )
            successors.extend(self._expand_replayed(continuation, summary))
        return successors

    def _expand_replayed(
        self, state: SymbolicState, summary: MethodSummary
    ) -> List[Tuple[SymbolicState, str]]:
        """Opportunistically chain-expand a replayed continuation in place.

        A continuation landing on a boundary whose own suffix or segment is
        cached can be expanded immediately instead of being handed back to
        the DFS, so a chain of unchanged diamonds costs zero visited states
        between the original root and the first genuinely novel region.
        Mirrors the relevant parts of ``_visit``: the depth bound is checked,
        and ancestor segment recordings get their boundary-crossing capture
        (which ``_visit`` would otherwise have fired).
        """
        if self.depth_bound is not None and state.depth > self.depth_bound:
            self.statistics.depth_bound_hits += 1
            return []
        node = state.node
        if node.kind in (NodeKind.END, NodeKind.ERROR) or not self._cache_root_eligible(node, ""):
            return [(state, "")]
        handled, successors, _ = self._probe_cache(state, summary, record_misses=False)
        if handled:
            return successors
        return [(state, "")]

    # -- generalised (fresh-formal) call summaries ----------------------------

    @staticmethod
    def _decl_sort(decl) -> str:
        return BOOL_SORT if decl.type_name == "bool" else INT_SORT

    def _call_support_for(self, node: CFGNode):
        """Standalone-execution support for ``node``'s callee, or ``None``.

        Cached per callee name: the callee lowered as an entry procedure
        (its standalone CFG + region index), its formal names, and the
        formal-shape fingerprint (parameter and global *shapes*, no term
        ids -- the whole point of the generalised key).  A loopy callee (a
        ``While`` in it or any transitive callee) has an unbounded
        standalone path set and is never eligible; a splice-layout mismatch
        at this particular site disables just the site (the trace offset
        mapping ``standalone body id k -> call id + 1 + k`` would be wrong).
        """
        callee = node.callee
        if callee in self._call_support:
            support = self._call_support[callee]
        else:
            support = None
            if self._loopy is None:
                self._loopy = loopy_procedures(self.program)
            if callee not in self._loopy:
                std_cfg = build_cfg(self.program, callee)
                # The trace mapping below assumes the builder's standalone
                # layout exactly: BEGIN -1, END -2, body 0..size-3.
                ids = sorted(n.node_id for n in std_cfg.nodes)
                if ids == [-2, -1] + list(range(len(std_cfg) - 2)):
                    proc = self.program.procedure(callee)
                    shape = tuple(
                        [
                            (("@formal", position, param.name, self._decl_sort(param)), -1)
                            for position, param in enumerate(proc.params)
                        ]
                        + [
                            (("@global", decl.name, self._decl_sort(decl)), -1)
                            for decl in sorted(
                                self.program.globals, key=lambda decl: decl.name
                            )
                        ]
                    )
                    support = (
                        std_cfg,
                        RegionHashIndex(std_cfg),
                        tuple(param.name for param in proc.params),
                        shape,
                    )
            self._call_support[callee] = support
        if support is None:
            return None
        if node.return_node_id != node.node_id + len(support[0]) - 1:
            return None
        return support

    def _try_call_summary(
        self,
        state: SymbolicState,
        node: CFGNode,
        env: Dict[str, Term],
        prefix: Tuple[Term, ...],
        summary: MethodSummary,
        record_misses: bool,
    ) -> Tuple[bool, Optional[List[Tuple[SymbolicState, str]]]]:
        """Probe, record and instantiate a generalised call summary.

        Returns ``(handled, successors)``.  ``handled`` False means the
        caller falls through to the concrete segment machinery and native
        execution: the callee is ineligible, the entry is missing and may
        not be recorded here (peek path), or instantiation fell back.
        """
        support = self._call_support_for(node)
        if support is None:
            return False, None
        std_cfg, std_index, params, shape = support
        if tuple(node.call_params) != params:
            return False, None
        key = ("call", node.callee_digest, shape, (), None)
        cached = (
            self.summary_cache.lookup(key)
            if record_misses
            else self.summary_cache.peek(key)
        )
        found = cached is not None
        if cached is None:
            if not record_misses:
                return False, None
            self.statistics.summary_cache_misses += 1
            cached = self._record_call_summary(node, std_cfg, std_index, params, key)
            if cached is None:
                return False, None
        if cached.cfg_size != len(std_cfg) or cached.params != params:
            return False, None
        successors = self._instantiate_call(state, node, env, prefix, cached, summary)
        if successors is None:
            self.statistics.generalized_call_fallbacks += 1
            return False, None
        if found:
            self.statistics.summary_cache_hits += 1
            self.statistics.generalized_call_hits += 1
        if not record_misses and self._segment_recordings:
            self._capture_boundary_crossings(state)
        return True, successors

    def _record_call_summary(
        self,
        node: CFGNode,
        std_cfg: ControlFlowGraph,
        std_index: RegionHashIndex,
        params: Tuple[str, ...],
        key,
    ) -> Optional[CallSummary]:
        """Execute the callee standalone over fresh formals; store its paths.

        The entry environment binds every formal *and every global* to a
        fresh symbol named after it (global initialisers are deliberately
        ignored: the summary must be valid under whatever global terms a
        call site holds).  The nested run shares this executor's solver and
        summary cache -- nested calls inside the callee generalise
        recursively -- but uses its own ``ExploreEverything`` strategy and
        no depth bound (the callee is loop-free, so its path set is finite
        and instantiation truncates against the caller's budget).

        Returns the stored :class:`CallSummary`, or ``None`` when the
        deadline budget degraded the nested run (its path set may be
        conservative, never storable) or its traces do not line up with the
        standalone CFG.
        """
        if self._deadline_degraded():
            return None
        proc = self.program.procedure(node.callee)
        environment: Dict[str, Term] = {}
        for decl in self.program.globals:
            environment[decl.name] = mk_symbol(decl.name, self._decl_sort(decl))
        for param in proc.params:
            environment[param.name] = mk_symbol(param.name, self._decl_sort(param))
        entry = SymbolicState.make(
            node=std_cfg.begin,
            environment=environment,
            trace=(std_cfg.begin.node_id,),
        )
        nested = SymbolicExecutor(
            self.program,
            procedure_name=node.callee,
            cfg=std_cfg,
            solver=self.solver,
            depth_bound=None,
            strategy=ExploreEverything(),
            summary_cache=self.summary_cache,
            region_index=std_index,
            entry_state=entry,
        )
        result = nested.run()
        if self._deadline_degraded():
            return None
        begin_id = std_cfg.begin.node_id
        records = []
        for record in result.summary.records:
            if not record.trace or record.trace[0] != begin_id:
                return None
            records.append(
                CallRecord(
                    constraints=record.path_condition.constraints,
                    writes=record.final_environment,
                    trace=record.trace[1:],
                    is_error=record.is_error,
                )
            )
        cached = CallSummary(
            procedure=node.callee,
            digest=node.callee_digest,
            records=tuple(records),
            params=params,
            cfg_size=len(std_cfg),
        )
        # The key's fingerprint holds shapes, not term ids, so no pins are
        # needed to keep it resolvable; the summary strongly holds its own
        # record terms.
        self.summary_cache.store(key, cached, pins=())
        self.statistics.summary_cache_stores += 1
        self.statistics.generalized_call_stores += 1
        return cached

    def _instantiate_call(
        self,
        state: SymbolicState,
        node: CFGNode,
        env: Dict[str, Term],
        prefix: Tuple[Term, ...],
        cached: CallSummary,
        summary: MethodSummary,
    ) -> Optional[List[Tuple[SymbolicState, str]]]:
        """Map a callee's fresh-formal records onto this call site.

        Three phases, nothing emitted until all checks pass (a ``None``
        return leaves the run exactly as if the probe never happened):

        1. substitute the site's argument and current-global terms into
           every record's constraints; constraints folding to ``True``
           drop (the native run's concrete branch folding -- no constraint,
           no depth), ``False`` kills the path, and a path whose kept
           count exceeds the remaining depth budget is truncated exactly
           where the native bound check would have pruned it.  Any kept
           constraint sharing symbols with the caller's path-condition
           prefix aborts to native execution: the independence argument
           that makes replay exact no longer applies.
        2. feasibility-filter each surviving path constraint-by-constraint
           in a callee-local context.  Under prefix disjointness these
           checks decide exactly what the native branch checks would have;
           a deadline exhaustion mid-filter aborts to native execution,
           which then degrades (and blocks stores) the ordinary way.
        3. emit error paths and build boundary continuations at the
           ``CALL_RETURN`` node, callee scope reconstructed wholesale from
           the record's substituted final environment.  The continuation
           is visited natively, so return-value binding (and the missing-
           return error) happens in ``_leave_call`` exactly as inline.
        """
        sigma: Dict[str, Term] = {}
        for name in self._global_names:
            term = env.get(name)
            if term is None:
                return None
            sigma[name] = term
        values = [evaluate_expression(arg, env) for arg in node.call_args]
        sigma.update(zip(node.call_params, values))

        remaining = None if self.depth_bound is None else self.depth_bound - state.depth
        prefix_symbols = set()
        for constraint in prefix:
            prefix_symbols.update(term_symbols(constraint))

        try:
            survivors: List[Tuple[CallRecord, Tuple[Term, ...]]] = []
            for record in cached.records:
                kept: List[Term] = []
                dead = False
                for constraint in record.constraints:
                    instantiated = simplify(substitute(constraint, sigma))
                    if isinstance(instantiated, BoolConst):
                        if instantiated.value:
                            continue
                        dead = True
                        break
                    kept.append(instantiated)
                    if remaining is not None and len(kept) > remaining:
                        self.statistics.depth_bound_hits += 1
                        dead = True
                        break
                if dead:
                    continue
                if prefix_symbols:
                    for instantiated in kept:
                        if not prefix_symbols.isdisjoint(term_symbols(instantiated)):
                            return None
                survivors.append((record, tuple(kept)))

            if self._call_context is None:
                self._call_context = SolverContext(self.solver)
            context = self._call_context
            feasible: List[Tuple[CallRecord, Tuple[Term, ...]]] = []
            for record, kept in survivors:
                alive = True
                for position, constraint in enumerate(kept):
                    context.sync_to(kept[:position])
                    if not context.assume_is_satisfiable(constraint):
                        self.statistics.infeasible_branches += 1
                        alive = False
                        break
                if alive:
                    feasible.append((record, kept))
        except BudgetExhausted:
            return None

        boundary = self.cfg.node(node.return_node_id)
        # Standalone body id k lives at call_id + 1 + k in the spliced CFG;
        # standalone END (-2) is the CALL_RETURN, standalone BEGIN (-1) the
        # CALL node itself (layout verified by ``_call_support_for``).
        offset = node.node_id + 1

        def map_trace_id(index: int) -> int:
            if index >= 0:
                return offset + index
            return node.node_id if index == -1 else node.return_node_id
        saved = tuple(
            (name, term)
            for name, term in state.environment
            if name not in self._global_names
        )
        frame = CallFrame(callee=node.callee, saved=saved)
        successors: List[Tuple[SymbolicState, str]] = []
        for record, kept in feasible:
            environment = {
                name: simplify(substitute(term, sigma)) for name, term in record.writes
            }
            constraints = prefix + kept
            trace = state.trace + tuple(map_trace_id(index) for index in record.trace)
            self.statistics.instantiated_paths += 1
            if record.is_error:
                self.statistics.error_paths += 1
                self.statistics.replayed_paths += 1
                self._emit(
                    summary,
                    PathRecord(
                        path_condition=PathCondition(constraints),
                        final_environment=tuple(sorted(environment.items())),
                        trace=trace,
                        is_error=True,
                    ),
                )
                continue
            # An END record's trace finishes at the standalone END, which
            # maps to the CALL_RETURN node itself -- no extra append.
            continuation = SymbolicState.make(
                node=boundary,
                environment=environment,
                path_condition=PathCondition(constraints),
                depth=state.depth + len(kept),
                trace=trace,
                frames=state.frames + (frame,),
            )
            successors.extend(self._expand_replayed(continuation, summary))
        return successors

    def _abort_open_recordings(self) -> None:
        """Mark every open recording incomplete (no store when it closes).

        Used by the parallel frontier collector when it skips a subtree
        instead of exploring it: the records the subtree would have emitted
        are missing from every enclosing recording, so storing any of them
        would poison the cache with partial summaries.
        """
        for recording in self._recordings:
            recording.aborted = True
        for segment in self._segment_recordings:
            segment.aborted = True

    def _deadline_degraded(self) -> bool:
        """True once the run's deadline budget has been exhausted.

        Degradation is wall-clock dependent: what a degraded run explored
        (extra branch sides, unpruned lookahead targets) is not a function
        of the cache key, so no summary recorded after exhaustion may be
        stored -- a later, un-degraded run would replay it as ground truth.
        Checking the sticky solver-level flag here covers both the engine's
        own degraded decisions and purely lookahead-level degradation.
        """
        deadline = self.solver.deadline
        return deadline is not None and deadline.exhausted

    def _finalize_recording(self, recording) -> None:
        """Close the innermost recording of its kind and store its summary."""
        if isinstance(recording, _SegmentRecording):
            top = self._segment_recordings.pop()
            assert top is recording, "segment recordings must close in LIFO order"
            if not recording.aborted and not self._deadline_degraded():
                self._store_segment(recording)
            return
        top = self._recordings.pop()
        assert top is recording, "recordings must close in LIFO order"
        if recording.aborted or self._deadline_degraded():
            return
        root = recording.root_state
        prefix_len = len(root.path_condition.constraints)
        trace_len = len(root.trace)
        root_env = root.env_map()
        index = recording.signature.index
        records = []
        for record in recording.records:
            final_names = {name for name, _ in record.final_environment}
            writes = tuple(
                (name, term)
                for name, term in record.final_environment
                if root_env.get(name) is not term and root_env.get(name) != term
            )
            records.append(
                ReplayRecord(
                    constraints=record.path_condition.constraints[prefix_len:],
                    writes=writes,
                    trace=tuple(index[node_id] for node_id in record.trace[trace_len:]),
                    is_error=record.is_error,
                    # A root inside a callee records paths whose frame pops
                    # delete the callee-scope names; replay must delete them
                    # too, or rebased environments retain stale bindings.
                    removed=tuple(
                        name for name in root_env if name not in final_names
                    ),
                )
            )
        self.summary_cache.store(
            recording.key,
            SubtreeSummary(
                procedure=self.procedure.name,
                digest=recording.signature.digest,
                records=tuple(records),
                strategy_after=self.strategy.region_snapshot(recording.signature),
            ),
            pins=self._key_pins(root),
        )
        self.statistics.summary_cache_stores += 1

    def _store_segment(self, recording: _SegmentRecording) -> None:
        root = recording.root_state
        prefix_len = len(root.path_condition.constraints)
        trace_len = len(root.trace)
        root_env = root.env_map()
        index = recording.signature.index
        records = []
        for kind, item in recording.captures:
            if kind == "cont":
                state = item
                writes = tuple(
                    (name, term)
                    for name, term in state.environment
                    if root_env.get(name) is not term and root_env.get(name) != term
                )
                boundary_names = {name for name, _ in state.environment}
                records.append(
                    SegmentRecord(
                        constraints=state.path_condition.constraints[prefix_len:],
                        # The last trace element is the boundary itself, which
                        # is not part of the segment's canonical numbering.
                        writes=writes,
                        trace=tuple(index[i] for i in state.trace[trace_len:-1]),
                        depth_delta=state.depth - root.depth,
                        is_error=False,
                        removed=tuple(
                            name for name in root_env if name not in boundary_names
                        ),
                    )
                )
            else:
                record = item
                final_names = {name for name, _ in record.final_environment}
                writes = tuple(
                    (name, term)
                    for name, term in record.final_environment
                    if root_env.get(name) is not term and root_env.get(name) != term
                )
                records.append(
                    SegmentRecord(
                        constraints=record.path_condition.constraints[prefix_len:],
                        writes=writes,
                        trace=tuple(index[i] for i in record.trace[trace_len:]),
                        depth_delta=0,
                        is_error=True,
                        removed=tuple(
                            name for name in root_env if name not in final_names
                        ),
                    )
                )
        self.summary_cache.store(
            recording.key,
            SegmentSummary(
                procedure=self.procedure.name,
                digest=recording.signature.digest,
                records=tuple(records),
            ),
            pins=self._key_pins(root),
        )
        self.statistics.summary_cache_stores += 1

    @staticmethod
    def _key_pins(root: SymbolicState) -> Tuple[Term, ...]:
        """The canonical instances whose intern ids the cache key mentions.

        Interning is weak, so the cache must anchor the root environment's
        terms itself: as long as the entry lives, a later version's
        structurally identical environment re-interns to these instances
        and reproduces the same fingerprint ids.  The call frames' saved
        bindings join the fingerprint, so their terms are pinned too.
        """
        pins = [intern_term(term) for _, term in root.environment]
        for frame in root.frames:
            pins.extend(
                intern_term(term) for _, term in frame.saved if term is not None
            )
        return tuple(pins)

    def _successors(self, state: SymbolicState) -> List[Tuple[SymbolicState, str]]:
        node = state.node
        if node.kind is NodeKind.BRANCH:
            return self._branch_successors(state, node)
        successors = self.cfg.successors(node)
        if not successors:
            return []
        target = successors[0]
        if node.kind is NodeKind.ASSIGN:
            value = evaluate_expression(node.expr, state.env_map())
            return [(state.with_assignment(target, node.target, value), "")]
        if node.kind is NodeKind.CALL:
            return [(self._enter_call(state, node, target), "")]
        if node.kind is NodeKind.CALL_RETURN:
            return [(self._leave_call(state, node, target), "")]
        return [(state.with_node(target), "")]

    def _enter_call(
        self, state: SymbolicState, node: CFGNode, target: CFGNode
    ) -> SymbolicState:
        """Execute a ``CALL`` node: evaluate args, push a frame, switch scope.

        The callee's environment contains the current global values plus the
        formals bound to the evaluated arguments -- nothing of the caller's
        locals leaks in.  The frame saves every caller binding that is not a
        global, so the matching ``CALL_RETURN`` restores the caller's scope
        exactly.
        """
        env = state.env_map()
        values = [evaluate_expression(arg, env) for arg in node.call_args]
        saved = tuple(
            (name, term)
            for name, term in state.environment
            if name not in self._global_names
        )
        callee_env: Dict[str, Term] = {
            name: term for name, term in env.items() if name in self._global_names
        }
        callee_env.update(zip(node.call_params, values))
        frame = CallFrame(callee=node.callee, saved=saved)
        return state.with_call(target, callee_env, frame)

    def _leave_call(
        self, state: SymbolicState, node: CFGNode, target: CFGNode
    ) -> SymbolicState:
        """Execute a ``CALL_RETURN`` node: pop the frame, bind the result."""
        if not state.frames:
            raise RuntimeError(
                f"CALL_RETURN at {node.name} with an empty call stack "
                f"(corrupt entry state?)"
            )
        frame = state.frames[-1]
        env = state.env_map()
        caller_env: Dict[str, Term] = {
            name: term for name, term in env.items() if name in self._global_names
        }
        caller_env.update(
            (name, term) for name, term in frame.saved if term is not None
        )
        if node.target is not None:
            result = env.get(RETURN_VARIABLE)
            if result is None:
                raise RuntimeError(
                    f"Procedure {node.callee!r} returned no value for "
                    f"{node.target!r} (line {node.line})"
                )
            caller_env[node.target] = result
        return state.with_return(target, caller_env)

    def _sync_context(self, state: SymbolicState) -> None:
        """Align the incremental context with ``state``'s path condition.

        The DFS visits states in stack order, so the context usually shares
        all but the last constraint with the previous query: backtracking is a
        handful of pops, descending pushes only the delta
        (:meth:`~repro.solver.context.SolverContext.sync_to`).
        """
        self.context.sync_to(state.path_condition.constraints)

    def _branch_successors(
        self, state: SymbolicState, node: CFGNode
    ) -> List[Tuple[SymbolicState, str]]:
        condition = evaluate_expression(node.condition, state.env_map())
        true_target = self.cfg.successor_on(node, TRUE_EDGE)
        false_target = self.cfg.successor_on(node, FALSE_EDGE)

        condition = simplify(condition)
        if isinstance(condition, BoolConst):
            # Concrete branch: follow the only possible side without touching
            # the path condition or the solver.
            target = true_target if condition.value else false_target
            return [(state.with_node(target), "true" if condition.value else "false")]

        try:
            self._sync_context(state)
        except BudgetExhausted:
            self._degrade_decision()
            return [
                (state.with_constraint(true_target, condition), "true"),
                (state.with_constraint(false_target, negate(condition)), "false"),
            ]
        successors: List[Tuple[SymbolicState, str]] = []
        for branch_condition, target, label in (
            (condition, true_target, "true"),
            (negate(condition), false_target, "false"),
        ):
            try:
                feasible = self.context.assume_is_satisfiable(branch_condition)
            except BudgetExhausted:
                feasible = self._degrade_decision()
            if feasible:
                successors.append((state.with_constraint(target, branch_condition), label))
            else:
                self.statistics.infeasible_branches += 1
        return successors

    def _degrade_decision(self) -> bool:
        """Conservative fallback for a feasibility query the budget refused.

        The undecided branch side is treated as feasible: the run keeps
        terminating (every path still completes or hits the depth bound) and
        keeps covering everything a complete run would -- it may merely
        explore infeasible paths it cannot afford to rule out.  The run is
        flagged via ``degraded_decisions`` / ``completeness``.  Note the
        context's fast paths (interval propagation) still answer for free
        after exhaustion; only verdicts needing the complete solver degrade.
        """
        self.statistics.degraded_decisions += 1
        # A conservatively-explored subtree must never be recorded: a later,
        # un-degraded run would replay the over-approximate summary as
        # ground truth.
        self._abort_open_recordings()
        return True


def symbolic_execute(
    program,
    procedure_name: Optional[str] = None,
    depth_bound: Optional[int] = None,
    solver: Optional[ConstraintSolver] = None,
    build_tree: bool = False,
    tracked_variables: Optional[Sequence[str]] = None,
    summary_cache: Optional[SummaryCache] = None,
    workers: int = 1,
    parallel_config=None,
    deadline: Optional[DeadlineBudget] = None,
    cost_model=None,
) -> ExecutionResult:
    """Run full symbolic execution on one procedure and return the result.

    With ``workers > 1`` the exploration frontier is sharded across a
    process pool first (see :mod:`repro.parallel.shard`) and the serial
    run below replays the workers' summaries, producing the identical
    result with the subtree work done in parallel.  Ignored while building
    the execution tree (replay materialises no tree nodes).

    ``deadline`` attaches a run-level :class:`DeadlineBudget` to the run's
    solver: once exhausted, feasibility queries degrade to conservative
    answers and the result's ``statistics.completeness`` reads
    ``"degraded"``.  The budget stays in the calling process -- shard
    workers always run with a clean solver (a worker degraded by wall
    clock would ship nondeterministic summaries).

    ``cost_model`` overrides the process-global
    :func:`~repro.parallel.shard.scheduler_cost_model` the parallel
    scheduler consults -- callers holding a persisted model (see
    ``PersistentSummaryStore.load_cost_model_into``) pass it here so the
    first wave schedules from its estimates.
    """
    parallel_report = None
    parallelize = workers > 1 and not build_tree
    # With an ephemeral cache only the shard roots can ever replay, so
    # workers skip shipping their nested entries.
    roots_only = summary_cache is None
    if parallelize and summary_cache is None:
        summary_cache = SummaryCache()
    executor = SymbolicExecutor(
        program,
        procedure_name=procedure_name,
        depth_bound=depth_bound,
        solver=solver,
        build_tree=build_tree,
        tracked_variables=tracked_variables,
        summary_cache=summary_cache,
    )
    if deadline is not None:
        executor.solver.deadline = deadline
    if parallelize:
        # Imported here: repro.parallel depends on this module.
        from repro.parallel.shard import prewarm_full

        parallel_report = prewarm_full(
            executor.program,
            procedure_name=executor.procedure.name,
            cfg=executor.cfg,
            summary_cache=summary_cache,
            workers=workers,
            depth_bound=depth_bound,
            config=parallel_config,
            region_index=executor.region_index,
            solver=executor.solver,
            roots_only=roots_only,
            cost_model=cost_model,
            want_final_result=tracked_variables is None,
        )
    if (
        parallel_report is not None
        and parallel_report.final_result is not None
        and tracked_variables is None
    ):
        # The scheduler's last collection pass deferred nothing, so it
        # already *was* a complete serial run over the warm cache (same
        # program, solver and cache as the executor below would use):
        # reuse its result instead of paying a second full pass.  Vetoed
        # when tracked variables were requested -- the collector does not
        # solve for them.
        result = parallel_report.final_result
        result.parallel = parallel_report
        return result
    result = executor.run()
    result.parallel = parallel_report
    return result
