"""The symbolic execution engine.

The engine performs a stateless depth-first exploration of a procedure's CFG
(the same regime as Symbolic PathFinder, see paper §4.1): it keeps no visited
set, re-checks path-condition satisfiability every time a branch constraint is
appended, and bounds loops/recursion with an optional depth bound on the
number of branch decisions.

The engine is shared between *full* symbolic execution and DiSE's *directed*
symbolic execution: the latter only differs in the
:class:`~repro.symexec.strategy.ExplorationStrategy` it plugs in.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.builder import build_cfg
from repro.cfg.graph import ControlFlowGraph
from repro.cfg.ir import FALSE_EDGE, TRUE_EDGE, CFGNode, NodeKind
from repro.lang.ast_nodes import BoolLiteral, GlobalDecl, IntLiteral, Procedure, Program, UnaryOp
from repro.solver.context import SolverContext
from repro.solver.core import ConstraintSolver
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BOOL_SORT,
    INT_SORT,
    BoolConst,
    IntConst,
    Symbol,
    Term,
    negate,
)
from repro.symexec.evaluator import evaluate_expression
from repro.symexec.state import PathCondition, SymbolicState
from repro.symexec.strategy import ExplorationStrategy, ExploreEverything
from repro.symexec.summary import MethodSummary, PathRecord
from repro.symexec.tree import ExecutionTree, ExecutionTreeNode


@dataclass
class ExecutionStatistics:
    """Metrics reported for one symbolic execution run (paper §4.2.2)."""

    states_explored: int = 0
    path_conditions: int = 0
    error_paths: int = 0
    infeasible_branches: int = 0
    pruned_by_strategy: int = 0
    depth_bound_hits: int = 0
    elapsed_seconds: float = 0.0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    incremental_hits: int = 0
    prefix_reuses: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {
            "states_explored": self.states_explored,
            "path_conditions": self.path_conditions,
            "error_paths": self.error_paths,
            "infeasible_branches": self.infeasible_branches,
            "pruned_by_strategy": self.pruned_by_strategy,
            "depth_bound_hits": self.depth_bound_hits,
            "elapsed_seconds": self.elapsed_seconds,
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "incremental_hits": self.incremental_hits,
            "prefix_reuses": self.prefix_reuses,
        }


@dataclass
class ExecutionResult:
    """Everything produced by one run: summary, statistics and optional tree."""

    summary: MethodSummary
    statistics: ExecutionStatistics
    tree: Optional[ExecutionTree] = None

    @property
    def path_conditions(self) -> List[PathCondition]:
        return self.summary.path_conditions


class _Frame:
    """One depth-first-search stack frame: a visited state and its successors."""

    __slots__ = ("state", "successors", "index", "tree_node", "explored_any")

    def __init__(
        self,
        state: SymbolicState,
        successors: List[Tuple[SymbolicState, str]],
        tree_node: Optional[ExecutionTreeNode],
    ):
        self.state = state
        self.successors = successors
        self.index = 0
        self.tree_node = tree_node
        self.explored_any = False

    @property
    def is_choice_point(self) -> bool:
        """Strategies are consulted for the successors of branch nodes.

        This mirrors the paper's Fig. 6, where ``AffectedLocIsReachable`` is
        evaluated when symbolic execution is about to follow a conditional
        branch outcome; straight-line transitions (assignments, entry/exit)
        are always followed so that a path which has passed its last branch
        runs to completion and reports a fully formed path condition.
        """
        return self.state.node.kind is NodeKind.BRANCH and len(self.successors) > 0


class SymbolicExecutor:
    """Full symbolic execution of one MiniLang procedure.

    Args:
        program: the program containing the procedure (supplies global
            variable declarations).  May also be a bare :class:`Procedure`,
            in which case there are no globals.
        procedure_name: the procedure to execute symbolically (defaults to
            the first procedure of the program).
        cfg: an optional pre-built CFG for that procedure; built on demand.
        solver: an optional shared constraint solver instance.
        depth_bound: maximum number of branch decisions per path (``None``
            means unbounded, which is safe only for loop-free procedures).
        strategy: the exploration strategy (defaults to explore-everything).
        build_tree: when True, materialise the symbolic execution tree.
        tracked_variables: restrict the variables stored in tree nodes.
    """

    def __init__(
        self,
        program,
        procedure_name: Optional[str] = None,
        cfg: Optional[ControlFlowGraph] = None,
        solver: Optional[ConstraintSolver] = None,
        depth_bound: Optional[int] = None,
        strategy: Optional[ExplorationStrategy] = None,
        build_tree: bool = False,
        tracked_variables: Optional[Sequence[str]] = None,
    ):
        if isinstance(program, Procedure):
            self.program = Program(globals=[], procedures=[program])
            self.procedure = program
        elif isinstance(program, Program):
            self.program = program
            if procedure_name is None:
                if not program.procedures:
                    raise ValueError("Program has no procedures")
                self.procedure = program.procedures[0]
            else:
                self.procedure = program.procedure(procedure_name)
        else:
            raise TypeError("program must be a Program or a Procedure")
        self.cfg = cfg or build_cfg(self.procedure)
        self.solver = solver or ConstraintSolver()
        #: Incremental context mirroring the DFS branch stack: at every branch
        #: only the delta constraint is linearised and propagated, instead of
        #: re-solving the whole path condition from scratch.
        self.context = SolverContext(self.solver)
        self.depth_bound = depth_bound
        self.strategy = strategy or ExploreEverything()
        self.build_tree = build_tree
        self.tracked_variables = list(tracked_variables) if tracked_variables else None
        self.statistics = ExecutionStatistics()

    # -- initial state -------------------------------------------------------

    def initial_environment(self) -> Dict[str, Term]:
        """Symbolic inputs for parameters, constants/symbols for globals."""
        environment: Dict[str, Term] = {}
        for decl in self.program.globals:
            environment[decl.name] = self._global_initial_value(decl)
        for param in self.procedure.params:
            sort = BOOL_SORT if param.type_name == "bool" else INT_SORT
            environment[param.name] = Symbol(param.name, sort)
        return environment

    @staticmethod
    def _global_initial_value(decl: GlobalDecl) -> Term:
        if decl.init is None:
            # Uninitialised globals are treated as symbolic inputs, matching
            # the paper's testX example where the field y is symbolic.
            sort = BOOL_SORT if decl.type_name == "bool" else INT_SORT
            return Symbol(decl.name, sort)
        init = decl.init
        if isinstance(init, IntLiteral):
            return IntConst(init.value)
        if isinstance(init, BoolLiteral):
            return BoolConst(init.value)
        if isinstance(init, UnaryOp) and isinstance(init.operand, IntLiteral):
            return IntConst(-init.operand.value)
        raise ValueError(f"Unsupported global initialiser: {init}")

    def initial_state(self) -> SymbolicState:
        assert self.cfg.begin is not None
        return SymbolicState.make(
            node=self.cfg.begin,
            environment=self.initial_environment(),
            trace=(self.cfg.begin.node_id,),
        )

    # -- exploration ---------------------------------------------------------

    def run(self) -> ExecutionResult:
        """Explore the procedure and return summary + statistics (+ tree)."""
        self.statistics = ExecutionStatistics()
        summary = MethodSummary(self.procedure.name)
        start_queries = self.solver.statistics.queries
        start_hits = self.solver.statistics.cache_hits
        start_incremental = self.solver.statistics.incremental_hits
        start_prefix = self.solver.statistics.prefix_reuses
        started = time.perf_counter()

        initial = self.initial_state()
        self.strategy.on_run_start(initial)
        tree_root: Optional[ExecutionTreeNode] = None
        if self.build_tree:
            tree_root = ExecutionTree.node_from_state(initial, self.tracked_variables)

        # Iterative DFS that mirrors the recursive structure of Fig. 6: each
        # stack frame lazily iterates a state's successors so that the
        # strategy's should_explore sees set updates made while exploring
        # earlier siblings' subtrees.  The strategy is consulted only at
        # choice points (successors of branch nodes); if it rejects every
        # choice it may ask for the first feasible one to be taken anyway so
        # the current path still completes (should_force_completion).
        first_successors = self._visit(initial, summary, tree_root)
        stack: List[_Frame] = [_Frame(initial, list(first_successors), tree_root)]
        while stack:
            frame = stack[-1]
            if frame.index >= len(frame.successors):
                if (
                    frame.is_choice_point
                    and not frame.explored_any
                    and frame.successors
                    and self.strategy.should_force_completion(frame.state)
                ):
                    frame.explored_any = True
                    successor, edge_label = frame.successors[0]
                    stack.append(self._enter(successor, edge_label, frame, summary))
                    continue
                stack.pop()
                continue
            successor, edge_label = frame.successors[frame.index]
            frame.index += 1
            if frame.is_choice_point and not self.strategy.should_explore(successor):
                self.statistics.pruned_by_strategy += 1
                continue
            frame.explored_any = True
            stack.append(self._enter(successor, edge_label, frame, summary))

        self.strategy.on_run_end()
        self.statistics.elapsed_seconds = time.perf_counter() - started
        self.statistics.path_conditions = len(summary)
        self.statistics.solver_queries = self.solver.statistics.queries - start_queries
        self.statistics.solver_cache_hits = self.solver.statistics.cache_hits - start_hits
        self.statistics.incremental_hits = (
            self.solver.statistics.incremental_hits - start_incremental
        )
        self.statistics.prefix_reuses = self.solver.statistics.prefix_reuses - start_prefix
        tree = ExecutionTree(tree_root) if self.build_tree else None
        return ExecutionResult(summary=summary, statistics=self.statistics, tree=tree)

    def _enter(
        self,
        successor: SymbolicState,
        edge_label: str,
        parent_frame: "_Frame",
        summary: MethodSummary,
    ) -> "_Frame":
        """Visit a successor state and create its DFS frame."""
        child_tree: Optional[ExecutionTreeNode] = None
        if self.build_tree and parent_frame.tree_node is not None:
            child_tree = ExecutionTree.node_from_state(
                successor, self.tracked_variables, edge_label
            )
            parent_frame.tree_node.add_child(child_tree)
        next_successors = self._visit(successor, summary, child_tree)
        return _Frame(successor, list(next_successors), child_tree)

    # -- state processing ----------------------------------------------------

    def _visit(
        self,
        state: SymbolicState,
        summary: MethodSummary,
        tree_node: Optional[ExecutionTreeNode],
    ) -> List[Tuple[SymbolicState, str]]:
        """Count, record and expand one state; returns its feasible successors."""
        self.statistics.states_explored += 1
        node = state.node

        if self.depth_bound is not None and state.depth > self.depth_bound:
            self.statistics.depth_bound_hits += 1
            return []

        self.strategy.on_state(state)

        if node.kind is NodeKind.END:
            summary.add(self._record(state, is_error=False))
            self.strategy.on_path_complete(state, is_error=False)
            return []
        if node.kind is NodeKind.ERROR:
            self.statistics.error_paths += 1
            summary.add(self._record(state, is_error=True))
            self.strategy.on_path_complete(state, is_error=True)
            return []
        return self._successors(state)

    def _record(self, state: SymbolicState, is_error: bool) -> PathRecord:
        return PathRecord(
            path_condition=state.path_condition,
            final_environment=state.environment,
            trace=state.trace,
            is_error=is_error,
        )

    def _successors(self, state: SymbolicState) -> List[Tuple[SymbolicState, str]]:
        node = state.node
        if node.kind is NodeKind.BRANCH:
            return self._branch_successors(state, node)
        successors = self.cfg.successors(node)
        if not successors:
            return []
        target = successors[0]
        if node.kind is NodeKind.ASSIGN:
            value = evaluate_expression(node.expr, state.env_map())
            return [(state.with_assignment(target, node.target, value), "")]
        return [(state.with_node(target), "")]

    def _sync_context(self, state: SymbolicState) -> None:
        """Align the incremental context with ``state``'s path condition.

        The DFS visits states in stack order, so the context usually shares
        all but the last constraint with the previous query: backtracking is a
        handful of pops, descending pushes only the delta.
        """
        target = state.path_condition.constraints
        current = self.context.constraints()
        common = 0
        for have, want in zip(current, target):
            if have is not want and have != want:
                break
            common += 1
        # Frames kept across queries are the prefix work the sync avoided
        # redoing (counting retained frames, not pushes, means a regression
        # to full rebuilds shows up as the ratio collapsing).
        self.solver.statistics.prefix_reuses += common
        self.context.pop_to(common)
        for term in target[common:]:
            self.context.push(term)

    def _branch_successors(
        self, state: SymbolicState, node: CFGNode
    ) -> List[Tuple[SymbolicState, str]]:
        condition = evaluate_expression(node.condition, state.env_map())
        true_target = self.cfg.successor_on(node, TRUE_EDGE)
        false_target = self.cfg.successor_on(node, FALSE_EDGE)

        condition = simplify(condition)
        if isinstance(condition, BoolConst):
            # Concrete branch: follow the only possible side without touching
            # the path condition or the solver.
            target = true_target if condition.value else false_target
            return [(state.with_node(target), "true" if condition.value else "false")]

        self._sync_context(state)
        successors: List[Tuple[SymbolicState, str]] = []
        for branch_condition, target, label in (
            (condition, true_target, "true"),
            (negate(condition), false_target, "false"),
        ):
            if self.context.assume_is_satisfiable(branch_condition):
                successors.append((state.with_constraint(target, branch_condition), label))
            else:
                self.statistics.infeasible_branches += 1
        return successors


def symbolic_execute(
    program,
    procedure_name: Optional[str] = None,
    depth_bound: Optional[int] = None,
    solver: Optional[ConstraintSolver] = None,
    build_tree: bool = False,
    tracked_variables: Optional[Sequence[str]] = None,
) -> ExecutionResult:
    """Run full symbolic execution on one procedure and return the result."""
    executor = SymbolicExecutor(
        program,
        procedure_name=procedure_name,
        depth_bound=depth_bound,
        solver=solver,
        build_tree=build_tree,
        tracked_variables=tracked_variables,
    )
    return executor.run()
