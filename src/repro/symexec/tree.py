"""Symbolic execution trees (paper Figure 1).

The tree is optional instrumentation: the engine only materialises it when
asked, because full trees for the larger artifacts are huge.  The renderer
produces the same node text as Figure 1: location, symbolic values of the
tracked variables and the path condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.solver.terms import Term
from repro.symexec.state import SymbolicState


@dataclass
class ExecutionTreeNode:
    """One node of a symbolic execution tree."""

    location: str
    environment: Dict[str, Term]
    path_condition: str
    children: List["ExecutionTreeNode"] = field(default_factory=list)
    edge_label: str = ""

    def add_child(self, child: "ExecutionTreeNode") -> None:
        self.children.append(child)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def count(self) -> int:
        """Total number of nodes in this subtree."""
        return 1 + sum(child.count() for child in self.children)

    def leaves(self) -> List["ExecutionTreeNode"]:
        if self.is_leaf:
            return [self]
        result: List[ExecutionTreeNode] = []
        for child in self.children:
            result.extend(child.leaves())
        return result


class ExecutionTree:
    """Container for the root of a symbolic execution tree."""

    def __init__(self, root: Optional[ExecutionTreeNode] = None):
        self.root = root

    @staticmethod
    def node_from_state(state: SymbolicState, variables: Optional[Sequence[str]] = None,
                        edge_label: str = "") -> ExecutionTreeNode:
        env = state.env_dict()
        if variables is not None:
            env = {name: env[name] for name in variables if name in env}
        return ExecutionTreeNode(
            location=state.node.name if state.node.line == 0 else f"Loc: {state.node.line}",
            environment=env,
            path_condition=str(state.path_condition),
            edge_label=edge_label,
        )

    def count(self) -> int:
        return self.root.count() if self.root else 0

    def render(self) -> str:
        """A textual rendering of the tree (used by the Figure 1 benchmark)."""
        if self.root is None:
            return "<empty tree>"
        lines: List[str] = []
        self._render_node(self.root, lines, prefix="", is_last=True)
        return "\n".join(lines)

    def _render_node(
        self, node: ExecutionTreeNode, lines: List[str], prefix: str, is_last: bool
    ) -> None:
        connector = "`-- " if is_last else "|-- "
        env = ", ".join(f"{name}: {value}" for name, value in sorted(node.environment.items()))
        label = f"[{node.edge_label}] " if node.edge_label else ""
        lines.append(f"{prefix}{connector}{label}{node.location}  {env}  PC: {node.path_condition}")
        child_prefix = prefix + ("    " if is_last else "|   ")
        for index, child in enumerate(node.children):
            self._render_node(child, lines, child_prefix, index == len(node.children) - 1)
