"""Cross-version memoization of symbolic-execution subtree summaries.

DiSE's premise is that version N+1 should pay only for what changed, yet a
fresh run re-executes every subtree of the modified program -- including the
(usually large) parts whose CFG suffix is byte-for-byte identical to the
previous version.  A :class:`SummaryCache` stores, for each executed
subtree, the completed path records *relative to the subtree root* and
replays them whenever a later run reaches an equivalent root.

A subtree execution is a deterministic function of four inputs, which
together form the cache key:

1. **region digest** -- the content hash of the root's CFG suffix region
   (:func:`repro.cfg.region_hash.region_signature`); any IR change inside
   the region changes the digest, so stale structure can never be replayed;
2. **environment fingerprint** -- the interned term ids of the symbolic
   values of every variable the region *reads*; values of untouched
   variables cannot influence the subtree;
3. **strategy token** -- whatever the exploration strategy's decisions
   depend on, restricted to the region
   (:meth:`~repro.symexec.strategy.ExplorationStrategy.replay_token`); for
   the directed DiSE strategy this is the in-region slice of the
   explored/unexplored affected sets in canonical region coordinates;
4. **remaining depth budget** -- ``depth_bound - root.depth`` (``None``
   when unbounded), since the bound can truncate the subtree.

One condition gates both recording and replay: the symbols occurring in the
fingerprinted environment values must be disjoint from the symbols of the
path-condition prefix.  Under that independence the satisfiability of
``prefix AND suffix`` equals the satisfiability of ``suffix`` alone (the
prefix is feasible or the state would not have been reached), so the
explored subtree shape -- including every branch-feasibility answer and
every strategy decision -- is identical no matter which prefix the root is
reached under.  Replay is therefore *exact*: it emits precisely the records
a native re-execution would have produced, which the differential history
tests assert.

**Concrete-entry vs fresh-formal keys.**  The suffix/segment keys above are
*concrete-entry* keys: the environment fingerprint contains the interned
term ids of the actual values flowing into the region, so two call sites
passing different argument terms to the same callee record separate
entries.  ``CALL`` roots additionally support a *generalised* (fresh-formal,
Godefroid-style compositional) key kind, ``"call"``::

    ("call", callee content digest, formal-shape fingerprint, token, None)

The callee content digest (:func:`repro.cfg.callgraph.procedure_digests`)
is transitive over the callee's own calls; the formal-shape fingerprint
names the callee's parameters and the program's global declarations --
*shapes*, not term ids -- so the entry is shared by every call site, every
caller version, and every caller *program* with matching globals.  The
stored :class:`CallSummary` holds the callee's complete path set executed
standalone over fresh symbolic formals and fresh symbolic globals.

**Instantiation.**  At a hit, the engine substitutes the call site's actual
argument terms (and current global terms) into the recorded constraints,
writes and return values (``simplify(substitute(.))``; substitution
commutes with the simplifier's rules, so instantiated terms equal what a
native inline execution would have built).  Instantiation falls back to
native execution -- never an approximate replay -- when any of the
following holds *after* substitution:

* an instantiated constraint shares symbols with the caller's path-condition
  prefix (the independence argument above no longer applies);
* the solver's deadline budget is exhausted mid-instantiation;
* the call-site/standalone CFG offset guard fails (splice layout drifted).

Constraints that simplify to ``True``/``False`` under the substitution are
dropped/kill the path (mirroring the engine's concrete branch folding), and
each surviving path is feasibility-filtered constraint-by-constraint exactly
as the native branch checks would have decided it.  Loopy callees (a
``While`` in the callee or any transitive callee) are never generalised:
their standalone path set is unbounded.

Invalidation is content-driven: :meth:`SummaryCache.begin_version` drops
every entry of the procedure whose region digest no longer occurs in the
incoming version's CFG.  A changed node changes the digest of every region
containing it, so the edit's ancestor regions are invalidated while suffix
regions disjoint from the change survive and keep serving hits.  ``"call"``
entries are keyed by callee (not the entry procedure), so they are aged by
``live_call_digests`` instead: a callee digest absent from the incoming
program's :func:`~repro.cfg.callgraph.procedure_digests` for
``miss_tolerance`` consecutive versions is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Optional, Tuple

from repro.solver.terms import Term


def term_symbols(term: Term) -> FrozenSet[str]:
    """The symbol names of ``term``, cached on the term instance.

    Caching on the instance (rather than in a process-global table keyed by
    intern id) ties the cache entry's lifetime to the term's own: when a
    run's terms are garbage-collected the cached sets go with them, and a
    plain (non-interned) term gets the same O(1) repeat lookups as an
    interned one.
    """
    cached = term.__dict__.get("_symbols")
    if cached is None:
        cached = term.symbols()
        object.__setattr__(term, "_symbols", cached)
    return cached


@dataclass(frozen=True)
class ReplayRecord:
    """One completed path of a cached subtree, relative to the subtree root.

    ``constraints`` are the path-condition terms appended below the root;
    ``writes`` are the environment entries that differ from the root
    environment (terms are closed over the region's read variables, so they
    are valid verbatim under any root with a matching fingerprint);
    ``removed`` are the root-environment names *absent* from the final
    environment -- a root inside a spliced callee records paths whose
    ``CALL_RETURN`` pops delete the callee-scope bindings, which a
    set-only diff could not express; ``trace`` uses canonical region
    indices so it can be rebased onto another version's node ids.
    """

    constraints: Tuple[Term, ...]
    writes: Tuple[Tuple[str, Term], ...]
    trace: Tuple[int, ...]
    is_error: bool = False
    removed: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SubtreeSummary:
    """Everything needed to replay one subtree: records + strategy effect."""

    procedure: str
    digest: str
    records: Tuple[ReplayRecord, ...]
    #: The exploration strategy's in-region state after the subtree finished
    #: (canonical coordinates), applied on replay; ``None`` for strategies
    #: without region state.
    strategy_after: Optional[Hashable] = None


@dataclass(frozen=True)
class SegmentRecord:
    """One internal path of a segment (root to immediate post-dominator).

    Non-error records are *continuations*: on replay they become successor
    states sitting at the segment boundary, from which exploration proceeds
    natively.  Error records are terminal (an assertion failed inside the
    segment) and are emitted as completed paths.
    """

    constraints: Tuple[Term, ...]
    writes: Tuple[Tuple[str, Term], ...]
    trace: Tuple[int, ...]
    depth_delta: int = 0
    is_error: bool = False
    #: Root-environment names absent at capture (an error record that died
    #: inside a nested call, after its scope switch removed them; balanced
    #: boundary continuations never delete).
    removed: Tuple[str, ...] = ()


@dataclass(frozen=True)
class SegmentSummary:
    """The internal paths of one segment, in native DFS arrival order.

    Segment summaries compose: replaying one yields boundary states whose
    own segments can replay in turn, so a chain of unchanged diamonds is
    crossed with zero solver work even when a later edit invalidated every
    suffix region containing it.  Only strategies without global mutable
    state may record or replay segments -- a stateful strategy's behaviour
    below the boundary interleaves with in-segment backtracking, which
    composition cannot reproduce.
    """

    procedure: str
    digest: str
    records: Tuple[SegmentRecord, ...]


@dataclass(frozen=True)
class CallRecord:
    """One complete standalone path of a callee, in fresh-formal coordinates.

    ``constraints`` and ``writes`` are over fresh symbols named after the
    callee's formals and the program's globals; ``writes`` is the callee's
    *entire* final environment (callee scope only -- nothing of any caller
    leaks in, so instantiated records rebuild the post-call environment
    wholesale rather than as a delta).  ``trace`` is relative to the
    standalone callee CFG's ``BEGIN`` (excluded), so a call site maps it by
    adding its ``CALL`` node id.
    """

    constraints: Tuple[Term, ...]
    writes: Tuple[Tuple[str, Term], ...]
    trace: Tuple[int, ...]
    is_error: bool = False


@dataclass(frozen=True)
class CallSummary:
    """A callee's complete path set over fresh symbolic formals and globals.

    One entry serves every call site of the callee (in any caller program
    with matching global declarations): replay substitutes the site's actual
    argument terms into each record.  ``cfg_size`` is the standalone callee
    CFG's node count, checked against the call site's splice layout before
    any trace is mapped.
    """

    procedure: str  # the callee's name
    digest: str  # the callee's transitive content digest
    records: Tuple[CallRecord, ...]
    params: Tuple[str, ...]
    cfg_size: int


#: A fully resolved cache key: (region kind, digest, env fingerprint,
#: strategy token, remaining depth budget).
CacheKey = Tuple[str, str, Tuple[Tuple[str, int], ...], Hashable, Optional[int]]


@dataclass
class SummaryCacheStatistics:
    """Lifetime counters for one :class:`SummaryCache`."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0
    #: Entries merged in from elsewhere (a worker process's cache or the
    #: persistent on-disk store) rather than recorded by this process's own
    #: exploration; kept separate from ``stores`` so reuse ratios can tell
    #: local recording apart from imported warm state.
    adopted: int = 0
    #: Misses where an entry exists for the same (kind, digest, fingerprint,
    #: budget) under a *different* strategy token: the subtree was summarised,
    #: but under strategy state that does not match the probe's.  For a
    #: parallel directed run this is the speculation-failure signal -- a
    #: worker explored the subtree from drifted Fig. 6 sets and its summary
    #: can never replay -- so the scheduler pins this counter to zero.
    token_misses: int = 0
    #: Hits served by entries whose origin is the persistent on-disk store
    #: (the ROADMAP fleet-scale rung's hit-rate telemetry): warm-resume
    #: value is ``store_hits`` over the loaded entry count, as opposed to
    #: hits on entries this process recorded or merged from live workers.
    store_hits: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "adopted": self.adopted,
            "token_misses": self.token_misses,
            "store_hits": self.store_hits,
        }


@dataclass
class _Entry:
    summary: object  # SubtreeSummary or SegmentSummary
    generation: int
    last_used: int
    missing_streak: int = 0
    #: Terms whose intern ids appear in the entry's key (the recording
    #: root's environment).  Interning is weak, so without this anchor the
    #: canonical instances could be collected between versions; a later
    #: probe would then re-intern structurally identical values under fresh
    #: ids and the key would never match again.  Pinning them for the
    #: entry's lifetime keeps the key resolvable exactly as long as it can
    #: still hit.
    pins: Tuple[Term, ...] = ()
    #: Where the entry came from: ``"local"`` (this process's own
    #: recording), ``"worker"`` (merged from a shard result), ``"store"``
    #: (loaded from the persistent store) or ``"external"`` (other adopt
    #: callers).  Lets :meth:`SummaryCache.lookup` attribute hits to the
    #: on-disk store without scanning anything.
    origin: str = "local"


class SummaryCache:
    """An in-memory cross-version subtree/segment summary store.

    Args:
        miss_tolerance: number of *consecutive* versions a region may be
            absent from before its entries are evicted.  Version histories
            routinely revert edits (version K+1 is the base plus a different
            edit than version K), so a region missing from one version often
            reappears in the next; evicting on the first absence would throw
            away summaries the following version could replay.
        stale_after: when set, :meth:`begin_version` additionally evicts
            entries that have not been stored or hit for this many
            generations (memory hygiene for long-lived batch drivers).
    """

    def __init__(self, miss_tolerance: int = 6, stale_after: Optional[int] = None):
        self._entries: Dict[CacheKey, _Entry] = {}
        self.statistics = SummaryCacheStatistics()
        self.generation = 0
        self.miss_tolerance = miss_tolerance
        self.stale_after = stale_after
        #: region digest -> largest record count ever stored/adopted under
        #: it.  The parallel frontier collector reads this as a solver-work
        #: estimate for its adaptive deferral policy (a digest that survives
        #: into the next version describes the same subtree content, so its
        #: recorded path count transfers).  Hints are never evicted -- they
        #: are a few bytes each and stale hints merely influence scheduling.
        self._size_hints: Dict[str, int] = {}
        #: (kind, digest, fingerprint, budget) -> number of live entries with
        #: that token-free key.  Lets :meth:`lookup` classify a miss as a
        #: *token* miss (same subtree and environment summarised under other
        #: strategy state) without scanning the table.
        self._token_free_index: Dict[Tuple, int] = {}

    @staticmethod
    def _token_free(key: CacheKey) -> Tuple:
        kind, digest, fingerprint, _token, budget = key
        return (kind, digest, fingerprint, budget)

    def _index_add(self, key: CacheKey) -> None:
        reduced = self._token_free(key)
        self._token_free_index[reduced] = self._token_free_index.get(reduced, 0) + 1

    def _index_discard(self, key: CacheKey) -> None:
        reduced = self._token_free(key)
        count = self._token_free_index.get(reduced, 0) - 1
        if count <= 0:
            self._token_free_index.pop(reduced, None)
        else:
            self._token_free_index[reduced] = count

    def __len__(self) -> int:
        return len(self._entries)

    # -- versioned lifecycle ---------------------------------------------------

    def begin_version(
        self,
        procedure: str,
        live_digests: FrozenSet[str],
        live_call_digests: Optional[FrozenSet[str]] = None,
    ) -> int:
        """Start a new generation; evict entries the new version obsoletes.

        ``live_digests`` are the region/segment digests of the incoming
        version's CFG.  Entries of ``procedure`` whose digest is absent
        cannot hit during this version (their region's content changed);
        once a digest has been absent for ``miss_tolerance`` consecutive
        versions its entries are dropped.  ``live_call_digests``, when
        given, ages generalised ``"call"`` entries the same way -- they are
        keyed by *callee* (not ``procedure``), so the procedure filter never
        sees them; a callee digest absent from the incoming program's
        :func:`~repro.cfg.callgraph.procedure_digests` values counts one
        miss against its entries.  The number of evictions is returned and
        counted as ``invalidations``.
        """
        self.generation += 1
        dead = []
        for key, entry in self._entries.items():
            if key[0] == "call":
                if live_call_digests is not None:
                    if entry.summary.digest not in live_call_digests:
                        entry.missing_streak += 1
                    else:
                        entry.missing_streak = 0
            elif entry.summary.procedure == procedure:
                if entry.summary.digest not in live_digests:
                    entry.missing_streak += 1
                else:
                    entry.missing_streak = 0
            if entry.missing_streak >= self.miss_tolerance or (
                self.stale_after is not None
                and self.generation - entry.last_used > self.stale_after
            ):
                dead.append(key)
        for key in dead:
            del self._entries[key]
            self._index_discard(key)
        self.statistics.invalidations += len(dead)
        return len(dead)

    # -- lookup / store --------------------------------------------------------

    def lookup(self, key: CacheKey):
        entry = self._entries.get(key)
        if entry is None:
            self.statistics.misses += 1
            if self._token_free_index.get(self._token_free(key)):
                self.statistics.token_misses += 1
            return None
        entry.last_used = self.generation
        self.statistics.hits += 1
        if entry.origin == "store":
            self.statistics.store_hits += 1
        return entry.summary

    def peek(self, key: CacheKey):
        """Like :meth:`lookup` but a miss is not counted.

        Used for opportunistic chain expansion of replayed continuations,
        where absence simply means "continue natively" and will be counted
        by the continuation's own visit.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        entry.last_used = self.generation
        self.statistics.hits += 1
        if entry.origin == "store":
            self.statistics.store_hits += 1
        return entry.summary

    def store(self, key: CacheKey, summary, pins: Tuple[Term, ...] = ()) -> None:
        if key not in self._entries:
            self._index_add(key)
        self._entries[key] = _Entry(summary, self.generation, self.generation, pins=pins)
        self._record_size_hint(summary)
        self.statistics.stores += 1

    def _record_size_hint(self, summary) -> None:
        digest = getattr(summary, "digest", None)
        records = getattr(summary, "records", None)
        if digest is None or records is None:
            return
        count = len(records)
        if count > self._size_hints.get(digest, -1):
            self._size_hints[digest] = count

    def size_hint(self, digest: str) -> Optional[int]:
        """Largest known record count for the region ``digest`` (or None)."""
        return self._size_hints.get(digest)

    # -- merge / persistence support ------------------------------------------

    def contains(self, key: CacheKey) -> bool:
        """Membership probe that touches no statistics or LRU state."""
        return key in self._entries

    def adopt(
        self, key: CacheKey, summary, pins: Tuple[Term, ...] = (), origin: str = "external"
    ) -> bool:
        """Merge one externally produced entry (worker result, disk store).

        Entries already present win -- they were recorded or adopted first
        in this process and their pins are known-live -- which also makes a
        multi-source merge independent of source order for identical keys
        (content-keyed entries with equal keys replay identically by
        construction).  ``origin`` tags the entry's provenance (``"worker"``
        for shard results, ``"store"`` for the persistent store) so later
        hits attribute correctly in the statistics.  Returns True when the
        entry was added.
        """
        if key in self._entries:
            return False
        self._entries[key] = _Entry(
            summary, self.generation, self.generation, pins=pins, origin=origin
        )
        self._index_add(key)
        self._record_size_hint(summary)
        self.statistics.adopted += 1
        return True

    def iter_entries(self):
        """Yield ``(key, summary, pins)`` for every live entry (stable order)."""
        for key, entry in self._entries.items():
            yield key, entry.summary, entry.pins

    def entries_per_callee(self) -> Dict[str, int]:
        """Live generalised (``"call"``-kind) entry count per callee name.

        The call-site-count-independence gate reads this: adding a call site
        to an unchanged callee must not grow any count (one fresh-formal
        entry serves every site).  Suffix/segment entries are keyed by the
        *caller's* concrete terms and are deliberately excluded.
        """
        counts: Dict[str, int] = {}
        for key, entry in self._entries.items():
            if key[0] == "call":
                name = entry.summary.procedure
                counts[name] = counts.get(name, 0) + 1
        return counts
