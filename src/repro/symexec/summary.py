"""Symbolic summaries: the per-path results of a symbolic execution run.

A *symbolic summary* for a procedure is the set of path conditions describing
its feasible execution paths (paper §2.1).  Each record additionally keeps the
final symbolic environment and the node trace of the path, which the
evolution tasks (test generation, selection) and the trace tables use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.solver.terms import Term
from repro.symexec.state import PathCondition


@dataclass(frozen=True)
class PathRecord:
    """One explored, completed execution path."""

    path_condition: PathCondition
    final_environment: Tuple[Tuple[str, Term], ...]
    trace: Tuple[int, ...]
    is_error: bool = False
    hit_depth_bound: bool = False

    def environment(self) -> Dict[str, Term]:
        return dict(self.final_environment)

    def __str__(self) -> str:
        marker = " [error]" if self.is_error else ""
        return f"PC: {self.path_condition}{marker}"


@dataclass
class MethodSummary:
    """The collection of path records produced by one symbolic execution run."""

    procedure_name: str
    records: List[PathRecord] = field(default_factory=list)

    def add(self, record: PathRecord) -> None:
        self.records.append(record)

    @property
    def path_conditions(self) -> List[PathCondition]:
        return [record.path_condition for record in self.records]

    @property
    def error_records(self) -> List[PathRecord]:
        return [record for record in self.records if record.is_error]

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def distinct_path_conditions(self) -> List[PathCondition]:
        """Path conditions with duplicates (same constraint text) removed."""
        seen = set()
        unique: List[PathCondition] = []
        for condition in self.path_conditions:
            key = str(condition)
            if key not in seen:
                seen.add(key)
                unique.append(condition)
        return unique

    def describe(self, limit: Optional[int] = None) -> str:
        lines = [f"Summary for {self.procedure_name}: {len(self.records)} path conditions"]
        shown = self.records if limit is None else self.records[:limit]
        for index, record in enumerate(shown):
            lines.append(f"  [{index}] {record}")
        if limit is not None and len(self.records) > limit:
            lines.append(f"  ... {len(self.records) - limit} more")
        return "\n".join(lines)
