"""Evaluation of MiniLang expressions into symbolic terms.

Given a symbolic environment (variable name -> :class:`~repro.solver.terms.Term`),
an AST expression is translated into the term it denotes.  This is the step
that turns ``y = y + x`` into the symbolic value ``Y + X`` in Figure 1 of the
paper.
"""

from __future__ import annotations

from typing import Mapping

from repro.lang.ast_nodes import (
    BinaryOp,
    BoolLiteral,
    Expr,
    IntLiteral,
    UnaryOp,
    VarRef,
)
from repro.solver.simplify import simplify
from repro.solver.terms import (
    BinaryTerm,
    BoolConst,
    IntConst,
    NegTerm,
    NotTerm,
    Term,
)


class UndefinedVariableError(Exception):
    """Raised when an expression reads a variable with no symbolic value."""


def evaluate_expression(expr: Expr, environment: Mapping[str, Term]) -> Term:
    """Translate ``expr`` to a (simplified) symbolic term under ``environment``."""
    return simplify(_translate(expr, environment))


def _translate(expr: Expr, environment: Mapping[str, Term]) -> Term:
    if isinstance(expr, IntLiteral):
        return IntConst(expr.value)
    if isinstance(expr, BoolLiteral):
        return BoolConst(expr.value)
    if isinstance(expr, VarRef):
        if expr.name not in environment:
            raise UndefinedVariableError(
                f"Variable {expr.name!r} read before any definition (line {expr.line})"
            )
        return environment[expr.name]
    if isinstance(expr, UnaryOp):
        operand = _translate(expr.operand, environment)
        if expr.op == "-":
            return NegTerm(operand)
        if expr.op == "!":
            return NotTerm(operand)
        raise ValueError(f"Unknown unary operator {expr.op!r}")
    if isinstance(expr, BinaryOp):
        left = _translate(expr.left, environment)
        right = _translate(expr.right, environment)
        return BinaryTerm(expr.op, left, right)
    raise TypeError(f"Cannot evaluate expression of type {type(expr).__name__}")
