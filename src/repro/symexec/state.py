"""Symbolic program states and path conditions.

A symbolic state (paper §2.1) contains a program location (a CFG node), a
symbolic value for every program variable, and the path condition collected
along the path that reached the state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Dict, Mapping, Optional, Tuple

from repro.cfg.ir import CFGNode
from repro.solver.simplify import simplify
from repro.solver.terms import Assignment, Term, conjunction


@dataclass(frozen=True)
class PathCondition:
    """An immutable conjunction of constraints over the symbolic inputs."""

    constraints: Tuple[Term, ...] = ()

    def extend(self, constraint: Term) -> "PathCondition":
        """Return a new path condition with ``constraint`` appended."""
        return PathCondition(self.constraints + (simplify(constraint),))

    def as_term(self) -> Term:
        """The path condition as a single conjunction term."""
        return conjunction(self.constraints)

    def holds(self, assignment: Assignment) -> bool:
        """Evaluate the path condition under a concrete assignment."""
        return all(bool(term.evaluate(assignment)) for term in self.constraints)

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def __str__(self) -> str:
        if not self.constraints:
            return "true"
        return " && ".join(str(term) for term in self.constraints)


@dataclass(frozen=True)
class CallFrame:
    """One entry of a state's call stack (interprocedural execution).

    Pushed when execution enters a ``CALL`` node: ``saved`` holds every
    non-global binding of the caller's environment (the callee executes
    under ``globals ∪ formals`` only, so the whole caller scope is set
    aside).  Popped at the matching ``CALL_RETURN`` node, which rebuilds
    the caller environment from the current globals plus these bindings
    before assigning the return value to the call target.  ``None`` values
    stand for "no binding" and are skipped on restore.
    """

    callee: str
    saved: Tuple[Tuple[str, Optional[Term]], ...]

    def saved_map(self) -> Dict[str, Optional[Term]]:
        return dict(self.saved)


@dataclass(frozen=True)
class SymbolicState:
    """A symbolic execution state: location + symbolic environment + PC.

    The environment is stored as a sorted tuple (hashable, cheap to share
    across the immutable state chain); the dictionary view needed by the
    evaluator at every ASSIGN/BRANCH node is computed once per state and
    cached (states are frozen, so the cache can never go stale).

    ``frames`` is the call stack: empty while executing the entry
    procedure's own nodes, one :class:`CallFrame` per active spliced call
    while inside a callee's nodes.
    """

    node: CFGNode
    environment: Tuple[Tuple[str, Term], ...]
    path_condition: PathCondition = field(default_factory=PathCondition)
    depth: int = 0
    trace: Tuple[int, ...] = ()
    frames: Tuple[CallFrame, ...] = ()

    @staticmethod
    def make(
        node: CFGNode,
        environment: Dict[str, Term],
        path_condition: Optional[PathCondition] = None,
        depth: int = 0,
        trace: Tuple[int, ...] = (),
        frames: Tuple[CallFrame, ...] = (),
    ) -> "SymbolicState":
        return SymbolicState(
            node=node,
            environment=tuple(sorted(environment.items())),
            path_condition=path_condition or PathCondition(),
            depth=depth,
            trace=trace,
            frames=frames,
        )

    def env_map(self) -> Mapping[str, Term]:
        """The symbolic environment as a read-only mapping (cached)."""
        cached = self.__dict__.get("_env_map")
        if cached is None:
            cached = MappingProxyType(dict(self.environment))
            object.__setattr__(self, "_env_map", cached)
        return cached

    def env_dict(self) -> Dict[str, Term]:
        """The symbolic environment as a fresh mutable dictionary."""
        return dict(self.env_map())

    def value_of(self, name: str) -> Term:
        """The symbolic value of variable ``name``."""
        env = self.env_map()
        if name not in env:
            raise KeyError(name)
        return env[name]

    def with_node(self, node: CFGNode) -> "SymbolicState":
        return SymbolicState(
            node=node,
            environment=self.environment,
            path_condition=self.path_condition,
            depth=self.depth,
            trace=self.trace + (node.node_id,),
            frames=self.frames,
        )

    def with_assignment(self, node: CFGNode, name: str, value: Term) -> "SymbolicState":
        env = self.env_dict()
        env[name] = value
        return SymbolicState.make(
            node=node,
            environment=env,
            path_condition=self.path_condition,
            depth=self.depth,
            trace=self.trace + (node.node_id,),
            frames=self.frames,
        )

    def with_constraint(self, node: CFGNode, constraint: Term) -> "SymbolicState":
        return SymbolicState(
            node=node,
            environment=self.environment,
            path_condition=self.path_condition.extend(constraint),
            depth=self.depth + 1,
            trace=self.trace + (node.node_id,),
            frames=self.frames,
        )

    def with_call(
        self, node: CFGNode, environment: Dict[str, Term], frame: CallFrame
    ) -> "SymbolicState":
        """Enter a callee: push ``frame`` and switch to the callee-scope env."""
        return SymbolicState.make(
            node=node,
            environment=environment,
            path_condition=self.path_condition,
            depth=self.depth,
            trace=self.trace + (node.node_id,),
            frames=self.frames + (frame,),
        )

    def with_return(self, node: CFGNode, environment: Dict[str, Term]) -> "SymbolicState":
        """Leave a callee: pop the innermost frame, restore caller scope."""
        return SymbolicState.make(
            node=node,
            environment=environment,
            path_condition=self.path_condition,
            depth=self.depth,
            trace=self.trace + (node.node_id,),
            frames=self.frames[:-1],
        )

    def describe(self) -> str:
        env = ", ".join(f"{name}: {value}" for name, value in self.environment)
        return f"Loc: {self.node.name}\n{env}\nPC: {self.path_condition}"

    def __str__(self) -> str:
        return f"<state at {self.node.name} depth={self.depth} PC={self.path_condition}>"
