"""Pretty printer that turns MiniLang AST nodes back into source text.

Round-tripping (``parse(pretty(parse(src)))`` structurally equal to
``parse(src)``) is covered by property-based tests.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast_nodes import (
    Assert,
    Assign,
    CallStmt,
    GlobalDecl,
    If,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    VarDecl,
    While,
)

_INDENT = "    "


def pretty_program(program: Program) -> str:
    """Render a full program as MiniLang source text."""
    parts: List[str] = []
    for decl in program.globals:
        parts.append(_render_global(decl))
    if program.globals and program.procedures:
        parts.append("")
    for index, proc in enumerate(program.procedures):
        if index:
            parts.append("")
        parts.append(pretty_procedure(proc))
    return "\n".join(parts) + "\n"


def pretty_procedure(proc: Procedure) -> str:
    """Render one procedure as MiniLang source text."""
    params = ", ".join(f"{p.type_name} {p.name}" for p in proc.params)
    lines = [f"proc {proc.name}({params}) {{"]
    lines.extend(_render_statements(proc.body, 1))
    lines.append("}")
    return "\n".join(lines)


def _render_global(decl: GlobalDecl) -> str:
    if decl.init is not None:
        return f"global {decl.type_name} {decl.name} = {decl.init};"
    return f"global {decl.type_name} {decl.name};"


def _render_statements(statements: List[Stmt], depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in statements:
        lines.extend(_render_statement(stmt, depth))
    return lines


def _render_statement(stmt: Stmt, depth: int) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            return [f"{pad}{stmt.type_name} {stmt.name} = {stmt.init};"]
        return [f"{pad}{stmt.type_name} {stmt.name};"]
    if isinstance(stmt, Assign):
        return [f"{pad}{stmt.name} = {stmt.value};"]
    if isinstance(stmt, CallStmt):
        call = f"{stmt.callee}({', '.join(str(arg) for arg in stmt.args)})"
        if stmt.target is not None:
            return [f"{pad}{stmt.target} = {call};"]
        return [f"{pad}{call};"]
    if isinstance(stmt, Assert):
        return [f"{pad}assert {stmt.condition};"]
    if isinstance(stmt, Return):
        if stmt.value is not None:
            return [f"{pad}return {stmt.value};"]
        return [f"{pad}return;"]
    if isinstance(stmt, Skip):
        return [f"{pad}skip;"]
    if isinstance(stmt, If):
        lines = [f"{pad}if ({stmt.condition}) {{"]
        lines.extend(_render_statements(stmt.then_body, depth + 1))
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            lines.extend(_render_statements(stmt.else_body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(stmt, While):
        lines = [f"{pad}while ({stmt.condition}) {{"]
        lines.extend(_render_statements(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return lines
    raise TypeError(f"Unknown statement type: {type(stmt).__name__}")
