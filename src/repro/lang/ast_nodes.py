"""Abstract syntax tree node definitions for MiniLang.

Every node carries a source ``line`` so that the CFG builder and the diff
analysis can relate nodes back to source locations, mirroring the way the
paper's AST diff relates changed Java statements to CFG nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

INT_TYPE = "int"
BOOL_TYPE = "bool"
TYPES = (INT_TYPE, BOOL_TYPE)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for all expression nodes."""

    def variables(self) -> Tuple[str, ...]:
        """Return the names of all variables read by this expression."""
        raise NotImplementedError

    def structural_key(self) -> tuple:
        """A hashable key describing the expression's structure (ignores lines)."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntLiteral(Expr):
    """An integer constant, e.g. ``42``."""

    value: int
    line: int = 0

    def variables(self) -> Tuple[str, ...]:
        return ()

    def structural_key(self) -> tuple:
        return ("int", self.value)

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLiteral(Expr):
    """A boolean constant, ``true`` or ``false``."""

    value: bool
    line: int = 0

    def variables(self) -> Tuple[str, ...]:
        return ()

    def structural_key(self) -> tuple:
        return ("bool", self.value)

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class VarRef(Expr):
    """A reference to a variable by name."""

    name: str
    line: int = 0

    def variables(self) -> Tuple[str, ...]:
        return (self.name,)

    def structural_key(self) -> tuple:
        return ("var", self.name)

    def __str__(self) -> str:
        return self.name


#: Binary operators grouped by kind.
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
LOGICAL_OPS = ("&&", "||")
BINARY_OPS = ARITHMETIC_OPS + COMPARISON_OPS + LOGICAL_OPS


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr
    line: int = 0

    def variables(self) -> Tuple[str, ...]:
        seen = []
        for name in self.left.variables() + self.right.variables():
            if name not in seen:
                seen.append(name)
        return tuple(seen)

    def structural_key(self) -> tuple:
        return ("binop", self.op, self.left.structural_key(), self.right.structural_key())

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: ``-expr`` or ``!expr``."""

    op: str
    operand: Expr
    line: int = 0

    def variables(self) -> Tuple[str, ...]:
        return self.operand.variables()

    def structural_key(self) -> tuple:
        return ("unop", self.op, self.operand.structural_key())

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for all statement nodes."""

    def structural_key(self) -> tuple:
        """A hashable key describing the statement's structure (ignores lines)."""
        raise NotImplementedError


@dataclass
class VarDecl(Stmt):
    """A local variable declaration, optionally with an initialiser."""

    type_name: str
    name: str
    init: Optional[Expr] = None
    line: int = 0

    def structural_key(self) -> tuple:
        init_key = self.init.structural_key() if self.init is not None else None
        return ("decl", self.type_name, self.name, init_key)

    def __str__(self) -> str:
        if self.init is not None:
            return f"{self.type_name} {self.name} = {self.init};"
        return f"{self.type_name} {self.name};"


@dataclass
class Assign(Stmt):
    """An assignment ``name = expr;``."""

    name: str
    value: Expr
    line: int = 0

    def structural_key(self) -> tuple:
        return ("assign", self.name, self.value.structural_key())

    def __str__(self) -> str:
        return f"{self.name} = {self.value};"


@dataclass
class If(Stmt):
    """A conditional with an optional else branch."""

    condition: Expr
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)
    line: int = 0

    def structural_key(self) -> tuple:
        return (
            "if",
            self.condition.structural_key(),
            tuple(s.structural_key() for s in self.then_body),
            tuple(s.structural_key() for s in self.else_body),
        )

    def __str__(self) -> str:
        return f"if ({self.condition}) ..."


@dataclass
class While(Stmt):
    """A while loop."""

    condition: Expr
    body: List[Stmt] = field(default_factory=list)
    line: int = 0

    def structural_key(self) -> tuple:
        return (
            "while",
            self.condition.structural_key(),
            tuple(s.structural_key() for s in self.body),
        )

    def __str__(self) -> str:
        return f"while ({self.condition}) ..."


@dataclass
class Assert(Stmt):
    """An assertion. Symbolic execution reports an error state when it fails."""

    condition: Expr
    line: int = 0

    def structural_key(self) -> tuple:
        return ("assert", self.condition.structural_key())

    def __str__(self) -> str:
        return f"assert {self.condition};"


@dataclass
class CallStmt(Stmt):
    """A procedure call: ``f(a, b);`` or ``y = f(a, b);``.

    Calls are statements, not expressions: a call may appear bare (return
    value discarded) or as the entire right-hand side of an assignment,
    which keeps the symbolic engine's evaluation of ordinary expressions
    side-effect free.
    """

    callee: str
    args: List[Expr] = field(default_factory=list)
    target: Optional[str] = None
    line: int = 0

    def structural_key(self) -> tuple:
        return (
            "call",
            self.target,
            self.callee,
            tuple(arg.structural_key() for arg in self.args),
        )

    def __str__(self) -> str:
        args = ", ".join(str(arg) for arg in self.args)
        call = f"{self.callee}({args})"
        if self.target is not None:
            return f"{self.target} = {call};"
        return f"{call};"


@dataclass
class Return(Stmt):
    """A return statement with an optional value."""

    value: Optional[Expr] = None
    line: int = 0

    def structural_key(self) -> tuple:
        value_key = self.value.structural_key() if self.value is not None else None
        return ("return", value_key)

    def __str__(self) -> str:
        if self.value is not None:
            return f"return {self.value};"
        return "return;"


@dataclass
class Skip(Stmt):
    """A no-op statement."""

    line: int = 0

    def structural_key(self) -> tuple:
        return ("skip",)

    def __str__(self) -> str:
        return "skip;"


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A formal parameter of a procedure."""

    type_name: str
    name: str
    line: int = 0

    def structural_key(self) -> tuple:
        return ("param", self.type_name, self.name)

    def __str__(self) -> str:
        return f"{self.type_name} {self.name}"


@dataclass
class GlobalDecl:
    """A global variable declaration with an optional constant initialiser."""

    type_name: str
    name: str
    init: Optional[Expr] = None
    line: int = 0

    def structural_key(self) -> tuple:
        init_key = self.init.structural_key() if self.init is not None else None
        return ("global", self.type_name, self.name, init_key)

    def __str__(self) -> str:
        if self.init is not None:
            return f"global {self.type_name} {self.name} = {self.init};"
        return f"global {self.type_name} {self.name};"


@dataclass
class Procedure:
    """A procedure definition: name, parameters and a statement body."""

    name: str
    params: List[Param] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0

    def structural_key(self) -> tuple:
        return (
            "proc",
            self.name,
            tuple(p.structural_key() for p in self.params),
            tuple(s.structural_key() for s in self.body),
        )

    def param_names(self) -> List[str]:
        return [p.name for p in self.params]

    def local_names(self) -> List[str]:
        """Names declared by ``VarDecl`` statements anywhere in the body."""
        names: List[str] = []
        for stmt in walk_statements(self.body):
            if isinstance(stmt, VarDecl) and stmt.name not in names:
                names.append(stmt.name)
        return names

    def called_procedures(self) -> List[str]:
        """Names of procedures called anywhere in the body (first-call order)."""
        names: List[str] = []
        for stmt in walk_statements(self.body):
            if isinstance(stmt, CallStmt) and stmt.callee not in names:
                names.append(stmt.callee)
        return names

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        return f"proc {self.name}({params}) ..."


@dataclass
class Program:
    """A full MiniLang compilation unit: globals plus procedures."""

    globals: List[GlobalDecl] = field(default_factory=list)
    procedures: List[Procedure] = field(default_factory=list)

    def structural_key(self) -> tuple:
        return (
            "program",
            tuple(g.structural_key() for g in self.globals),
            tuple(p.structural_key() for p in self.procedures),
        )

    def procedure(self, name: str) -> Procedure:
        """Return the procedure called ``name``.

        Raises:
            KeyError: if no procedure with that name exists.
        """
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError(f"No procedure named {name!r}")

    def global_names(self) -> List[str]:
        return [g.name for g in self.globals]

    def has_procedure(self, name: str) -> bool:
        return any(proc.name == name for proc in self.procedures)

    def __str__(self) -> str:
        names = ", ".join(p.name for p in self.procedures)
        return f"Program(globals={len(self.globals)}, procedures=[{names}])"


def walk_statements(statements: List[Stmt]):
    """Yield every statement in ``statements``, recursing into bodies."""
    for stmt in statements:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)
