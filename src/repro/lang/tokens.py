"""Token definitions for the MiniLang lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    """All token categories produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals and identifiers
    INT_LITERAL = auto()
    BOOL_LITERAL = auto()
    IDENT = auto()

    # Keywords
    GLOBAL = auto()
    PROC = auto()
    INT = auto()
    BOOL = auto()
    IF = auto()
    ELSE = auto()
    WHILE = auto()
    ASSERT = auto()
    RETURN = auto()
    SKIP = auto()

    # Operators
    ASSIGN = auto()          # =
    PLUS = auto()            # +
    MINUS = auto()           # -
    STAR = auto()            # *
    SLASH = auto()           # /
    PERCENT = auto()         # %
    EQ = auto()              # ==
    NEQ = auto()             # !=
    LT = auto()              # <
    LE = auto()              # <=
    GT = auto()              # >
    GE = auto()              # >=
    AND = auto()             # &&
    OR = auto()              # ||
    NOT = auto()             # !

    # Punctuation
    LPAREN = auto()          # (
    RPAREN = auto()          # )
    LBRACE = auto()          # {
    RBRACE = auto()          # }
    COMMA = auto()           # ,
    SEMICOLON = auto()       # ;

    EOF = auto()


#: Reserved words mapped to their token types.
KEYWORDS = {
    "global": TokenType.GLOBAL,
    "proc": TokenType.PROC,
    "int": TokenType.INT,
    "bool": TokenType.BOOL,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "assert": TokenType.ASSERT,
    "return": TokenType.RETURN,
    "skip": TokenType.SKIP,
    "true": TokenType.BOOL_LITERAL,
    "false": TokenType.BOOL_LITERAL,
}

#: Multi-character operators, longest first so the lexer matches greedily.
MULTI_CHAR_OPERATORS = [
    ("==", TokenType.EQ),
    ("!=", TokenType.NEQ),
    ("<=", TokenType.LE),
    (">=", TokenType.GE),
    ("&&", TokenType.AND),
    ("||", TokenType.OR),
]

#: Single-character operators and punctuation.
SINGLE_CHAR_TOKENS = {
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: the token category.
        value: the literal text of the token as it appeared in the source.
        line: 1-based source line number.
        column: 1-based source column number.
    """

    type: TokenType
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type.name}({self.value!r})@{self.line}:{self.column}"
