"""MiniLang: the small imperative language analysed by this reproduction.

MiniLang plays the role that Java (analysed at the bytecode level through
Java PathFinder) plays in the original DiSE paper: a language whose
procedures compile to control flow graphs over write statements and
conditional branches, which is exactly the vocabulary of the DiSE static
analysis (Definitions 3.3-3.7).
"""

from repro.lang.ast_nodes import (
    Assert,
    Assign,
    BinaryOp,
    BoolLiteral,
    CallStmt,
    Expr,
    GlobalDecl,
    If,
    IntLiteral,
    Param,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
    walk_statements,
)
from repro.lang.errors import LexerError, MiniLangError, ParseError, SemanticError
from repro.lang.lexer import Lexer, tokenize
from repro.lang.parser import Parser, parse_procedure, parse_program
from repro.lang.pretty import pretty_procedure, pretty_program
from repro.lang.validate import (
    ProcedureSignature,
    procedure_signature,
    validate_procedure,
    validate_program,
)

__all__ = [
    # AST
    "Assert",
    "Assign",
    "BinaryOp",
    "BoolLiteral",
    "CallStmt",
    "Expr",
    "GlobalDecl",
    "If",
    "IntLiteral",
    "Param",
    "Procedure",
    "Program",
    "Return",
    "Skip",
    "Stmt",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "While",
    "walk_statements",
    # Errors
    "LexerError",
    "MiniLangError",
    "ParseError",
    "SemanticError",
    # Front end entry points
    "Lexer",
    "tokenize",
    "Parser",
    "parse_program",
    "parse_procedure",
    "pretty_program",
    "pretty_procedure",
    "validate_program",
    "validate_procedure",
    "ProcedureSignature",
    "procedure_signature",
]
