"""Semantic validation of MiniLang programs.

Performs simple name-resolution and type checking before CFG construction so
that later analyses can assume a well-formed program:

* every variable is declared (as a global, parameter or local) before use;
* no variable is declared twice in the same scope;
* arithmetic operators only apply to ``int`` operands, logical operators only
  to ``bool`` operands, and branch/loop/assert conditions are ``bool``;
* assignments do not change a variable's declared type;
* procedure calls name a defined procedure with matching arity and argument
  types, the call graph is acyclic (recursion is rejected for now -- the CFG
  flattening splices callee bodies inline, which requires termination), and a
  call used as a value (``y = f(...)``) targets a procedure all of whose
  returns carry a value of ``y``'s type and whose body guarantees a valued
  return on every path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lang.ast_nodes import (
    ARITHMETIC_OPS,
    BOOL_TYPE,
    COMPARISON_OPS,
    INT_TYPE,
    LOGICAL_OPS,
    Assert,
    Assign,
    BinaryOp,
    BoolLiteral,
    CallStmt,
    Expr,
    If,
    IntLiteral,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
    walk_statements,
)
from repro.lang.errors import SemanticError


@dataclass(frozen=True)
class ProcedureSignature:
    """The call-site-facing interface of one procedure."""

    name: str
    param_types: Tuple[str, ...]
    #: Type of the valued returns, or None when the procedure never returns
    #: a value (a bare call is then the only legal call form).
    return_type: Optional[str]
    #: Whether some path can leave the procedure without a valued return
    #: (falling off the end or a bare ``return;``).
    may_miss_return: bool = False


class TypeEnvironment:
    """Maps variable names to their declared types within one procedure."""

    def __init__(self, globals_: Dict[str, str]):
        self._globals = dict(globals_)
        self._locals: Dict[str, str] = {}

    def declare(self, name: str, type_name: str, line: int) -> None:
        if name in self._locals:
            raise SemanticError(f"Variable {name!r} is declared twice", line)
        if name in self._globals:
            # Shadowing a global would make a callee's view of the global
            # ambiguous once procedure calls switch scopes; reject it.
            raise SemanticError(f"Variable {name!r} shadows a global", line)
        self._locals[name] = type_name

    def lookup(self, name: str, line: int) -> str:
        if name in self._locals:
            return self._locals[name]
        if name in self._globals:
            return self._globals[name]
        raise SemanticError(f"Variable {name!r} is not declared", line)

    def is_declared(self, name: str) -> bool:
        return name in self._locals or name in self._globals


def validate_program(program: Program) -> None:
    """Validate a whole program; raises :class:`SemanticError` on problems."""
    globals_: Dict[str, str] = {}
    for decl in program.globals:
        if decl.name in globals_:
            raise SemanticError(f"Global {decl.name!r} is declared twice", decl.line)
        if decl.init is not None:
            init_type = _literal_type(decl.init, decl.line)
            if init_type != decl.type_name:
                raise SemanticError(
                    f"Global {decl.name!r} of type {decl.type_name} initialised "
                    f"with a {init_type} literal",
                    decl.line,
                )
        globals_[decl.name] = decl.type_name

    names = set()
    for proc in program.procedures:
        if proc.name in names:
            raise SemanticError(f"Procedure {proc.name!r} is defined twice", proc.line)
        names.add(proc.name)

    _check_call_graph(program)
    signatures = {
        proc.name: procedure_signature(proc, globals_) for proc in program.procedures
    }
    for proc in program.procedures:
        validate_procedure(proc, globals_, signatures)


def _check_call_graph(program: Program) -> None:
    """Reject calls to undefined procedures and any recursion (even indirect).

    Delegates to :mod:`repro.cfg.callgraph` (imported locally -- the cfg
    package depends on the ``lang`` AST modules, so a module-level import
    would be circular) and translates its errors into semantic ones.
    """
    from repro.cfg.callgraph import CallGraphError, build_call_graph

    try:
        build_call_graph(program).topological_order()
    except CallGraphError as error:
        message = str(error)
        if "cycle" in message.lower():
            message += " (recursion is not supported)"
        raise SemanticError(message) from None


def procedure_signature(proc: Procedure, globals_: Dict[str, str]) -> ProcedureSignature:
    """Compute a procedure's call-site-facing signature.

    The return type is inferred from the valued ``return`` statements using a
    flow-insensitive environment of every declaration in the procedure
    (params, locals and call targets are all explicitly typed, so typing a
    return expression never needs another procedure's signature).
    """
    declared: Dict[str, str] = dict(globals_)
    for param in proc.params:
        declared[param.name] = param.type_name
    for stmt in walk_statements(proc.body):
        if isinstance(stmt, VarDecl):
            declared[stmt.name] = stmt.type_name
    flat_env = TypeEnvironment(declared)

    return_type: Optional[str] = None
    has_bare_return = False
    for stmt in walk_statements(proc.body):
        if not isinstance(stmt, Return):
            continue
        if stmt.value is None:
            has_bare_return = True
            continue
        try:
            value_type = _check_expr(stmt.value, flat_env)
        except SemanticError:
            # The expression references something undeclared or ill-typed;
            # the per-statement validation pass reports it with the proper
            # flow-sensitive context, so the signature stays permissive here.
            continue
        if return_type is None:
            return_type = value_type
        elif return_type != value_type:
            raise SemanticError(
                f"Procedure {proc.name!r} returns both {return_type} and {value_type}",
                stmt.line,
            )
    may_miss = has_bare_return or not _guarantees_valued_return(proc.body)
    return ProcedureSignature(
        name=proc.name,
        param_types=tuple(p.type_name for p in proc.params),
        return_type=return_type,
        may_miss_return=may_miss,
    )


def _guarantees_valued_return(statements: List[Stmt]) -> bool:
    """True when every path through ``statements`` ends in ``return <expr>;``."""
    for stmt in statements:
        if isinstance(stmt, Return) and stmt.value is not None:
            return True
        if (
            isinstance(stmt, If)
            and stmt.else_body
            and _guarantees_valued_return(stmt.then_body)
            and _guarantees_valued_return(stmt.else_body)
        ):
            return True
    return False


def validate_procedure(
    proc: Procedure,
    globals_: Dict[str, str],
    signatures: Optional[Dict[str, ProcedureSignature]] = None,
) -> None:
    """Validate one procedure against the given global environment.

    ``signatures`` supplies the callable procedures; validating a procedure
    containing calls without them reports the callee as undefined.
    """
    env = TypeEnvironment(globals_)
    for param in proc.params:
        env.declare(param.name, param.type_name, param.line)
    _check_statements(proc.body, env, signatures or {})


def _literal_type(expr: Expr, line: int) -> str:
    if isinstance(expr, IntLiteral):
        return INT_TYPE
    if isinstance(expr, BoolLiteral):
        return BOOL_TYPE
    if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, IntLiteral):
        return INT_TYPE
    raise SemanticError("Global initialisers must be literals", line)


def _check_statements(
    statements: List[Stmt],
    env: TypeEnvironment,
    signatures: Dict[str, ProcedureSignature],
) -> None:
    for stmt in statements:
        _check_statement(stmt, env, signatures)


def _check_call(
    stmt: CallStmt, env: TypeEnvironment, signatures: Dict[str, ProcedureSignature]
) -> None:
    signature = signatures.get(stmt.callee)
    if signature is None:
        raise SemanticError(f"Call to undefined procedure {stmt.callee!r}", stmt.line)
    if len(stmt.args) != len(signature.param_types):
        raise SemanticError(
            f"Procedure {stmt.callee!r} takes {len(signature.param_types)} "
            f"argument(s), got {len(stmt.args)}",
            stmt.line,
        )
    for position, (arg, expected) in enumerate(zip(stmt.args, signature.param_types)):
        actual = _check_expr(arg, env)
        if actual != expected:
            raise SemanticError(
                f"Argument {position + 1} of {stmt.callee!r} must be {expected}, "
                f"found {actual}",
                stmt.line,
            )
    if stmt.target is None:
        return
    declared = env.lookup(stmt.target, stmt.line)
    if signature.return_type is None:
        raise SemanticError(
            f"Procedure {stmt.callee!r} returns no value; it cannot be assigned "
            f"to {stmt.target!r}",
            stmt.line,
        )
    if signature.may_miss_return:
        raise SemanticError(
            f"Procedure {stmt.callee!r} does not return a value on every path; "
            f"it cannot be assigned to {stmt.target!r}",
            stmt.line,
        )
    if declared != signature.return_type:
        raise SemanticError(
            f"Cannot assign {signature.return_type} result of {stmt.callee!r} "
            f"to {declared} variable {stmt.target!r}",
            stmt.line,
        )


def _check_statement(
    stmt: Stmt, env: TypeEnvironment, signatures: Dict[str, ProcedureSignature]
) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            init_type = _check_expr(stmt.init, env)
            if init_type != stmt.type_name:
                raise SemanticError(
                    f"Cannot initialise {stmt.type_name} {stmt.name!r} with a "
                    f"{init_type} expression",
                    stmt.line,
                )
        env.declare(stmt.name, stmt.type_name, stmt.line)
    elif isinstance(stmt, Assign):
        declared = env.lookup(stmt.name, stmt.line)
        value_type = _check_expr(stmt.value, env)
        if declared != value_type:
            raise SemanticError(
                f"Cannot assign a {value_type} expression to {declared} variable "
                f"{stmt.name!r}",
                stmt.line,
            )
    elif isinstance(stmt, CallStmt):
        _check_call(stmt, env, signatures)
    elif isinstance(stmt, If):
        _require_bool(stmt.condition, env, stmt.line, "if condition")
        _check_statements(stmt.then_body, env, signatures)
        _check_statements(stmt.else_body, env, signatures)
    elif isinstance(stmt, While):
        _require_bool(stmt.condition, env, stmt.line, "while condition")
        _check_statements(stmt.body, env, signatures)
    elif isinstance(stmt, Assert):
        _require_bool(stmt.condition, env, stmt.line, "assert condition")
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            _check_expr(stmt.value, env)
    elif isinstance(stmt, Skip):
        pass
    else:
        raise SemanticError(f"Unknown statement type {type(stmt).__name__}", getattr(stmt, "line", 0))


def _require_bool(expr: Expr, env: TypeEnvironment, line: int, what: str) -> None:
    actual = _check_expr(expr, env)
    if actual != BOOL_TYPE:
        raise SemanticError(f"{what} must be a bool expression, found {actual}", line)


def _check_expr(expr: Expr, env: TypeEnvironment) -> str:
    if isinstance(expr, IntLiteral):
        return INT_TYPE
    if isinstance(expr, BoolLiteral):
        return BOOL_TYPE
    if isinstance(expr, VarRef):
        return env.lookup(expr.name, expr.line)
    if isinstance(expr, UnaryOp):
        operand_type = _check_expr(expr.operand, env)
        if expr.op == "-":
            if operand_type != INT_TYPE:
                raise SemanticError("Unary '-' requires an int operand", expr.line)
            return INT_TYPE
        if expr.op == "!":
            if operand_type != BOOL_TYPE:
                raise SemanticError("Unary '!' requires a bool operand", expr.line)
            return BOOL_TYPE
        raise SemanticError(f"Unknown unary operator {expr.op!r}", expr.line)
    if isinstance(expr, BinaryOp):
        left = _check_expr(expr.left, env)
        right = _check_expr(expr.right, env)
        if expr.op in ARITHMETIC_OPS:
            if left != INT_TYPE or right != INT_TYPE:
                raise SemanticError(f"Operator {expr.op!r} requires int operands", expr.line)
            return INT_TYPE
        if expr.op in COMPARISON_OPS:
            if left != right:
                raise SemanticError(
                    f"Comparison {expr.op!r} requires operands of the same type", expr.line
                )
            if expr.op not in ("==", "!=") and left != INT_TYPE:
                raise SemanticError(
                    f"Ordering comparison {expr.op!r} requires int operands", expr.line
                )
            return BOOL_TYPE
        if expr.op in LOGICAL_OPS:
            if left != BOOL_TYPE or right != BOOL_TYPE:
                raise SemanticError(f"Operator {expr.op!r} requires bool operands", expr.line)
            return BOOL_TYPE
        raise SemanticError(f"Unknown binary operator {expr.op!r}", expr.line)
    raise SemanticError(f"Unknown expression type {type(expr).__name__}", getattr(expr, "line", 0))
