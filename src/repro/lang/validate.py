"""Semantic validation of MiniLang programs.

Performs simple name-resolution and type checking before CFG construction so
that later analyses can assume a well-formed program:

* every variable is declared (as a global, parameter or local) before use;
* no variable is declared twice in the same scope;
* arithmetic operators only apply to ``int`` operands, logical operators only
  to ``bool`` operands, and branch/loop/assert conditions are ``bool``;
* assignments do not change a variable's declared type.
"""

from __future__ import annotations

from typing import Dict, List

from repro.lang.ast_nodes import (
    ARITHMETIC_OPS,
    BOOL_TYPE,
    COMPARISON_OPS,
    INT_TYPE,
    LOGICAL_OPS,
    Assert,
    Assign,
    BinaryOp,
    BoolLiteral,
    Expr,
    If,
    IntLiteral,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.errors import SemanticError


class TypeEnvironment:
    """Maps variable names to their declared types within one procedure."""

    def __init__(self, globals_: Dict[str, str]):
        self._globals = dict(globals_)
        self._locals: Dict[str, str] = {}

    def declare(self, name: str, type_name: str, line: int) -> None:
        if name in self._locals:
            raise SemanticError(f"Variable {name!r} is declared twice", line)
        self._locals[name] = type_name

    def lookup(self, name: str, line: int) -> str:
        if name in self._locals:
            return self._locals[name]
        if name in self._globals:
            return self._globals[name]
        raise SemanticError(f"Variable {name!r} is not declared", line)

    def is_declared(self, name: str) -> bool:
        return name in self._locals or name in self._globals


def validate_program(program: Program) -> None:
    """Validate a whole program; raises :class:`SemanticError` on problems."""
    globals_: Dict[str, str] = {}
    for decl in program.globals:
        if decl.name in globals_:
            raise SemanticError(f"Global {decl.name!r} is declared twice", decl.line)
        if decl.init is not None:
            init_type = _literal_type(decl.init, decl.line)
            if init_type != decl.type_name:
                raise SemanticError(
                    f"Global {decl.name!r} of type {decl.type_name} initialised "
                    f"with a {init_type} literal",
                    decl.line,
                )
        globals_[decl.name] = decl.type_name

    names = set()
    for proc in program.procedures:
        if proc.name in names:
            raise SemanticError(f"Procedure {proc.name!r} is defined twice", proc.line)
        names.add(proc.name)
        validate_procedure(proc, globals_)


def validate_procedure(proc: Procedure, globals_: Dict[str, str]) -> None:
    """Validate one procedure against the given global environment."""
    env = TypeEnvironment(globals_)
    for param in proc.params:
        env.declare(param.name, param.type_name, param.line)
    _check_statements(proc.body, env)


def _literal_type(expr: Expr, line: int) -> str:
    if isinstance(expr, IntLiteral):
        return INT_TYPE
    if isinstance(expr, BoolLiteral):
        return BOOL_TYPE
    if isinstance(expr, UnaryOp) and expr.op == "-" and isinstance(expr.operand, IntLiteral):
        return INT_TYPE
    raise SemanticError("Global initialisers must be literals", line)


def _check_statements(statements: List[Stmt], env: TypeEnvironment) -> None:
    for stmt in statements:
        _check_statement(stmt, env)


def _check_statement(stmt: Stmt, env: TypeEnvironment) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            init_type = _check_expr(stmt.init, env)
            if init_type != stmt.type_name:
                raise SemanticError(
                    f"Cannot initialise {stmt.type_name} {stmt.name!r} with a "
                    f"{init_type} expression",
                    stmt.line,
                )
        env.declare(stmt.name, stmt.type_name, stmt.line)
    elif isinstance(stmt, Assign):
        declared = env.lookup(stmt.name, stmt.line)
        value_type = _check_expr(stmt.value, env)
        if declared != value_type:
            raise SemanticError(
                f"Cannot assign a {value_type} expression to {declared} variable "
                f"{stmt.name!r}",
                stmt.line,
            )
    elif isinstance(stmt, If):
        _require_bool(stmt.condition, env, stmt.line, "if condition")
        _check_statements(stmt.then_body, env)
        _check_statements(stmt.else_body, env)
    elif isinstance(stmt, While):
        _require_bool(stmt.condition, env, stmt.line, "while condition")
        _check_statements(stmt.body, env)
    elif isinstance(stmt, Assert):
        _require_bool(stmt.condition, env, stmt.line, "assert condition")
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            _check_expr(stmt.value, env)
    elif isinstance(stmt, Skip):
        pass
    else:
        raise SemanticError(f"Unknown statement type {type(stmt).__name__}", getattr(stmt, "line", 0))


def _require_bool(expr: Expr, env: TypeEnvironment, line: int, what: str) -> None:
    actual = _check_expr(expr, env)
    if actual != BOOL_TYPE:
        raise SemanticError(f"{what} must be a bool expression, found {actual}", line)


def _check_expr(expr: Expr, env: TypeEnvironment) -> str:
    if isinstance(expr, IntLiteral):
        return INT_TYPE
    if isinstance(expr, BoolLiteral):
        return BOOL_TYPE
    if isinstance(expr, VarRef):
        return env.lookup(expr.name, expr.line)
    if isinstance(expr, UnaryOp):
        operand_type = _check_expr(expr.operand, env)
        if expr.op == "-":
            if operand_type != INT_TYPE:
                raise SemanticError("Unary '-' requires an int operand", expr.line)
            return INT_TYPE
        if expr.op == "!":
            if operand_type != BOOL_TYPE:
                raise SemanticError("Unary '!' requires a bool operand", expr.line)
            return BOOL_TYPE
        raise SemanticError(f"Unknown unary operator {expr.op!r}", expr.line)
    if isinstance(expr, BinaryOp):
        left = _check_expr(expr.left, env)
        right = _check_expr(expr.right, env)
        if expr.op in ARITHMETIC_OPS:
            if left != INT_TYPE or right != INT_TYPE:
                raise SemanticError(f"Operator {expr.op!r} requires int operands", expr.line)
            return INT_TYPE
        if expr.op in COMPARISON_OPS:
            if left != right:
                raise SemanticError(
                    f"Comparison {expr.op!r} requires operands of the same type", expr.line
                )
            if expr.op not in ("==", "!=") and left != INT_TYPE:
                raise SemanticError(
                    f"Ordering comparison {expr.op!r} requires int operands", expr.line
                )
            return BOOL_TYPE
        if expr.op in LOGICAL_OPS:
            if left != BOOL_TYPE or right != BOOL_TYPE:
                raise SemanticError(f"Operator {expr.op!r} requires bool operands", expr.line)
            return BOOL_TYPE
        raise SemanticError(f"Unknown binary operator {expr.op!r}", expr.line)
    raise SemanticError(f"Unknown expression type {type(expr).__name__}", getattr(expr, "line", 0))
