"""Errors raised by the MiniLang front end."""

from __future__ import annotations


class MiniLangError(Exception):
    """Base class for all errors raised while processing MiniLang source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class LexerError(MiniLangError):
    """Raised when the lexer encounters an unexpected character."""


class ParseError(MiniLangError):
    """Raised when the parser encounters an unexpected token."""


class SemanticError(MiniLangError):
    """Raised by semantic validation (undeclared variables, type errors...)."""
