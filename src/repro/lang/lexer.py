"""A hand-written lexer for MiniLang."""

from __future__ import annotations

from typing import Iterator, List

from repro.lang.errors import LexerError
from repro.lang.tokens import (
    KEYWORDS,
    MULTI_CHAR_OPERATORS,
    SINGLE_CHAR_TOKENS,
    Token,
    TokenType,
)


class Lexer:
    """Converts MiniLang source text into a stream of :class:`Token` objects.

    Supports ``//`` line comments and ``/* ... */`` block comments.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> List[Token]:
        """Return the full list of tokens, terminated by an EOF token."""
        return list(self._tokens())

    def _tokens(self) -> Iterator[Token]:
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                yield Token(TokenType.EOF, "", self.line, self.column)
                return
            yield self._next_token()

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _advance(self, count: int = 1) -> str:
        text = self.source[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += count
        return text

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start_line, start_col = self.line, self.column
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexerError("Unterminated block comment", start_line, start_col)

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch.isdigit():
            return self._lex_number(line, column)
        if ch.isalpha() or ch == "_":
            return self._lex_word(line, column)

        for text, token_type in MULTI_CHAR_OPERATORS:
            if self.source.startswith(text, self.pos):
                self._advance(len(text))
                return Token(token_type, text, line, column)

        if ch in SINGLE_CHAR_TOKENS:
            self._advance()
            return Token(SINGLE_CHAR_TOKENS[ch], ch, line, column)

        raise LexerError(f"Unexpected character {ch!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and self._peek().isdigit():
            self._advance()
        text = self.source[start:self.pos]
        return Token(TokenType.INT_LITERAL, text, line, column)

    def _lex_word(self, line: int, column: int) -> Token:
        start = self.pos
        while self.pos < len(self.source) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        text = self.source[start:self.pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, line, column)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: tokenize ``source`` and return the token list."""
    return Lexer(source).tokenize()
