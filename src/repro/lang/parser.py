"""A recursive-descent parser for MiniLang.

Grammar (EBNF)::

    program     ::= (global_decl | procedure)*
    global_decl ::= "global" type IDENT ("=" expr)? ";"
    procedure   ::= "proc" IDENT "(" params? ")" block
    params      ::= type IDENT ("," type IDENT)*
    type        ::= "int" | "bool"
    block       ::= "{" stmt* "}"
    stmt        ::= var_decl | assign | call_stmt | if_stmt | while_stmt
                  | assert_stmt | return_stmt | skip_stmt
    var_decl    ::= type IDENT ("=" expr)? ";"
    assign      ::= IDENT "=" (call | expr) ";"
    call_stmt   ::= call ";"
    call        ::= IDENT "(" (expr ("," expr)*)? ")"
    if_stmt     ::= "if" "(" expr ")" block ("else" (block | if_stmt))?
    while_stmt  ::= "while" "(" expr ")" block
    assert_stmt ::= "assert" expr ";"
    return_stmt ::= "return" expr? ";"
    skip_stmt   ::= "skip" ";"

Expression precedence (low to high): ``||``, ``&&``, comparisons, additive,
multiplicative, unary (``-``, ``!``), primary.
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.ast_nodes import (
    Assert,
    Assign,
    BinaryOp,
    BoolLiteral,
    CallStmt,
    Expr,
    GlobalDecl,
    If,
    IntLiteral,
    Param,
    Procedure,
    Program,
    Return,
    Skip,
    Stmt,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)
from repro.lang.errors import ParseError
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenType


_TYPE_TOKENS = (TokenType.INT, TokenType.BOOL)

_COMPARISON_TOKENS = {
    TokenType.EQ: "==",
    TokenType.NEQ: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
}

_ADDITIVE_TOKENS = {TokenType.PLUS: "+", TokenType.MINUS: "-"}
_MULTIPLICATIVE_TOKENS = {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"}


class Parser:
    """Recursive-descent parser over a token list."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.pos]

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type == token_type

    def _check_ahead(self, offset: int, token_type: TokenType) -> bool:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index].type == token_type

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type != TokenType.EOF:
            self.pos += 1
        return token

    def _match(self, *token_types: TokenType) -> Optional[Token]:
        if self._peek().type in token_types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, description: str) -> Token:
        token = self._peek()
        if token.type != token_type:
            raise ParseError(
                f"Expected {description}, found {token.value!r}", token.line, token.column
            )
        return self._advance()

    # -- top level ----------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse a full compilation unit."""
        program = Program()
        while not self._check(TokenType.EOF):
            if self._check(TokenType.GLOBAL):
                program.globals.append(self._parse_global())
            elif self._check(TokenType.PROC):
                program.procedures.append(self._parse_procedure())
            else:
                token = self._peek()
                raise ParseError(
                    f"Expected 'global' or 'proc', found {token.value!r}",
                    token.line,
                    token.column,
                )
        return program

    def _parse_global(self) -> GlobalDecl:
        keyword = self._expect(TokenType.GLOBAL, "'global'")
        type_token = self._expect_type()
        name = self._expect(TokenType.IDENT, "global variable name")
        init: Optional[Expr] = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return GlobalDecl(type_token.value, name.value, init, line=keyword.line)

    def _parse_procedure(self) -> Procedure:
        keyword = self._expect(TokenType.PROC, "'proc'")
        name = self._expect(TokenType.IDENT, "procedure name")
        self._expect(TokenType.LPAREN, "'('")
        params: List[Param] = []
        if not self._check(TokenType.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenType.COMMA):
                params.append(self._parse_param())
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_block()
        return Procedure(name.value, params, body, line=keyword.line)

    def _parse_param(self) -> Param:
        type_token = self._expect_type()
        name = self._expect(TokenType.IDENT, "parameter name")
        return Param(type_token.value, name.value, line=type_token.line)

    def _expect_type(self) -> Token:
        token = self._peek()
        if token.type not in _TYPE_TOKENS:
            raise ParseError(
                f"Expected a type ('int' or 'bool'), found {token.value!r}",
                token.line,
                token.column,
            )
        return self._advance()

    # -- statements ---------------------------------------------------------

    def _parse_block(self) -> List[Stmt]:
        self._expect(TokenType.LBRACE, "'{'")
        statements: List[Stmt] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                token = self._peek()
                raise ParseError("Unterminated block", token.line, token.column)
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return statements

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.type in _TYPE_TOKENS:
            return self._parse_var_decl()
        if token.type == TokenType.IDENT:
            if self._check_ahead(1, TokenType.LPAREN):
                call = self._parse_call(target=None)
                self._expect(TokenType.SEMICOLON, "';'")
                return call
            return self._parse_assign()
        if token.type == TokenType.IF:
            return self._parse_if()
        if token.type == TokenType.WHILE:
            return self._parse_while()
        if token.type == TokenType.ASSERT:
            return self._parse_assert()
        if token.type == TokenType.RETURN:
            return self._parse_return()
        if token.type == TokenType.SKIP:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';'")
            return Skip(line=token.line)
        raise ParseError(f"Unexpected token {token.value!r} in statement", token.line, token.column)

    def _parse_var_decl(self) -> VarDecl:
        type_token = self._expect_type()
        name = self._expect(TokenType.IDENT, "variable name")
        init: Optional[Expr] = None
        if self._match(TokenType.ASSIGN):
            init = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return VarDecl(type_token.value, name.value, init, line=type_token.line)

    def _parse_assign(self) -> Stmt:
        name = self._expect(TokenType.IDENT, "variable name")
        self._expect(TokenType.ASSIGN, "'='")
        if self._check(TokenType.IDENT) and self._check_ahead(1, TokenType.LPAREN):
            call = self._parse_call(target=name.value, line=name.line)
            self._expect(TokenType.SEMICOLON, "';'")
            return call
        value = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return Assign(name.value, value, line=name.line)

    def _parse_call(self, target: Optional[str], line: Optional[int] = None) -> CallStmt:
        callee = self._expect(TokenType.IDENT, "procedure name")
        self._expect(TokenType.LPAREN, "'('")
        args: List[Expr] = []
        if not self._check(TokenType.RPAREN):
            args.append(self._parse_expr())
            while self._match(TokenType.COMMA):
                args.append(self._parse_expr())
        self._expect(TokenType.RPAREN, "')'")
        return CallStmt(callee.value, args, target=target, line=line or callee.line)

    def _parse_if(self) -> If:
        keyword = self._expect(TokenType.IF, "'if'")
        self._expect(TokenType.LPAREN, "'('")
        condition = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        then_body = self._parse_block()
        else_body: List[Stmt] = []
        if self._match(TokenType.ELSE):
            if self._check(TokenType.IF):
                else_body = [self._parse_if()]
            else:
                else_body = self._parse_block()
        return If(condition, then_body, else_body, line=keyword.line)

    def _parse_while(self) -> While:
        keyword = self._expect(TokenType.WHILE, "'while'")
        self._expect(TokenType.LPAREN, "'('")
        condition = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_block()
        return While(condition, body, line=keyword.line)

    def _parse_assert(self) -> Assert:
        keyword = self._expect(TokenType.ASSERT, "'assert'")
        condition = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return Assert(condition, line=keyword.line)

    def _parse_return(self) -> Return:
        keyword = self._expect(TokenType.RETURN, "'return'")
        value: Optional[Expr] = None
        if not self._check(TokenType.SEMICOLON):
            value = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return Return(value, line=keyword.line)

    # -- expressions --------------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._check(TokenType.OR):
            token = self._advance()
            right = self._parse_and()
            expr = BinaryOp("||", expr, right, line=token.line)
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_comparison()
        while self._check(TokenType.AND):
            token = self._advance()
            right = self._parse_comparison()
            expr = BinaryOp("&&", expr, right, line=token.line)
        return expr

    def _parse_comparison(self) -> Expr:
        expr = self._parse_additive()
        while self._peek().type in _COMPARISON_TOKENS:
            token = self._advance()
            right = self._parse_additive()
            expr = BinaryOp(_COMPARISON_TOKENS[token.type], expr, right, line=token.line)
        return expr

    def _parse_additive(self) -> Expr:
        expr = self._parse_multiplicative()
        while self._peek().type in _ADDITIVE_TOKENS:
            token = self._advance()
            right = self._parse_multiplicative()
            expr = BinaryOp(_ADDITIVE_TOKENS[token.type], expr, right, line=token.line)
        return expr

    def _parse_multiplicative(self) -> Expr:
        expr = self._parse_unary()
        while self._peek().type in _MULTIPLICATIVE_TOKENS:
            token = self._advance()
            right = self._parse_unary()
            expr = BinaryOp(_MULTIPLICATIVE_TOKENS[token.type], expr, right, line=token.line)
        return expr

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type == TokenType.MINUS:
            self._advance()
            operand = self._parse_unary()
            return UnaryOp("-", operand, line=token.line)
        if token.type == TokenType.NOT:
            self._advance()
            operand = self._parse_unary()
            return UnaryOp("!", operand, line=token.line)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type == TokenType.INT_LITERAL:
            self._advance()
            return IntLiteral(int(token.value), line=token.line)
        if token.type == TokenType.BOOL_LITERAL:
            self._advance()
            return BoolLiteral(token.value == "true", line=token.line)
        if token.type == TokenType.IDENT:
            self._advance()
            return VarRef(token.value, line=token.line)
        if token.type == TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        raise ParseError(f"Unexpected token {token.value!r} in expression", token.line, token.column)


def parse_program(source: str) -> Program:
    """Parse MiniLang source text into a :class:`Program`."""
    return Parser(tokenize(source)).parse_program()


def parse_procedure(source: str, name: Optional[str] = None) -> Procedure:
    """Parse MiniLang source and return one procedure.

    Args:
        source: MiniLang source text containing at least one procedure.
        name: if given, the procedure with that name; otherwise the first one.
    """
    program = parse_program(source)
    if not program.procedures:
        raise ParseError("Source contains no procedures")
    if name is None:
        return program.procedures[0]
    return program.procedure(name)
