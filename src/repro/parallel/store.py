"""A persistent, process-portable summary store.

The :class:`~repro.symexec.summary_cache.SummaryCache` is in-memory and
per-process; its keys embed intern ids that are process- *and* lifetime-
local (interning is weak).  A :class:`PersistentSummaryStore` dumps the
cache's entries structurally -- term trees instead of intern ids, via
:mod:`repro.parallel.serialize` -- so a later
:class:`~repro.evolution.history.VersionHistoryRunner` invocation in a
fresh process (or a fresh CI job restoring a cached file) can resume warm:
entries are re-interned on load and replay exactly as they would have in
the recording process.

Format: one JSON document ``{"format": 1, "entries": [...]}``.  The format
number is bumped whenever the entry encoding changes shape; a store whose
format does not match (or whose content is unreadable) is ignored rather
than trusted -- a stale cache file must never break or skew a run, it can
only fail to warm it.  Writes go through a temp file + ``os.replace`` so a
crashed run cannot leave a torn store behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Optional

from repro.parallel.merge import merge_encoded_entries
from repro.parallel.serialize import encode_cache_entries
from repro.symexec.summary_cache import SummaryCache

#: Bump when the serialized entry shape changes; mismatched stores are ignored.
STORE_FORMAT = 1


class PersistentSummaryStore:
    """Dump/load a :class:`SummaryCache` to and from one JSON file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- write -----------------------------------------------------------------

    def dump(self, cache: SummaryCache) -> int:
        """Write every serializable entry of ``cache``; returns the count.

        Entries whose fingerprint ids cannot be resolved from their pins
        (which cannot be rebuilt in any other process) are skipped.
        """
        entries = encode_cache_entries(cache.iter_entries())
        document = {"format": STORE_FORMAT, "entries": entries}
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w", encoding="utf-8", dir=directory, suffix=".tmp", delete=False
        )
        try:
            with handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(handle.name, self.path)
        except BaseException:
            if os.path.exists(handle.name):
                os.unlink(handle.name)
            raise
        return len(entries)

    # -- read ------------------------------------------------------------------

    def load_into(self, cache: SummaryCache) -> int:
        """Adopt the stored entries into ``cache``; returns how many were added.

        Robust by design: a missing file, unreadable JSON, wrong format
        number or a malformed individual entry contributes zero entries
        instead of raising -- persistent stores live in CI caches and
        scratch directories where staleness is normal.
        """
        document = self._read_document()
        if document is None:
            return 0
        return merge_encoded_entries(cache, document.get("entries", ()))

    def entry_count(self) -> Optional[int]:
        """Number of entries on disk, or None when the store is unusable."""
        document = self._read_document()
        if document is None:
            return None
        entries = document.get("entries")
        return len(entries) if isinstance(entries, list) else None

    def _read_document(self) -> Optional[dict]:
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return None
        if not isinstance(document, dict) or document.get("format") != STORE_FORMAT:
            return None
        return document
