"""A persistent, process-portable, crash-safe summary store.

The :class:`~repro.symexec.summary_cache.SummaryCache` is in-memory and
per-process; its keys embed intern ids that are process- *and* lifetime-
local (interning is weak).  A :class:`PersistentSummaryStore` dumps the
cache's entries structurally -- term trees instead of intern ids, via
:mod:`repro.parallel.serialize` -- so a later
:class:`~repro.evolution.history.VersionHistoryRunner` invocation in a
fresh process (or a fresh CI job restoring a cached file) can resume warm:
entries are re-interned on load and replay exactly as they would have in
the recording process.

Format (version 4): JSON Lines.  The first line is a header
``{"format": 4}``; every following line is one self-contained entry
``{"checksum": "<sha256>", "entry": {...}}`` where the checksum covers the
entry's canonical JSON rendering.  Two properties fall out of the per-line
layout:

* **Crash safety / torn-write salvage.**  A store truncated at any byte
  offset (a torn OS-level write, a killed process, a half-restored CI
  cache) still yields every intact prefix line; a line that fails to parse
  or whose checksum does not match is skipped and counted
  (``skipped_entries``), never adopted.  A corrupt store salvages its
  intact entries instead of being discarded wholesale.
* **Concurrent-writer union.**  :meth:`dump` takes an exclusive lock file
  and merges with the entries already on disk (union by checksum) before
  the atomic temp-file + ``os.replace`` publish, so two concurrent
  :class:`VersionHistoryRunner` processes sharing one store path union
  their entries instead of last-writer clobbering.

A store whose header is missing or carries an unknown format number is
ignored rather than trusted -- a stale cache file must never break or skew
a run, it can only fail to warm it.  Formats 2 (pre-call-summary) and 3
(pre-cost-model) are still readable: their entries are strict subsets of
format 4's shapes, so old stores warm new runs and are re-published as
format 4 on the next :meth:`~PersistentSummaryStore.dump`.

Format 4 adds one non-cache entry kind: ``{"kind": "costmodel", "state":
{...}}`` carries a :meth:`~repro.parallel.shard.SchedulerCostModel.
export_state` snapshot, so the scheduler's learned estimates (per-digest
seconds, feature buckets, fence histogram) survive the process alongside
the summaries they were learned from.  Costmodel lines sit directly after
the header -- a torn write that destroys the entry tail still salvages the
scheduler's state -- and each :meth:`~PersistentSummaryStore.dump` that
carries a model *replaces* them with one merged state (local observations
win, disk fills the gaps) instead of unioning, so the file never
accumulates stale snapshots.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, List, Optional, Set

from repro import faults, obs
from repro.parallel.merge import merge_encoded_entries_counted
from repro.parallel.serialize import encode_cache_entries
from repro.symexec.summary_cache import SummaryCache

try:
    import fcntl
except ImportError:  # non-POSIX platform: dumps proceed unlocked
    fcntl = None

#: Bump when the serialized entry shape changes; mismatched stores are ignored.
#: Format 3 added generalised (fresh-formal) call-summary entries (``"call"``
#: kind); format 4 adds the ``"costmodel"`` scheduler-state entry kind.
#: Older formats contain strict subsets of the format-4 entry shapes, so the
#: reader accepts them all and new dumps always publish format 4.
STORE_FORMAT = 4

#: Formats :meth:`PersistentSummaryStore.load` accepts.  Formats 2 and 3 are
#: the pre-call-summary and pre-cost-model layouts -- their entries decode
#: unchanged under the format-4 codec, so old stores warm new runs losslessly.
READ_FORMATS = frozenset({2, 3, STORE_FORMAT})

#: Entry kind carrying a serialized :class:`~repro.parallel.shard.
#: SchedulerCostModel` state (never fed to the cache-entry decoder).
COSTMODEL_KIND = "costmodel"


def _is_costmodel(entry: dict) -> bool:
    return entry.get("kind") == COSTMODEL_KIND


def _canonical(entry: dict) -> str:
    """The canonical JSON rendering a checksum covers.

    Encoded entries are pure structural data (term trees, strings, ints),
    so this rendering -- and therefore the checksum -- is identical across
    processes and interpreter lifetimes.
    """
    return json.dumps(entry, sort_keys=True, separators=(",", ":"))


def _checksum(canonical: str) -> str:
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class PersistentSummaryStore:
    """Dump/load a :class:`SummaryCache` to and from one JSONL file."""

    def __init__(self, path: str):
        self.path = os.fspath(path)
        #: Entries dropped by the most recent :meth:`load_into`: unparsable
        #: lines, checksum mismatches and entries that failed to decode.
        #: Surfaced so callers (benchmarks, history reports) can assert a
        #: healthy store lost nothing.
        self.skipped_entries = 0
        # Lifetime telemetry for this store handle (the ROADMAP fleet-scale
        # rung's hit-rate groundwork): how often the store was read/written
        # and how many entries moved each way.  ``store_hits`` -- hits the
        # loaded entries later served -- lives on the receiving cache's
        # :class:`~repro.symexec.summary_cache.SummaryCacheStatistics`.
        self.loads = 0
        self.loaded_entries = 0
        self.dumps = 0
        self.dumped_entries = 0
        self.load_seconds = 0.0
        self.dump_seconds = 0.0
        #: Digest estimates the last :meth:`load_cost_model_into` adopted,
        #: and whether the last :meth:`dump` published a costmodel entry.
        self.costmodel_adopted = 0
        self.costmodel_published = False

    def telemetry(self) -> Dict:
        """The store handle's counters as a flat dict (report plumbing)."""
        return {
            "loads": self.loads,
            "loaded_entries": self.loaded_entries,
            "skipped_entries": self.skipped_entries,
            "dumps": self.dumps,
            "dumped_entries": self.dumped_entries,
            "load_seconds": round(self.load_seconds, 6),
            "dump_seconds": round(self.dump_seconds, 6),
            "costmodel_adopted": self.costmodel_adopted,
            "costmodel_published": self.costmodel_published,
        }

    def exists(self) -> bool:
        return os.path.exists(self.path)

    # -- write -----------------------------------------------------------------

    def dump(self, cache: SummaryCache, cost_model=None) -> int:
        """Write ``cache``'s serializable entries, unioning with what is on
        disk; returns the number of cache entries in the published store.

        Entries whose fingerprint ids cannot be resolved from their pins
        (which cannot be rebuilt in any other process) are skipped by the
        encoder.  The read-merge-publish sequence runs under an exclusive
        lock file, so concurrent dumpers serialize and union instead of
        clobbering each other.

        ``cost_model`` (a :class:`~repro.parallel.shard.SchedulerCostModel`)
        additionally publishes the scheduler's learned state as a single
        ``costmodel`` entry: the model's own export merged over whatever
        states are already on disk (local observations win), replacing them.
        Without a model, existing costmodel lines are carried over verbatim
        -- a summaries-only dump never discards scheduler state.
        """
        with obs.timed("store.dump", "store", path=self.path) as timer:
            published = self._dump(cache, cost_model)
        self.dumps += 1
        self.dumped_entries = published
        self.dump_seconds += timer.seconds
        obs.counter("store.dumps")
        obs.counter("store.dumped_entries", published)
        return published

    def _dump(self, cache: SummaryCache, cost_model=None) -> int:
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        lock_handle = None
        if fcntl is not None:
            lock_handle = open(self.path + ".lock", "a+")
            fcntl.flock(lock_handle.fileno(), fcntl.LOCK_EX)
        try:
            # Union by checksum with the intact lines already on disk
            # (first writer's rendering wins for a shared checksum, which
            # is the identical content anyway).  Costmodel lines are kept
            # apart: they are replaced by one merged state, not unioned --
            # unioning immutable snapshots of a *mutable* model would grow
            # the file with stale states forever.
            merged: Dict[str, str] = {}
            costmodel_lines: Dict[str, str] = {}
            disk_states = []
            for checksum, entry in self._scan_records():
                line = _canonical({"checksum": checksum, "entry": entry})
                if _is_costmodel(entry):
                    costmodel_lines.setdefault(checksum, line)
                    disk_states.append(entry.get("state"))
                else:
                    merged.setdefault(checksum, line)
            for entry in encode_cache_entries(cache.iter_entries()):
                canonical = _canonical(entry)
                checksum = _checksum(canonical)
                merged.setdefault(
                    checksum,
                    _canonical({"checksum": checksum, "entry": entry}),
                )
            if cost_model is not None:
                entry = {
                    "kind": COSTMODEL_KIND,
                    "state": self._merged_costmodel_state(cost_model, disk_states),
                }
                checksum = _checksum(_canonical(entry))
                costmodel_lines = {
                    checksum: _canonical({"checksum": checksum, "entry": entry})
                }
            # "Published" means THIS dump wrote a live model's state; lines
            # merely carried forward from disk don't count (a chaos-gated
            # dump hands the store on untouched, it doesn't re-publish).
            self.costmodel_published = cost_model is not None and bool(costmodel_lines)
            payload = "\n".join(
                [_canonical({"format": STORE_FORMAT})]
                + list(costmodel_lines.values())
                + list(merged.values())
            ) + "\n"
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=directory, suffix=".tmp", delete=False
            )
            try:
                with handle:
                    handle.write(payload)
                os.replace(handle.name, self.path)
            except BaseException:
                if os.path.exists(handle.name):
                    os.unlink(handle.name)
                raise
            self._maybe_tear(payload)
            return len(merged)
        finally:
            if lock_handle is not None:
                fcntl.flock(lock_handle.fileno(), fcntl.LOCK_UN)
                lock_handle.close()

    @staticmethod
    def _merged_costmodel_state(cost_model, disk_states) -> Dict:
        """One publishable state: the live model's, with disk filling gaps.

        Adoption into a scratch model keeps the merge rules (local wins,
        additive feature buckets, histogram seeding) in exactly one place
        -- :meth:`~repro.parallel.shard.SchedulerCostModel.adopt_state`.
        """
        from repro.parallel.shard import SchedulerCostModel

        scratch = SchedulerCostModel()
        scratch.adopt_state(cost_model.export_state())
        for state in disk_states:
            scratch.adopt_state(state)
        return scratch.export_state()

    def _maybe_tear(self, payload: str) -> None:
        """Fault site ``torn-store-write``: truncate the published file.

        Simulates a torn OS-level write (power loss, killed process before
        the page cache drained) at a roll-derived byte offset.  The chaos
        tests then assert that a later load salvages every intact line and
        adopts nothing corrupt.
        """
        plan = faults.active_plan()
        if plan is None or not plan.fires("torn-store-write", self.path):
            return
        data = payload.encode("utf-8")
        offset = int(plan.roll("torn-store-write-at", self.path) * len(data))
        with open(self.path, "wb") as handle:
            handle.write(data[:offset])

    # -- read ------------------------------------------------------------------

    def load_into(self, cache: SummaryCache) -> int:
        """Adopt the stored entries into ``cache``; returns how many were added.

        Robust by design: a missing file, an unreadable or wrong-format
        header, a truncated tail, a corrupt line or a malformed individual
        entry contributes zero entries instead of raising -- persistent
        stores live in CI caches and scratch directories where staleness
        and torn writes are normal.  Casualties are counted in
        ``skipped_entries``.
        """
        with obs.timed("store.load", "store", path=self.path) as timer:
            scanned = self._scan()
            if scanned is None:
                self.skipped_entries = 0
                adopted = 0
            else:
                records, line_skipped = scanned
                adopted, decode_skipped = merge_encoded_entries_counted(
                    cache,
                    [entry for _, entry in records if not _is_costmodel(entry)],
                    origin="store",
                )
                self.skipped_entries = line_skipped + decode_skipped
        self.loads += 1
        self.loaded_entries = adopted
        self.load_seconds += timer.seconds
        obs.counter("store.loads")
        obs.counter("store.loaded_entries", adopted)
        obs.counter("store.skipped_entries", self.skipped_entries)
        return adopted

    def load_cost_model_into(self, model) -> int:
        """Adopt persisted scheduler state into ``model``; counts estimates.

        Every intact ``costmodel`` line is folded in, in file order (the
        freshest merged state is published first; any stragglers from a
        concurrent pre-replacement writer still contribute their unique
        digests).  Returns the number of per-digest estimates adopted --
        the model-warming analogue of :meth:`load_into`'s entry count.
        Same robustness contract: a missing, stale, truncated or corrupt
        store adopts nothing and never raises.
        """
        adopted = 0
        scanned = self._scan()
        if scanned is not None:
            for _, entry in scanned[0]:
                if _is_costmodel(entry):
                    adopted += model.adopt_state(entry.get("state"))
        self.costmodel_adopted = adopted
        obs.counter("store.costmodel_adopted", adopted)
        return adopted

    def entry_count(self) -> Optional[int]:
        """Number of intact cache entries on disk (costmodel lines are not
        cache entries and are excluded); None when the store is unusable."""
        scanned = self._scan()
        if scanned is None:
            return None
        return sum(1 for _, entry in scanned[0] if not _is_costmodel(entry))

    def costmodel_state_count(self) -> int:
        """Number of intact costmodel lines on disk (0 when unusable)."""
        scanned = self._scan()
        if scanned is None:
            return 0
        return sum(1 for _, entry in scanned[0] if _is_costmodel(entry))

    def checksums(self) -> Optional[Set[str]]:
        """The intact entries' checksums (None when the store is unusable).

        Lets concurrency tests prove a union lost nothing without decoding.
        """
        scanned = self._scan()
        if scanned is None:
            return None
        return {checksum for checksum, _ in scanned[0]}

    # -- internals -------------------------------------------------------------

    def _scan(self):
        """``((checksum, entry) pairs, skipped line count)`` or None.

        "Unusable" (missing file, unreadable or wrong-format header ->
        ``None``) is distinct from "damaged": a damaged store still yields
        its intact lines, with the casualties counted.  A line counts as
        intact only when it parses, has the expected shape and its entry's
        canonical rendering matches the recorded checksum.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.read().splitlines()
        except OSError:
            return None
        if not lines:
            return None
        try:
            header = json.loads(lines[0])
        except ValueError:
            return None
        if not isinstance(header, dict) or header.get("format") not in READ_FORMATS:
            return None
        records = []
        skipped = 0
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                skipped += 1
                continue
            checksum = record.get("checksum") if isinstance(record, dict) else None
            entry = record.get("entry") if isinstance(record, dict) else None
            if not isinstance(checksum, str) or not isinstance(entry, dict):
                skipped += 1
                continue
            if _checksum(_canonical(entry)) != checksum:
                skipped += 1
                continue
            records.append((checksum, entry))
        return records, skipped

    def _scan_records(self) -> List:
        """Intact ``(checksum, entry)`` pairs (empty when unusable)."""
        scanned = self._scan()
        if scanned is None:
            return []
        return scanned[0]
