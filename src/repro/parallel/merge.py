"""Deterministic, shard-order-independent merging of parallel results.

Two families of data come back from shard workers (and from the on-disk
store):

* **content-keyed caches** -- summary-cache entries whose keys are pure
  functions of region content, environment values, strategy token and
  budget.  Two entries with equal keys describe the same deterministic
  subtree execution, so merging is a dict union and the winner for a
  duplicated key is irrelevant to behaviour; first-in wins here, which
  keeps already-pinned parent entries authoritative.
* **per-shard run products** -- :class:`MethodSummary`, :class:`TestSuite`
  and :class:`ExecutionStatistics` objects.  These are merged in *shard
  index order* (the deterministic DFS order the frontier was collected
  in), never in worker completion order, so the merged result is
  independent of pool scheduling.

The primary DiSE pipeline does not actually merge summaries -- its final
summary is produced by the serial replay run, which is deterministic by
construction -- but fan-out clients (e.g. a CI job running disjoint
version ranges) use these helpers to combine shard products directly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.evolution.testgen import TestSuite
from repro.parallel.serialize import SerializationError, decode_cache_entry
from repro.symexec.engine import ExecutionStatistics
from repro.symexec.summary import MethodSummary
from repro.symexec.summary_cache import SummaryCache


def merge_encoded_entries(
    cache: SummaryCache, encoded_entries: Iterable[dict], origin: str = "external"
) -> int:
    """Decode worker/store entries into ``cache``; returns how many were added.

    Malformed individual entries are skipped (a worker crash mid-encode or
    a stale store must degrade to a cold cache, not a failed run).
    ``origin`` tags the adopted entries' provenance for hit attribution.
    """
    return merge_encoded_entries_counted(cache, encoded_entries, origin=origin)[0]


def merge_encoded_entries_counted(
    cache: SummaryCache, encoded_entries: Iterable[dict], origin: str = "external"
) -> Tuple[int, int]:
    """Like :func:`merge_encoded_entries` but also counts the casualties.

    Returns ``(adopted, skipped)`` where ``skipped`` counts entries dropped
    because they failed to decode (corrupt frames, truncated writes, stale
    encodings).  Already-present keys are neither adopted nor skipped.
    """
    adopted = 0
    skipped = 0
    for data in encoded_entries:
        try:
            key, summary, pins = decode_cache_entry(data)
        except (SerializationError, KeyError, TypeError, IndexError):
            skipped += 1
            continue
        if cache.adopt(key, summary, pins=pins, origin=origin):
            adopted += 1
    return adopted, skipped


def merge_shard_results(
    cache: SummaryCache,
    digests: Sequence[str],
    results: Sequence[dict],
    report,
    cost_model=None,
    features: Optional[Sequence[tuple]] = None,
) -> float:
    """Adopt one pool round's worker envelopes into ``cache``, in order.

    ``digests`` and ``results`` are aligned with the round's *dispatch*
    order (the scheduler's deterministic cost order), so adoption order --
    and therefore which duplicate-key entry wins -- is reproducible
    run-to-run.  Failed shards arrive as ``None`` and are skipped; each
    surviving shard's accounting is accumulated onto ``report`` and its
    measured cost fed to ``cost_model`` (keyed by the shard root's region
    digest, with the region's structural ``features`` -- aligned like
    ``digests`` -- feeding the model's bucketed feature regression).
    Returns the round's summed worker wall-clock seconds, which the
    scheduler compares against the round's own elapsed time to measure the
    process-fence overhead.
    """
    round_elapsed = 0.0
    for position, (digest, result) in enumerate(zip(digests, results)):
        if result is None:
            continue
        report.worker_paths += result["paths"]
        report.worker_states += result["states"]
        report.worker_elapsed_total += result["elapsed"]
        round_elapsed += result["elapsed"]
        report.merged_entries += merge_encoded_entries(
            cache, result["entries"], origin="worker"
        )
        if cost_model is not None:
            cost_model.observe_task(
                digest,
                result["paths"],
                result["elapsed"],
                features=features[position] if features is not None else None,
            )
    return round_elapsed


def merge_caches(target: SummaryCache, *sources: SummaryCache) -> int:
    """In-process dict union of content-keyed caches (first-in wins).

    Sources are consumed in argument order; since entries are content-keyed
    and deterministic, any ordering yields a behaviourally identical cache
    -- the fixed rule exists so merged *statistics* are reproducible too.
    """
    adopted = 0
    for source in sources:
        for key, summary, pins in source.iter_entries():
            if target.adopt(key, summary, pins=pins):
                adopted += 1
    return adopted


def merge_method_summaries(
    procedure_name: str, summaries: Sequence[MethodSummary]
) -> MethodSummary:
    """Concatenate shard summaries in shard index order.

    Callers must pass shards in their collection (DFS) order; the merge is
    then independent of which worker finished first.  Records are kept
    verbatim -- deduplication is the consumer's business
    (:meth:`MethodSummary.distinct_path_conditions` is string-keyed and
    order-stable, so equal record multisets in equal order give identical
    distinct sets).
    """
    merged = MethodSummary(procedure_name)
    for summary in summaries:
        for record in summary.records:
            merged.add(record)
    return merged


def merge_test_suites(procedure_name: str, suites: Sequence[TestSuite]) -> TestSuite:
    """Union shard test suites in shard index order (hashed dedup, stable)."""
    merged = TestSuite(procedure_name)
    for suite in suites:
        for case in suite:
            merged.add(case)
    return merged


def merge_statistics(parts: Sequence[ExecutionStatistics]) -> ExecutionStatistics:
    """Combine per-shard execution statistics.

    Counters add; ``elapsed_seconds`` takes the maximum, because shards run
    concurrently and the slowest one bounds the wall clock (the sum of
    per-shard CPU time is reported separately by
    :class:`~repro.parallel.shard.ParallelReport`).
    """
    merged = ExecutionStatistics()
    for part in parts:
        for name, value in part.as_dict().items():
            if name == "elapsed_seconds":
                merged.elapsed_seconds = max(merged.elapsed_seconds, value)
            else:
                setattr(merged, name, getattr(merged, name) + value)
    return merged
