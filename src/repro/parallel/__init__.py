"""Parallel exploration: sharded frontier workers + process-portable summaries.

See ``src/repro/parallel/README.md`` for the sharding model, the
determinism argument and the persistent store format.
"""

from repro.parallel.merge import (
    merge_caches,
    merge_encoded_entries,
    merge_method_summaries,
    merge_statistics,
    merge_test_suites,
)
from repro.parallel.serialize import (
    SerializationError,
    decode_cache_entry,
    decode_method_summary,
    decode_state,
    decode_term,
    decode_value,
    encode_cache_entries,
    encode_cache_entry,
    encode_method_summary,
    encode_state,
    encode_term,
    encode_value,
)
from repro.parallel.shard import (
    FrontierCollector,
    ParallelReport,
    ShardConfig,
    prewarm_directed,
    prewarm_full,
    run_shard,
    shutdown_pools,
    warm_pool,
)
from repro.parallel.store import STORE_FORMAT, PersistentSummaryStore

__all__ = [
    "FrontierCollector",
    "ParallelReport",
    "PersistentSummaryStore",
    "STORE_FORMAT",
    "SerializationError",
    "ShardConfig",
    "decode_cache_entry",
    "decode_method_summary",
    "decode_state",
    "decode_term",
    "decode_value",
    "encode_cache_entries",
    "encode_cache_entry",
    "encode_method_summary",
    "encode_state",
    "encode_term",
    "encode_value",
    "merge_caches",
    "merge_encoded_entries",
    "merge_method_summaries",
    "merge_statistics",
    "merge_test_suites",
    "prewarm_directed",
    "prewarm_full",
    "run_shard",
    "shutdown_pools",
    "warm_pool",
]
